"""Ablation: each Skalla optimization toggled in isolation.

DESIGN.md calls out four independent plan rewrites (coalescing, sync
reduction, aware group reduction, independent group reduction). This
bench runs the combined-reductions query at 8 sites with each toggle
alone, quantifying every optimization's individual contribution against
the no-optimizations baseline and the all-optimizations plan.

Run standalone for the printed report::

    python benchmarks/bench_ablation_reductions.py
"""

from conftest import BENCH_MODEL, SPEEDUP_SCALE
from repro.bench import combined_query, format_table, run_arms, speedup_cluster
from repro.bench.figures import HIGH_CARDINALITY_KEY
from repro.data.tpcr import TPCRConfig, generate_tpcr
from repro.distributed import OptimizationOptions

ARMS = {
    "baseline": OptimizationOptions.none(),
    "coalescing": OptimizationOptions(
        coalescing=True,
        sync_reduction=False,
        aware_group_reduction=False,
        independent_group_reduction=False,
        site_pruning=False,
    ),
    "sync_reduction": OptimizationOptions(
        coalescing=False,
        sync_reduction=True,
        aware_group_reduction=False,
        independent_group_reduction=False,
        site_pruning=False,
    ),
    "independent_gr": OptimizationOptions(
        coalescing=False,
        sync_reduction=False,
        aware_group_reduction=False,
        independent_group_reduction=True,
        site_pruning=False,
    ),
    "aware_gr": OptimizationOptions(
        coalescing=False,
        sync_reduction=False,
        aware_group_reduction=True,
        independent_group_reduction=False,
        site_pruning=False,
    ),
    "all": OptimizationOptions.all(),
}


def run_ablation():
    tpcr = generate_tpcr(TPCRConfig(scale=SPEEDUP_SCALE))
    cluster = speedup_cluster(tpcr, participating=8, total_sites=8)
    return run_arms(
        cluster, combined_query(HIGH_CARDINALITY_KEY), ARMS, model=BENCH_MODEL
    )


def render(measurements):
    headers = ["arm", "time (s)", "bytes", "tuples", "syncs"]
    rows = []
    for name, measurement in measurements.items():
        rows.append(
            [
                name,
                f"{measurement.total_time_s:.4f}",
                str(measurement.bytes_total),
                str(measurement.tuples_total),
                str(measurement.synchronizations),
            ]
        )
    return format_table(headers, rows)


def test_ablation_each_optimization_helps(benchmark):
    measurements = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(render(measurements))

    baseline = measurements["baseline"]
    combined = measurements["all"]

    # Every single toggle beats the baseline on traffic.
    for name in ("coalescing", "sync_reduction", "independent_gr"):
        assert measurements[name].bytes_total < baseline.bytes_total, name

    # Coalescing merges the two independent stages: 4 -> 3 syncs; sync
    # reduction alone collapses the whole chain to a single round.
    assert baseline.synchronizations == 4
    assert measurements["coalescing"].synchronizations == 3
    assert measurements["sync_reduction"].synchronizations == 1
    assert combined.synchronizations == 1

    # All optimizations together dominate every single-toggle arm.
    for name, measurement in measurements.items():
        assert combined.bytes_total <= measurement.bytes_total, name

    # Aware reduction cannot fire here (phi constrains NationKey, the
    # query groups on CustName) — the plan must fall back gracefully.
    assert measurements["aware_gr"].bytes_total == baseline.bytes_total


if __name__ == "__main__":
    print(render(run_ablation()))
