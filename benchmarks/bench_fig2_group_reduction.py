"""Figure 2 — group reduction query (Section 5.2).

Paper's claims, asserted here on the regenerated data:

- without group reduction, evaluation time and bytes transferred grow
  ~quadratically with the number of participating sites;
- distribution-independent (site-side) group reduction removes roughly
  half the inefficiency: the up-leg becomes linear while the down-leg
  stays quadratic;
- the group-traffic formula (2c + 2n + 1)/(4n + 1) matches measurement
  to within 5%;
- (extension) distribution-aware (coordinator-side) reduction makes the
  curves linear, as the paper predicts but does not measure.

Run standalone for the full printed report::

    python benchmarks/bench_fig2_group_reduction.py
"""

from conftest import BENCH_MODEL, PARTICIPATING, SPEEDUP_SCALE, print_series
from repro.bench import figure2, figure2_aware, growth_exponent


def run_figure2():
    return figure2(
        scale=SPEEDUP_SCALE, participating=PARTICIPATING, model=BENCH_MODEL
    )


def run_figure2_aware():
    return figure2_aware(
        scale=SPEEDUP_SCALE, participating=PARTICIPATING, model=BENCH_MODEL
    )


def test_fig2_group_reduction(benchmark):
    series, formula_points = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    print_series(series, [("tuples_total", "groups (tuples) transferred")])

    xs = series.x_values
    unreduced_bytes = series.column("no_reduction", "bytes_total")
    reduced_bytes = series.column("group_reduction", "bytes_total")

    # Quadratic-ish growth without reduction; reduction strictly helps.
    assert growth_exponent(xs, unreduced_bytes) > 1.5
    assert growth_exponent(xs, reduced_bytes) < growth_exponent(xs, unreduced_bytes)
    for point_index in range(1, len(xs)):
        assert reduced_bytes[point_index] < unreduced_bytes[point_index]

    # Reduction also wins on modeled evaluation time at every n > 1.
    unreduced_time = series.column("no_reduction", "total_time_s")
    reduced_time = series.column("group_reduction", "total_time_s")
    assert reduced_time[-1] < unreduced_time[-1]

    # The paper's traffic analysis holds to within 5%.
    print("\ntraffic formula (2c+2n+1)/(4n+1) check:")
    for point in formula_points:
        print(
            f"  n={point.sites}: c={point.c:.3f} predicted={point.predicted_ratio:.4f} "
            f"measured={point.measured_ratio:.4f} error={point.relative_error:.2%}"
        )
        assert point.relative_error < 0.05


def test_fig2_aware_reduction_linear(benchmark):
    series = benchmark.pedantic(run_figure2_aware, rounds=1, iterations=1)
    print_series(series)

    xs = series.x_values
    aware_down = series.column("aware+independent", "bytes_down")
    independent_down = series.column("independent_only", "bytes_down")

    # Coordinator-side reduction linearizes the down leg (paper Sec 5.2).
    assert growth_exponent(xs, aware_down) < 1.25
    assert growth_exponent(xs, independent_down) > 1.5
    assert series.column("aware+independent", "bytes_total")[-1] < (
        series.column("independent_only", "bytes_total")[-1]
    )


if __name__ == "__main__":
    series, formula_points = run_figure2()
    print(series.show([("tuples_total", "groups (tuples) transferred")]))
    print("\ntraffic formula check:")
    for point in formula_points:
        print(
            f"  n={point.sites}: predicted={point.predicted_ratio:.4f} "
            f"measured={point.measured_ratio:.4f} error={point.relative_error:.2%}"
        )
    print()
    print(run_figure2_aware().show())
