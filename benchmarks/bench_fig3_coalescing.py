"""Figure 3 — coalescing query (Section 5.2).

Paper's claims, asserted on the regenerated data:

- high cardinality: the non-coalesced query's evaluation time/traffic
  grows ~quadratically with sites; the coalesced query runs in a single
  round with one upward shipment and grows linearly;
- low cardinality: the difference is smaller, but coalescing still wins
  (the paper reports ~30%, from reduced site computation as well as
  communication).

Run standalone for the printed report::

    python benchmarks/bench_fig3_coalescing.py
"""

from conftest import BENCH_MODEL, PARTICIPATING, SPEEDUP_SCALE, print_series
from repro.bench import figure3, growth_exponent


def run_figure3():
    return figure3(
        scale=SPEEDUP_SCALE, participating=PARTICIPATING, model=BENCH_MODEL
    )


def test_fig3_coalescing(benchmark):
    result = benchmark.pedantic(run_figure3, rounds=1, iterations=1)

    high = result["high"]
    low = result["low"]
    print_series(high, [("synchronizations", "synchronizations")])
    print_series(low)
    xs = high.x_values

    # High cardinality: quadratic vs linear.
    assert growth_exponent(xs, high.column("non_coalesced", "bytes_total")) > 1.5
    assert growth_exponent(xs, high.column("coalesced", "bytes_total")) < 1.25

    # Coalesced plan uses a single synchronization with upward-only data.
    for point in high.measurements:
        assert point["coalesced"].synchronizations == 1
        assert point["coalesced"].tuples_down == 0

    # Low cardinality: coalescing still reduces evaluation time at 8 sites.
    low_non = low.column("non_coalesced", "total_time_s")[-1]
    low_coal = low.column("coalesced", "total_time_s")[-1]
    assert low_coal < low_non

    # Site computation also drops (one pass over R instead of two) —
    # the effect the paper credits for the low-cardinality win.
    assert (
        low.measurements[-1]["coalesced"].site_compute_s
        < low.measurements[-1]["non_coalesced"].site_compute_s
    )


if __name__ == "__main__":
    result = run_figure3()
    print(result["high"].show([("synchronizations", "synchronizations")]))
    print()
    print(result["low"].show([("site_compute_s", "site compute (s)")]))
