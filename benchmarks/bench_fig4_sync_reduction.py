"""Figure 4 — synchronization reduction without coalescing (Section 5.2).

Paper's claims, asserted on the regenerated data:

- high cardinality: without sync reduction the correlated query is
  ~quadratic in sites (3 synchronizations); with sync reduction the
  whole chain runs locally (Corollary 1 via the CustName -> NationKey
  functional dependency) with a single synchronization and linear growth;
- low cardinality (grouping on a non-partitioned attribute): only
  Proposition 2 applies (3 -> 2 synchronizations); the query gets
  cheaper, but less than coalescing achieves, because the sites still
  make two passes over R — site computation stays roughly the same, the
  saving is synchronization overhead only.

Run standalone for the printed report::

    python benchmarks/bench_fig4_sync_reduction.py
"""

from conftest import BENCH_MODEL, PARTICIPATING, SPEEDUP_SCALE, print_series
from repro.bench import figure4, growth_exponent


def run_figure4():
    return figure4(
        scale=SPEEDUP_SCALE, participating=PARTICIPATING, model=BENCH_MODEL
    )


def test_fig4_sync_reduction(benchmark):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    high = result["high"]
    low = result["low"]
    print_series(high, [("synchronizations", "synchronizations")])
    print_series(low, [("synchronizations", "synchronizations")])
    xs = high.x_values

    # High cardinality: quadratic vs linear, 3 vs 1 synchronizations.
    assert growth_exponent(xs, high.column("no_sync_reduction", "bytes_total")) > 1.5
    assert growth_exponent(xs, high.column("sync_reduction", "bytes_total")) < 1.25
    for point in high.measurements:
        assert point["no_sync_reduction"].synchronizations == 3
        assert point["sync_reduction"].synchronizations == 1

    # Low cardinality: Proposition 2 only (3 -> 2), still cheaper.
    for point in low.measurements:
        assert point["sync_reduction"].synchronizations == 2
        assert point["sync_reduction"].bytes_total < point["no_sync_reduction"].bytes_total

    # The paper: low-cardinality site work is "nearly the same" — sync
    # reduction does not cut local computation the way coalescing does.
    last = low.measurements[-1]
    plain_site = last["no_sync_reduction"].site_compute_s
    reduced_site = last["sync_reduction"].site_compute_s
    assert reduced_site > 0.5 * plain_site


if __name__ == "__main__":
    result = run_figure4()
    print(result["high"].show([("synchronizations", "synchronizations")]))
    print()
    print(result["low"].show([("synchronizations", "synchronizations")]))
