"""Figure 5 — combined reductions scale-up (Section 5.3).

Paper's claims, asserted on the regenerated data:

- at a fixed 4 sites, growing the per-site data size 1x..4x gives a
  *linear* increase in evaluation time both with and without the
  optimizations;
- applying all reductions cuts evaluation time by a large factor
  ("nearly half" on the paper's testbed; the exact factor depends on the
  network model — we assert >= 25% and report the measured value);
- the breakdown of the optimized query into site computation,
  coordinator computation and communication grows linearly in each
  component;
- the constant-group-count variant behaves comparably.

The executor sweep (``test_fig5_executor_sweep``) additionally runs the
same combined query at 8 sites under each execution engine (serial /
threads / processes), reporting measured wall-clock next to the modeled
max-over-sites time. Timing assertions are gated on the core count —
equivalence (identical rows and byte accounting) is asserted always.

Run standalone for the printed report::

    python benchmarks/bench_fig5_combined.py
"""

import os

from conftest import BENCH_MODEL, SCALEUP_BASE_SCALE, print_series
from repro.bench import executor_sweep, figure5, growth_exponent
from repro.bench.harness import format_table

SCALE_FACTORS = (1, 2, 3, 4)
SWEEP_SITES = 8
#: Larger than the figure-5 points so per-round site compute dominates
#: the pool dispatch overhead being measured.
SWEEP_SCALE = SCALEUP_BASE_SCALE * 4


def run_growing():
    return figure5(
        base_scale=SCALEUP_BASE_SCALE, scale_factors=SCALE_FACTORS, model=BENCH_MODEL
    )


def run_constant_groups():
    return figure5(
        base_scale=SCALEUP_BASE_SCALE,
        scale_factors=SCALE_FACTORS,
        model=BENCH_MODEL,
        constant_groups=True,
    )


def test_fig5_combined_scaleup(benchmark):
    series = benchmark.pedantic(run_growing, rounds=1, iterations=1)
    print_series(
        series,
        [
            ("site_compute_s", "site compute (s)"),
            ("coordinator_compute_s", "coordinator compute (s)"),
            ("communication_s", "communication (s)"),
        ],
    )
    xs = list(SCALE_FACTORS)

    # Linear growth in both arms (bytes and modeled time).
    for arm in ("no_optimizations", "all_optimizations"):
        assert growth_exponent(xs, series.column(arm, "bytes_total")) < 1.3
        assert growth_exponent(xs, series.column(arm, "total_time_s")) < 1.3

    # The optimizations cut evaluation time substantially at every scale.
    plain = series.column("no_optimizations", "total_time_s")
    optimized = series.column("all_optimizations", "total_time_s")
    for plain_time, optimized_time in zip(plain, optimized):
        assert optimized_time < 0.75 * plain_time
    print(
        f"\nspeedup from optimizations: "
        f"{[f'{p / o:.1f}x' for p, o in zip(plain, optimized)]}"
    )

    # Breakdown components of the optimized arm each grow ~linearly.
    for component in ("site_compute_s", "communication_s"):
        values = series.column("all_optimizations", component)
        if min(values) > 0:
            assert growth_exponent(xs, values) < 1.6


def run_executor_sweep():
    return executor_sweep(scale=SWEEP_SCALE, sites=SWEEP_SITES, repetitions=2)


def print_sweep(report):
    headers = ["executor", "wall (s)", "modeled max-over-sites (s)", "speedup"]
    rows = [
        [
            name,
            f"{entry['wall_s']:.4f}",
            f"{entry['modeled_max_over_sites_s']:.4f}",
            f"{entry['speedup_vs_serial']:.2f}x",
        ]
        for name, entry in report["executors"].items()
    ]
    print()
    print(f"== executor sweep ({report['sites']} sites, scale {report['scale']}) ==")
    print(format_table(headers, rows))


def test_fig5_executor_sweep(benchmark):
    report = benchmark.pedantic(run_executor_sweep, rounds=1, iterations=1)
    print_sweep(report)

    # Equivalence (rows + byte accounting) is asserted inside
    # executor_sweep; here we check the timing model and — on machines
    # with real parallelism — the wall-clock win itself.
    engines = report["executors"]
    for entry in engines.values():
        assert entry["modeled_max_over_sites_s"] <= entry["site_compute_total_s"]
    serial_wall = engines["serial"]["wall_s"]
    parallel_walls = [
        engines[name]["wall_s"] for name in ("threads", "processes")
    ]
    cores = os.cpu_count() or 1
    if cores >= 8:
        assert serial_wall / min(parallel_walls) >= 3.0, (
            f"expected >=3x at {SWEEP_SITES} sites on {cores} cores, got "
            f"{serial_wall / min(parallel_walls):.2f}x"
        )
    elif cores >= 2:
        assert min(parallel_walls) <= serial_wall * 1.5, (
            "parallel executor slower than serial on a multi-core machine"
        )


def test_fig5_constant_groups(benchmark):
    series = benchmark.pedantic(run_constant_groups, rounds=1, iterations=1)
    print_series(series)
    xs = list(SCALE_FACTORS)

    # Group count fixed: result size must not grow with data size.
    rows = series.column("all_optimizations", "result_rows")
    assert len(set(rows)) == 1

    # Optimizations still win, and traffic stays flat-to-linear.
    for point in series.measurements:
        assert (
            point["all_optimizations"].bytes_total
            < point["no_optimizations"].bytes_total
        )
    assert growth_exponent(xs, series.column("no_optimizations", "bytes_total")) < 1.3


if __name__ == "__main__":
    print(
        run_growing().show(
            [
                ("site_compute_s", "site compute (s)"),
                ("coordinator_compute_s", "coordinator compute (s)"),
                ("communication_s", "communication (s)"),
            ]
        )
    )
    print()
    print(run_constant_groups().show())
    print_sweep(run_executor_sweep())
