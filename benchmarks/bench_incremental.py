"""Extension: incremental refresh vs full re-evaluation.

A standing per-customer report over the distributed TPC-R warehouse
absorbs a stream of appended line items. Refresh cost should track the
*delta* size (plus one |X| shipment down per site), while re-evaluation
tracks the full history — the gap widens as history accumulates.

Run standalone for the printed report::

    python benchmarks/bench_incremental.py
"""

from conftest import SPEEDUP_SCALE
from repro.bench import format_table
from repro.data.tpcr import TPCRConfig, generate_tpcr, nation_partitioner, register_tpcr_fds
from repro.distributed import (
    IncrementalView,
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
)
from repro.queries.olap import group_by_query
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import detail

SITES = 4
BATCHES = 4


def report_expression():
    return group_by_query(
        "TPCR",
        ["CustKey"],
        [
            count_star("items"),
            AggSpec("sum", detail.Price, "revenue"),
            AggSpec("max", detail.Price, "largest"),
        ],
    )


def run_stream():
    partitioner = nation_partitioner(SITES)
    initial = generate_tpcr(TPCRConfig(scale=SPEEDUP_SCALE, seed=41))
    cluster = SimulatedCluster.with_sites(SITES)
    cluster.load_partitioned("TPCR", initial, partitioner)
    register_tpcr_fds(cluster.catalog)

    expression = report_expression()
    view = IncrementalView(cluster, expression)

    measurements = []
    for batch_number in range(1, BATCHES + 1):
        batch = generate_tpcr(
            TPCRConfig(scale=SPEEDUP_SCALE / 10, seed=41 + batch_number)
        )
        pieces = partitioner.split(batch)
        deltas = {
            site_id: piece
            for site_id, piece in zip(cluster.site_ids, pieces)
            if len(piece)
        }
        cluster.reset_network()
        refresh = view.refresh(deltas)
        refresh_bytes = refresh.stats.bytes_total

        # Full re-evaluation over the grown history, for comparison.
        cluster.reset_network()
        full = execute_query(cluster, expression, OptimizationOptions.none())
        assert full.relation.same_rows_any_order_of_columns(refresh.relation)

        measurements.append(
            (
                batch_number,
                len(batch),
                refresh_bytes,
                full.stats.bytes_total,
                refresh.stats.tuples_up,
                full.stats.tuples_total,
            )
        )
    return measurements


def render(measurements) -> str:
    return format_table(
        [
            "batch",
            "delta rows",
            "refresh bytes",
            "re-eval bytes",
            "refresh up-tuples",
            "re-eval tuples",
        ],
        [[str(value) for value in row] for row in measurements],
    )


def test_incremental_refresh_cheaper_than_reevaluation(benchmark):
    measurements = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    print()
    print(render(measurements))

    for _batch, _rows, refresh_bytes, full_bytes, refresh_up, full_tuples in measurements:
        # The refresh's up-leg carries only touched groups; the full
        # evaluation re-ships every group both ways.
        assert refresh_up < full_tuples
        assert refresh_bytes < full_bytes


if __name__ == "__main__":
    print(render(run_stream()))
