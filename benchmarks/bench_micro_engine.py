"""Micro-benchmarks of the engine substrates.

Not a paper figure — these time the building blocks (hash GMDJ scan,
super-aggregation, wire codec, SQL group-by) so engine regressions are
visible independently of the distributed experiments. These use
pytest-benchmark's normal repeated timing, unlike the single-shot
figure reproductions.
"""

from repro.data.tpcr import TPCRConfig, generate_tpcr
from repro.gmdj.blocks import MDBlock
from repro.gmdj.operator import evaluate, evaluate_sub, super_aggregate
from repro.net.serialize import decode_relation, encode_relation
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.operators import group_by

TPCR = generate_tpcr(TPCRConfig(scale=0.002, seed=12))
BASE = TPCR.distinct_project(["CustKey"])
BLOCKS = [
    MDBlock(
        [count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")],
        base.CustKey == detail.CustKey,
    )
]


def test_gmdj_hash_scan(benchmark):
    result = benchmark(evaluate, BASE, TPCR, BLOCKS)
    assert len(result) == len(BASE)


def test_gmdj_sub_aggregation(benchmark):
    result, _touched = benchmark(evaluate_sub, BASE, TPCR, BLOCKS)
    assert len(result) == len(BASE)


def test_super_aggregation(benchmark):
    h, _touched = evaluate_sub(BASE, TPCR, BLOCKS)
    result = benchmark(super_aggregate, BASE, h, ["CustKey"], BLOCKS)
    assert len(result) == len(BASE)


def test_sql_group_by(benchmark):
    result = benchmark(
        group_by,
        TPCR,
        ["CustKey"],
        [count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")],
    )
    assert len(result) == len(BASE)


def test_codec_encode(benchmark):
    payload = benchmark(encode_relation, TPCR)
    assert len(payload) > 0


def test_codec_decode(benchmark):
    payload = encode_relation(TPCR)
    result = benchmark(decode_relation, payload)
    assert len(result) == len(TPCR)


def test_codec_encode_reference(benchmark):
    """The pre-fast-path encoder, kept as the differential baseline.

    Benchmarked next to :func:`test_codec_encode` so the before/after
    rows/s of the compiled encode plan stays visible in every run.
    """
    from repro.net.serialize import _encode_relation_reference

    payload = benchmark(_encode_relation_reference, TPCR)
    assert payload == encode_relation(TPCR)


def test_codec_decode_reference(benchmark):
    """The pre-fast-path decoder (before/after partner of codec_decode)."""
    from repro.net.serialize import _decode_relation_reference

    payload = encode_relation(TPCR)
    result = benchmark(_decode_relation_reference, payload)
    assert result.rows == decode_relation(payload).rows
