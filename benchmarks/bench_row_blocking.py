"""Extension: row blocking — message framing overhead vs block size.

Row blocking is among the classical distributed optimizations Section 4
notes apply directly to GMDJ shipping. Skalla's streaming coordinator
(Section 3.2) synchronizes each arriving block immediately, so blocking
trades extra framing bytes (headers + repeated schema dictionaries) for
merge/transfer overlap. This bench measures the framing cost across
block sizes and verifies results are identical.

Run standalone for the printed report::

    python benchmarks/bench_row_blocking.py
"""

from conftest import SPEEDUP_SCALE
from repro.bench import correlated_query, format_table, speedup_cluster
from repro.bench.figures import HIGH_CARDINALITY_KEY
from repro.data.tpcr import TPCRConfig, generate_tpcr
from repro.distributed import ExecutionConfig, OptimizationOptions, execute_query

BLOCK_SIZES = (0, 256, 64, 16, 4)  # 0 = unblocked


def run_block_sizes():
    tpcr = generate_tpcr(TPCRConfig(scale=SPEEDUP_SCALE))
    cluster = speedup_cluster(tpcr, participating=8, total_sites=8)
    expression = correlated_query(HIGH_CARDINALITY_KEY)
    reference = expression.evaluate_centralized(cluster.conceptual_tables())

    measurements = []
    for block_size in BLOCK_SIZES:
        cluster.reset_network()
        result = execute_query(
            cluster,
            expression,
            OptimizationOptions.none(),
            ExecutionConfig(row_block_size=block_size),
        )
        assert reference.same_rows_any_order_of_columns(result.relation)
        measurements.append(
            (block_size, result.stats.bytes_total, result.stats.tuples_total)
        )
    return measurements


def render(measurements) -> str:
    return format_table(
        ["block size", "bytes", "tuples"],
        [
            ["unblocked" if size == 0 else str(size), str(bytes_total), str(tuples)]
            for size, bytes_total, tuples in measurements
        ],
    )


def test_row_blocking_overhead(benchmark):
    measurements = benchmark.pedantic(run_block_sizes, rounds=1, iterations=1)
    print()
    print(render(measurements))

    by_size = {size: bytes_total for size, bytes_total, _tuples in measurements}
    tuples = {size: count for size, _bytes, count in measurements}

    # Tuple traffic is invariant; only framing bytes change.
    assert len(set(tuples.values())) == 1

    # Smaller blocks cost monotonically more framing bytes.
    assert by_size[0] <= by_size[256] <= by_size[64] <= by_size[16] <= by_size[4]
    assert by_size[4] > by_size[0]


if __name__ == "__main__":
    print(render(run_block_sizes()))
