"""Extension: star coordinator vs multi-tier coordinator tree (Section 6).

The paper's future work proposes "a multi-tiered coordinator
architecture or spanning-tree networks". This bench quantifies the win
on the group-reduction workload at 16 sites: regional coordinators merge
their sites' sub-results by key before forwarding, so the root link
carries O(regions · |Q|) per round instead of O(sites · |Q|).

Run standalone for the printed report::

    python benchmarks/bench_topology.py
"""

from conftest import BENCH_MODEL, SPEEDUP_SCALE
from repro.bench import correlated_query, format_table
from repro.bench.figures import HIGH_CARDINALITY_KEY
from repro.data.tpcr import TPCRConfig, generate_tpcr, nation_partitioner, register_tpcr_fds
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    TreeTopology,
    execute_query,
    execute_query_hierarchical,
)

SITES = 16
REGION_COUNTS = (2, 4, 8)


def build_cluster() -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(SITES)
    tpcr = generate_tpcr(TPCRConfig(scale=SPEEDUP_SCALE * 2))
    cluster.load_partitioned("TPCR", tpcr, nation_partitioner(SITES))
    register_tpcr_fds(cluster.catalog)
    return cluster


def run_topologies():
    cluster = build_cluster()
    expression = correlated_query(HIGH_CARDINALITY_KEY)
    reference = expression.evaluate_centralized(cluster.conceptual_tables())
    options = OptimizationOptions.none()  # isolate the topology effect

    star = execute_query(cluster, expression, options)
    assert reference.same_rows_any_order_of_columns(star.relation)
    # "Uplink busy time": the coordinator/root has ONE wide-area access
    # link shared by all its children, so its serialized transfer time is
    # (total bytes crossing it) / bandwidth — the quantity a coordinator
    # tree exists to reduce. Per-channel response times are also reported.
    star_busy = star.stats.bytes_total / BENCH_MODEL.bandwidth_bytes_per_s
    rows = [
        (
            "star",
            star.stats.bytes_total,  # all traffic crosses the coordinator
            star.stats.bytes_total,
            star_busy,
        )
    ]

    for region_count in REGION_COUNTS:
        cluster.reset_network()
        topology = TreeTopology.balanced(cluster.site_ids, region_count)
        tree = execute_query_hierarchical(cluster, topology, expression, options)
        assert reference.same_rows_any_order_of_columns(tree.relation)
        busy = tree.stats.root_link_bytes / BENCH_MODEL.bandwidth_bytes_per_s
        rows.append(
            (
                f"tree r={region_count}",
                tree.stats.root_link_bytes,
                tree.stats.bytes_total,
                busy,
            )
        )
    return rows


def render(rows) -> str:
    return format_table(
        ["topology", "root-link bytes", "total bytes", "root uplink busy (s)"],
        [
            [name, str(root), str(total), f"{seconds:.4f}"]
            for name, root, total, seconds in rows
        ],
    )


def test_tree_topology_compresses_root_link(benchmark):
    rows = benchmark.pedantic(run_topologies, rounds=1, iterations=1)
    print()
    print(render(rows))

    star_root = rows[0][1]
    by_name = {name: (root, total, seconds) for name, root, total, seconds in rows}

    # Every tree's root link carries less than the star coordinator's link.
    for region_count in REGION_COUNTS:
        root, _total, _seconds = by_name[f"tree r={region_count}"]
        assert root < star_root

    # Fewer regions -> stronger compression of the root link.
    assert by_name["tree r=2"][0] < by_name["tree r=8"][0]

    # On a shared root uplink, every tree beats the star's busy time.
    star_busy = rows[0][3]
    for region_count in REGION_COUNTS:
        assert by_name[f"tree r={region_count}"][2] < star_busy


if __name__ == "__main__":
    print(render(run_topologies()))
