"""Shared configuration for the benchmark suite.

Scales default to values where every figure's *shape* (growth order,
winner, crossover) is clearly measurable in seconds, not minutes. Set
``REPRO_BENCH_SCALE`` to raise them (e.g. ``0.005`` for ~30k-row TPCR).

The ``BENCH_MODEL`` cost model prices communication with bandwidth
dominating latency. Rationale: the experiments run at roughly 1/1000 of
the paper's data size; keeping the paper's absolute WAN bandwidth would
make fixed per-round latency dominate and flatten every curve. Scaling
the bandwidth with the data preserves the paper's latency:transfer
balance, which is what the response-time shapes depend on.
"""

from __future__ import annotations

import os

import pytest

from repro.net.costmodel import CostModel

#: TPCR scale for speed-up figures (paper: 6M rows; this: 6k per 0.001).
SPEEDUP_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))
#: Base scale for the Figure 5 scale-up sweep.
SCALEUP_BASE_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))
#: Participating-site sweep (the paper uses 1..8).
PARTICIPATING = (1, 2, 4, 8)

#: Communication pricing for reported evaluation times (see module doc).
BENCH_MODEL = CostModel(latency_s=0.001, bandwidth_bytes_per_s=1.0e5)


@pytest.fixture(scope="session")
def bench_model():
    return BENCH_MODEL


def print_series(series, extra_columns=()):
    """Print one figure's report to the benchmark log."""
    print()
    print(series.show(list(extra_columns)))
