"""Distributed data cube and unpivot marginals over the flow warehouse.

Shows the two other OLAP query classes the paper cites as expressible
with GMDJs (Section 1): the data cube of Gray et al. and marginal
distributions via unpivot. Both compile to families of GMDJ expressions
that are evaluated *distributed* — each lattice/marginal query ships
through the Skalla pipeline with all optimizations on — and combined at
the client.

Run: ``python examples/datacube.py``
"""

from repro import (
    AggSpec,
    OptimizationOptions,
    SimulatedCluster,
    count_star,
    detail,
)
from repro.data import FlowConfig, generate_flows, router_partitioner
from repro.queries import (
    cube_single_expression,
    execute_cube_distributed,
    execute_marginals_distributed,
)


def build_cluster(config: FlowConfig) -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(config.router_count)
    cluster.load_partitioned("Flow", generate_flows(config), router_partitioner(config))
    return cluster


def distributed_cube(cluster: SimulatedCluster) -> None:
    print("== Data cube over (RouterId, DestAS) ==")
    dims = ["RouterId", "DestAS"]
    aggs = [count_star("flows"), AggSpec("sum", detail.NumBytes, "bytes")]

    cube = execute_cube_distributed(
        cluster, "Flow", dims, aggs, OptimizationOptions.all()
    )
    print(f"distributed cube: {len(cube)} cells")
    print(cube.sorted_by(dims).pretty(max_rows=12))

    # Verify against the single-GMDJ formulation evaluated centrally.
    conceptual = cluster.conceptual_table("Flow")
    single = cube_single_expression(conceptual, "Flow", dims, aggs)
    reference = single.evaluate_centralized({"Flow": conceptual})
    assert reference.same_rows_any_order_of_columns(cube)
    print("cube verified against the single-GMDJ formulation ✓\n")


def distributed_marginals(cluster: SimulatedCluster) -> None:
    print("== Unpivot marginals: traffic distribution per attribute ==")
    attributes = ["RouterId", "DestPort", "DestAS"]
    aggs = [count_star("flows"), AggSpec("avg", detail.NumBytes, "avg_bytes")]
    marginals = execute_marginals_distributed(
        cluster, "Flow", attributes, aggs, OptimizationOptions.all()
    )
    print(marginals.sorted_by(["flows"], descending=True).pretty(max_rows=12))
    print()


def main():
    config = FlowConfig(flow_count=3000, router_count=4, seed=23)
    cluster = build_cluster(config)
    print(
        f"distributed flow warehouse: {config.flow_count} flows over "
        f"{config.router_count} router sites\n"
    )
    distributed_cube(cluster)
    distributed_marginals(cluster)


if __name__ == "__main__":
    main()
