"""The paper's motivating application: IP-flow analysis at the routers.

Reproduces Section 2's scenario end to end:

- a distributed warehouse with one Skalla site per router, holding the
  flows that router captured (RouterId is the partition attribute;
  SourceAS is pinned to routers as in Examples 2 and 5);
- **Example 1**: per (SourceAS, DestAS), the total number of flows and
  the number of flows whose NumBytes exceeds the pair's average —
  evaluated distributed, with the optimizer applying Proposition 2 and
  Corollary 1 exactly as Example 5 describes (one synchronization);
- the introduction's two analyst questions: the hourly fraction of Web
  traffic, and the source ASes whose flows come within 10% of the
  maximum flow size (a windowed-comparison query).

Run: ``python examples/network_flows.py``
"""

from repro import (
    AggSpec,
    GMDJExpression,
    MDBlock,
    MDStep,
    OptimizationOptions,
    QueryBuilder,
    SimulatedCluster,
    base,
    col,
    count_star,
    detail,
    execute_query,
    windowed_comparison_query,
)
from repro.data import FlowConfig, generate_flows, router_partitioner
from repro.data.flows import WEB_PORTS
from repro.gmdj import DistinctBase
from repro.relalg import INT


def build_cluster(config: FlowConfig) -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(config.router_count)
    cluster.load_partitioned(
        "Flow", generate_flows(config), router_partitioner(config)
    )
    # Every SourceAS routes through one router (Examples 2/5), so
    # SourceAS functionally determines RouterId: a partition attribute.
    cluster.catalog.add_functional_dependency("SourceAS", "RouterId")

    # Register a derived view with the hour-of-trace precomputed, the
    # way a production warehouse would maintain a derived column.
    for site in cluster.sites.values():
        flows = site.warehouse.table("Flow")
        site.warehouse.register(
            "FlowHourly",
            flows.extend("Hour", INT, (col.StartTime - col.StartTime % 3600) / 3600),
        )
    cluster.catalog.register(
        "FlowHourly", cluster.site_ids, partition_attrs=("RouterId",)
    )
    return cluster


def example1(cluster: SimulatedCluster) -> None:
    print("== Example 1: flows above their (SourceAS, DestAS) average ==")
    expression = (
        QueryBuilder("Flow", keys=["SourceAS", "DestAS"])
        .stage([count_star("cnt1"), AggSpec("sum", detail.NumBytes, "sum1")])
        .stage(
            [count_star("cnt2")],
            extra=detail.NumBytes >= base.sum1 / base.cnt1,
        )
        .build()
    )
    result = execute_query(cluster, expression, OptimizationOptions.all())
    print(result.plan.describe())
    print(
        f"-> evaluated with {result.plan.synchronization_count} synchronization(s), "
        f"{result.stats.bytes_total} bytes shipped (Example 5's single-sync plan)"
    )
    print(result.relation.sorted_by(["SourceAS", "DestAS"]).pretty(max_rows=10))
    reference = expression.evaluate_centralized(cluster.conceptual_tables())
    assert reference.same_rows_any_order_of_columns(result.relation)
    print("verified against centralized evaluation ✓\n")


def hourly_web_fraction(cluster: SimulatedCluster) -> None:
    print("== Hourly fraction of flows due to Web traffic ==")
    expression = GMDJExpression(
        DistinctBase("FlowHourly", ["Hour"]),
        [
            MDStep(
                "FlowHourly",
                [
                    MDBlock([count_star("total")], base.Hour == detail.Hour),
                    MDBlock(
                        [count_star("web")],
                        (base.Hour == detail.Hour)
                        & detail.DestPort.is_in(WEB_PORTS),
                    ),
                ],
            )
        ],
    )
    result = execute_query(cluster, expression, OptimizationOptions.all())
    print("hour | total | web | fraction")
    for hour, total, web in result.relation.sorted_by(["Hour"]).rows[:8]:
        print(f"{int(hour):4d} | {total:5d} | {web:4d} | {web / total:.2f}")
    print()


def heavy_hitters(cluster: SimulatedCluster) -> None:
    print("== Source ASes within 10% of the maximum flow size ==")
    expression = windowed_comparison_query(
        "Flow", ["SourceAS"], detail.NumBytes, fraction=0.10, output_prefix="nb"
    )
    result = execute_query(cluster, expression, OptimizationOptions.all())
    print(result.relation.sorted_by(["nb_max"], descending=True).pretty(max_rows=8))
    print()


def main():
    config = FlowConfig(flow_count=4000, router_count=8, seed=11)
    cluster = build_cluster(config)
    print(
        f"distributed flow warehouse: {config.flow_count} flows over "
        f"{config.router_count} router sites\n"
    )
    example1(cluster)
    hourly_web_fraction(cluster)
    heavy_hitters(cluster)


if __name__ == "__main__":
    main()
