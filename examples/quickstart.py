"""Quickstart: a distributed OLAP query in ~30 lines.

Builds a four-site distributed warehouse over TPC-R-style data
partitioned on NationKey (the paper's setup), runs a correlated
aggregate query — per nation: row count, average price, and the number
of line items priced above their nation's average — and compares the
unoptimized and fully optimized distributed plans.

Run: ``python examples/quickstart.py``
"""

from repro import (
    AggSpec,
    OptimizationOptions,
    QueryBuilder,
    SimulatedCluster,
    base,
    count_star,
    detail,
    execute_query,
)
from repro.data import TPCRConfig, generate_tpcr, nation_partitioner


def main():
    # 1. Create a cluster of four Skalla sites and load partitioned data.
    cluster = SimulatedCluster.with_sites(4)
    tpcr = generate_tpcr(TPCRConfig(scale=0.002))
    cluster.load_partitioned("TPCR", tpcr, nation_partitioner(4))
    print(f"loaded {len(tpcr)} rows across {cluster.site_count} sites\n")

    # 2. Express the query as a GMDJ chain: stage 2's condition references
    #    stage 1's aggregates (a correlated aggregate query).
    expression = (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("above_avg")], extra=detail.Price >= base.avg_price)
        .build()
    )

    # 3. Execute without and with the Skalla optimizations.
    for label, options in [
        ("no optimizations", OptimizationOptions.none()),
        ("all optimizations", OptimizationOptions.all()),
    ]:
        cluster.reset_network()
        result = execute_query(cluster, expression, options)
        print(f"=== {label} ===")
        print(result.plan.describe())
        print(
            f"synchronizations: {result.plan.synchronization_count}, "
            f"bytes shipped: {result.stats.bytes_total}, "
            f"Theorem 2 bound respected: {result.respects_theorem2()}"
        )
        print(result.relation.sorted_by(["NationKey"]).pretty(max_rows=8))
        print()

    # 4. Sanity: the distributed answer equals centralized evaluation.
    reference = expression.evaluate_centralized(cluster.conceptual_tables())
    assert reference.same_rows_any_order_of_columns(result.relation)
    print("distributed result verified against centralized evaluation ✓")


if __name__ == "__main__":
    main()
