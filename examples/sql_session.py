"""An analyst session in the OLAP SQL dialect, on star and tree topologies.

Demonstrates the two main extensions beyond the paper's core system:

- the **SQL front-end** (the "query generator" role of the paper's
  Figure 1): queries are typed, parsed to GMDJ expressions and planned
  by Egil like any other query;
- the **multi-tier coordinator** (the paper's future-work architecture,
  Section 6): the same queries run over a two-level coordinator tree,
  and we compare how many bytes cross the root's wide-area uplink;
- results are exported to CSV for downstream tools.

Run: ``python examples/sql_session.py``
"""

import io

from repro import (
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
    parse_olap_query,
)
from repro.data import (
    TPCRConfig,
    generate_tpcr,
    nation_partitioner,
    register_tpcr_fds,
)
from repro.distributed import TreeTopology, execute_query_hierarchical
from repro.relalg import write_csv

SITES = 8

QUERIES = {
    "nation revenue": (
        "SELECT NationKey, COUNT(*) AS items, SUM(Price) AS revenue "
        "FROM TPCR GROUP BY NationKey"
    ),
    "suppliers above their average": (
        "SELECT SuppKey, COUNT(*) AS items, AVG(Price) AS avg_price "
        "FROM TPCR GROUP BY SuppKey "
        "THEN SELECT COUNT(*) AS above, MAX(Price) AS top "
        "WHERE Price >= avg_price"
    ),
    "discounted heavy lines per customer": (
        "SELECT CustName, COUNT(*) AS items, AVG(Quantity) AS avg_qty "
        "FROM TPCR WHERE Discount >= 0.05 GROUP BY CustName "
        "THEN SELECT COUNT(*) AS heavy WHERE Quantity >= avg_qty * 1.5"
    ),
}


def build_cluster() -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(SITES)
    tpcr = generate_tpcr(TPCRConfig(scale=0.002))
    cluster.load_partitioned("TPCR", tpcr, nation_partitioner(SITES))
    register_tpcr_fds(cluster.catalog)
    print(f"warehouse: {len(tpcr)} line items across {SITES} sites\n")
    return cluster


def main():
    cluster = build_cluster()
    topology = TreeTopology.balanced(cluster.site_ids, 2)
    options = OptimizationOptions.all()

    for title, sql in QUERIES.items():
        print(f"== {title} ==")
        print(f"   {sql}")
        expression = parse_olap_query(sql)

        cluster.reset_network()
        star = execute_query(cluster, expression, options)
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        assert reference.same_rows_any_order_of_columns(star.relation)

        cluster.reset_network()
        tree = execute_query_hierarchical(cluster, topology, expression, options)
        assert reference.same_rows_any_order_of_columns(tree.relation)

        print(
            f"   star: {star.plan.synchronization_count} sync(s), "
            f"{star.stats.bytes_total} bytes at the coordinator"
        )
        print(
            f"   tree: root uplink {tree.stats.root_link_bytes} bytes "
            f"({len(topology.regions)} regions)"
        )
        print(star.relation.pretty(max_rows=5))
        print()

    # Export the last result for downstream tooling.
    buffer = io.StringIO()
    write_csv(star.relation, buffer)
    lines = buffer.getvalue().splitlines()
    print(f"CSV export: {len(lines) - 1} data rows; header: {lines[0][:70]}...")


if __name__ == "__main__":
    main()
