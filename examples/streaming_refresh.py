"""A standing traffic report that follows the live flow feed.

The paper's routers dump flow records continuously; this example keeps a
per-AS traffic report *standing* while new flows arrive, using the
incremental refresh built on Theorem 1's mergeable sub-aggregates: each
refresh ships only the delta's contribution (touched groups), never
re-reads old data — except when a brand-new AS appears, whose group must
be back-filled from the full history once.

Run: ``python examples/streaming_refresh.py``
"""

from repro import (
    AggSpec,
    GMDJExpression,
    MDBlock,
    MDStep,
    SimulatedCluster,
    base,
    count_star,
    detail,
)
from repro.data import FlowConfig, generate_flows, router_partitioner
from repro.distributed import IncrementalView
from repro.gmdj import DistinctBase

ROUTERS = 4


def build_cluster(initial):
    config = FlowConfig(flow_count=1, router_count=ROUTERS)  # partitioner shape
    cluster = SimulatedCluster.with_sites(ROUTERS)
    cluster.load_partitioned("Flow", initial, router_partitioner(config))
    return cluster


def traffic_report_expression():
    return GMDJExpression(
        DistinctBase("Flow", ["SourceAS"]),
        [
            MDStep(
                "Flow",
                [
                    MDBlock(
                        [
                            count_star("flows"),
                            AggSpec("sum", detail.NumBytes, "bytes"),
                            AggSpec("max", detail.NumBytes, "largest"),
                        ],
                        base.SourceAS == detail.SourceAS,
                    )
                ],
            )
        ],
    )


def split_by_router(relation):
    config = FlowConfig(flow_count=1, router_count=ROUTERS)
    pieces = router_partitioner(config).split(relation)
    return {
        f"site{index}": piece for index, piece in enumerate(pieces) if len(piece)
    }


def main():
    initial = generate_flows(FlowConfig(flow_count=2000, router_count=ROUTERS, seed=31))
    cluster = build_cluster(initial)
    view = IncrementalView(cluster, traffic_report_expression())
    print(f"initial report over {len(initial)} flows, {view.group_count} ASes")
    print(view.relation().sorted_by(["bytes"], descending=True).pretty(max_rows=5))
    print()

    for minute in range(1, 4):
        batch = generate_flows(
            FlowConfig(flow_count=300, router_count=ROUTERS, seed=31 + minute)
        )
        result = view.refresh(split_by_router(batch))
        shipped = result.stats.bytes_total
        print(
            f"minute {minute}: +{len(batch)} flows, {result.new_groups} new ASes, "
            f"{shipped} bytes shipped for the refresh"
        )
        print(result.relation.sorted_by(["bytes"], descending=True).pretty(max_rows=5))
        print()

    # The standing view equals a from-scratch evaluation at every point.
    reference = traffic_report_expression().evaluate_centralized(
        cluster.conceptual_tables()
    )
    assert reference.same_rows_any_order_of_columns(view.relation())
    print("standing view verified against full re-evaluation ✓")


if __name__ == "__main__":
    main()
