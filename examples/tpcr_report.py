"""A business-style report over the distributed TPC-R warehouse.

Combines the query classes into one "analyst session" against an
eight-site warehouse partitioned on NationKey (the paper's evaluation
setup), and prints what each optimization buys for each query:

1. a multi-feature query (Ross et al.): per nation, the cheapest line
   item, how many line items hit that price, and the average quantity of
   those cheapest sales;
2. a correlated-aggregate "big spenders" query on the high-cardinality
   customer name attribute;
3. an optimization scorecard: the same queries under every single
   optimization toggle.

Run: ``python examples/tpcr_report.py``
"""

from repro import (
    AggSpec,
    Feature,
    OptimizationOptions,
    QueryBuilder,
    SimulatedCluster,
    base,
    col,
    count_star,
    detail,
    execute_query,
    multifeature_query,
)
from repro.data import (
    TPCRConfig,
    generate_tpcr,
    nation_partitioner,
    register_tpcr_fds,
)

SITES = 8


def build_cluster() -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(SITES)
    tpcr = generate_tpcr(TPCRConfig(scale=0.003))
    cluster.load_partitioned("TPCR", tpcr, nation_partitioner(SITES))
    register_tpcr_fds(cluster.catalog)
    print(f"warehouse: {len(tpcr)} line items across {SITES} sites\n")
    return cluster


def cheapest_sales_report(cluster: SimulatedCluster) -> None:
    print("== Multi-feature query: cheapest sale per nation ==")
    expression = multifeature_query(
        "TPCR",
        ["NationKey"],
        [
            Feature([AggSpec("min", detail.Price, "min_price")]),
            Feature(
                [count_star("at_min"), AggSpec("avg", detail.Quantity, "avg_qty")],
                when=detail.Price == base.min_price,
            ),
        ],
    )
    result = execute_query(cluster, expression, OptimizationOptions.all())
    print(result.relation.sorted_by(["NationKey"]).pretty(max_rows=10))
    reference = expression.evaluate_centralized(cluster.conceptual_tables())
    assert reference.same_rows_any_order_of_columns(result.relation)
    print(
        f"evaluated in {result.plan.synchronization_count} synchronization(s), "
        f"{result.stats.bytes_total} bytes ✓\n"
    )


def big_spenders(cluster: SimulatedCluster) -> None:
    print("== Customers buying above twice their own average ==")
    expression = (
        QueryBuilder("TPCR", keys=["CustName"])
        .stage([count_star("orders"), AggSpec("avg", detail.Price, "avg_price")])
        .stage(
            [count_star("splurges"), AggSpec("max", detail.Price, "biggest")],
            extra=detail.Price >= base.avg_price * 2,
        )
        .build()
    )
    result = execute_query(cluster, expression, OptimizationOptions.all())
    splurgers = result.relation.select(col.splurges > 0)
    print(
        f"{len(splurgers)} of {len(result.relation)} customers have line "
        f"items above twice their average price"
    )
    print(splurgers.sorted_by(["biggest"], descending=True).pretty(max_rows=8))
    print()


def scorecard(cluster: SimulatedCluster) -> None:
    print("== Optimization scorecard (correlated query on CustName) ==")
    expression = (
        QueryBuilder("TPCR", keys=["CustName"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "m")])
        .stage([count_star("hi")], extra=detail.Price >= base.m)
        .build()
    )
    arms = {
        "none": OptimizationOptions.none(),
        "+independent GR": OptimizationOptions(
            False, False, False, True, False
        ),
        "+sync reduction": OptimizationOptions(False, True, False, False, False),
        "all": OptimizationOptions.all(),
    }
    print(f"{'arm':18s} {'syncs':>5s} {'bytes':>10s} {'tuples':>8s}")
    for name, options in arms.items():
        cluster.reset_network()
        result = execute_query(cluster, expression, options)
        print(
            f"{name:18s} {result.plan.synchronization_count:5d} "
            f"{result.stats.bytes_total:10d} {result.stats.tuples_total:8d}"
        )
    print()


def main():
    cluster = build_cluster()
    cheapest_sales_report(cluster)
    big_spenders(cluster)
    scorecard(cluster)


if __name__ == "__main__":
    main()
