"""repro — Skalla: efficient OLAP query processing in distributed data warehouses.

A from-scratch reproduction of Akinde, Böhlen, Johnson, Lakshmanan &
Srivastava, *"Efficient OLAP Query Processing in Distributed Data
Warehouses"* (2002): the GMDJ operator, the round-based coordinator/site
evaluation algorithm (Alg. GMDJDistribEval), the Egil optimizer with all
four distributed-evaluation optimizations, and the TPC-R-based
experimental study.

Quickstart::

    from repro import (
        AggSpec, OptimizationOptions, QueryBuilder, SimulatedCluster,
        base, count_star, detail, execute_query,
    )
    from repro.data import TPCRConfig, generate_tpcr, nation_partitioner

    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned("TPCR", generate_tpcr(TPCRConfig(scale=0.001)),
                             nation_partitioner(4))
    expr = (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("big")], extra=detail.Price >= base.avg_price)
        .build()
    )
    result = execute_query(cluster, expr, OptimizationOptions.all())
    print(result.relation.pretty())
    print(result.stats.summary())
"""

from repro.distributed import (
    DistributedResult,
    OptimizationOptions,
    Plan,
    SimulatedCluster,
    execute_plan,
    execute_query,
    plan_query,
)
from repro.gmdj import (
    DistinctBase,
    GMDJExpression,
    LiteralBase,
    MDBlock,
    MDStep,
    coalesce,
)
from repro.net import WAN, CostModel
from repro.queries import (
    Feature,
    QueryBuilder,
    group_by_query,
    multifeature_query,
    parse_olap_query,
    windowed_comparison_query,
)
from repro.relalg import (
    AggSpec,
    Relation,
    Schema,
    base,
    col,
    count_star,
    detail,
)
from repro.warehouse import (
    DistributionCatalog,
    HashPartitioner,
    LocalWarehouse,
    RangePartitioner,
    RoundRobinPartitioner,
    ValueListPartitioner,
)

__version__ = "1.0.0"

__all__ = [
    "AggSpec",
    "CostModel",
    "DistinctBase",
    "DistributedResult",
    "DistributionCatalog",
    "Feature",
    "GMDJExpression",
    "HashPartitioner",
    "LiteralBase",
    "LocalWarehouse",
    "MDBlock",
    "MDStep",
    "OptimizationOptions",
    "Plan",
    "QueryBuilder",
    "RangePartitioner",
    "Relation",
    "RoundRobinPartitioner",
    "Schema",
    "SimulatedCluster",
    "ValueListPartitioner",
    "WAN",
    "base",
    "coalesce",
    "col",
    "count_star",
    "detail",
    "execute_plan",
    "execute_query",
    "group_by_query",
    "parse_olap_query",
    "multifeature_query",
    "plan_query",
    "windowed_comparison_query",
]
