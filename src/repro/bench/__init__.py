"""``repro.bench`` — the experiment harness and the paper's figures.

:mod:`~repro.bench.harness` builds the paper's experimental setups and
runs optimization "arms" with full verification;
:mod:`~repro.bench.figures` parameterizes the four experiments of
Section 5 (Figures 2-5). The ``benchmarks/`` directory at the repository
root wraps these in pytest-benchmark targets and printable reports.
"""

from repro.bench.figures import (
    ALL_OPTS,
    AWARE_AND_INDEPENDENT,
    COALESCED,
    GROUP_REDUCTION_ONLY,
    HIGH_CARDINALITY_KEY,
    LOW_CARDINALITY_KEY,
    NO_OPTS,
    SYNC_REDUCED,
    TrafficFormulaPoint,
    coalescable_query,
    combined_query,
    correlated_query,
    executor_sweep,
    figure2,
    figure2_aware,
    figure3,
    figure4,
    figure5,
)
from repro.bench.harness import (
    ArmMeasurement,
    FigureSeries,
    format_table,
    growth_exponent,
    run_arm,
    run_arms,
    scaleup_cluster,
    service_cache_report,
    speedup_cluster,
    speedup_cluster_range,
)

__all__ = [
    "ALL_OPTS",
    "ArmMeasurement",
    "AWARE_AND_INDEPENDENT",
    "COALESCED",
    "FigureSeries",
    "GROUP_REDUCTION_ONLY",
    "HIGH_CARDINALITY_KEY",
    "LOW_CARDINALITY_KEY",
    "NO_OPTS",
    "SYNC_REDUCED",
    "TrafficFormulaPoint",
    "coalescable_query",
    "combined_query",
    "correlated_query",
    "executor_sweep",
    "figure2",
    "figure2_aware",
    "figure3",
    "figure4",
    "figure5",
    "format_table",
    "growth_exponent",
    "run_arm",
    "run_arms",
    "scaleup_cluster",
    "service_cache_report",
    "speedup_cluster",
    "speedup_cluster_range",
]
