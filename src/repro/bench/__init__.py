"""``repro.bench`` — the experiment harness and the paper's figures.

:mod:`~repro.bench.harness` builds the paper's experimental setups and
runs optimization "arms" with full verification;
:mod:`~repro.bench.figures` parameterizes the four experiments of
Section 5 (Figures 2-5); :mod:`~repro.bench.loadgen` drives the query
service with seeded closed/open-loop mixes and emits the per-stage SLO
report behind ``repro loadgen``. The ``benchmarks/`` directory at the
repository root wraps these in pytest-benchmark targets and printable
reports.
"""

from repro.bench.figures import (
    ALL_OPTS,
    AWARE_AND_INDEPENDENT,
    COALESCED,
    GROUP_REDUCTION_ONLY,
    HIGH_CARDINALITY_KEY,
    LOW_CARDINALITY_KEY,
    NO_OPTS,
    SYNC_REDUCED,
    TrafficFormulaPoint,
    coalescable_query,
    combined_query,
    correlated_query,
    executor_sweep,
    figure2,
    figure2_aware,
    figure3,
    figure4,
    figure5,
)
from repro.bench.harness import (
    ArmMeasurement,
    FigureSeries,
    check_micro_baseline,
    codec_microbenchmark,
    columnar_sweep,
    format_table,
    growth_exponent,
    run_arm,
    run_arms,
    scaleup_cluster,
    service_cache_report,
    speedup_cluster,
    speedup_cluster_range,
)
from repro.bench.loadgen import (
    LoadgenConfig,
    build_query_pool,
    check_slo_baseline,
    render_slo_table,
    run_loadgen,
    strip_timings,
)

__all__ = [
    "ALL_OPTS",
    "ArmMeasurement",
    "AWARE_AND_INDEPENDENT",
    "COALESCED",
    "FigureSeries",
    "GROUP_REDUCTION_ONLY",
    "HIGH_CARDINALITY_KEY",
    "LOW_CARDINALITY_KEY",
    "LoadgenConfig",
    "NO_OPTS",
    "SYNC_REDUCED",
    "TrafficFormulaPoint",
    "build_query_pool",
    "check_micro_baseline",
    "check_slo_baseline",
    "coalescable_query",
    "codec_microbenchmark",
    "columnar_sweep",
    "combined_query",
    "correlated_query",
    "executor_sweep",
    "figure2",
    "figure2_aware",
    "figure3",
    "figure4",
    "figure5",
    "format_table",
    "growth_exponent",
    "render_slo_table",
    "run_arm",
    "run_arms",
    "run_loadgen",
    "scaleup_cluster",
    "service_cache_report",
    "speedup_cluster",
    "speedup_cluster_range",
    "strip_timings",
]
