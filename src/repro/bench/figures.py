"""The paper's four experiments (Figures 2-5), parameterized.

Each ``figure*`` function reproduces one figure of Section 5 as a data
sweep and returns a :class:`~repro.bench.harness.FigureSeries` (plus
figure-specific extras). Scales default to laptop-size; the *shapes* —
which arm wins, growth orders, crossovers — are what reproduce the paper,
not absolute times (the paper ran Daytona on 1999-era distributed
hardware; we run an in-process simulator, see DESIGN.md).

Query roster (Section 5.1: "In each of our test queries, we compute a
COUNT and an AVG aggregate on each GMDJ operator"):

- *group reduction query* — a two-GMDJ correlated-aggregate query
  grouped on the (high-cardinality) partitioned customer attribute; the
  correlation makes it non-coalescable, so both arms run base + 2 MD
  rounds and only the group reduction differs.
- *coalescing query* — two GMDJs whose conditions are independent, so
  they coalesce into a single operator; with the base merged
  (Proposition 2) the coalesced plan is one round of upward-only traffic.
- *synchronization reduction query* — the correlated query again, with
  the sync-reduction arm chaining both GMDJs locally (Corollary 1 via
  the CustName -> NationKey functional dependency) and merging the base.
- *combined reductions query* — three GMDJs (two coalescable + one
  correlated) exercising every optimization at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bench.harness import (
    ArmMeasurement,
    FigureSeries,
    run_arms,
    scaleup_cluster,
    speedup_cluster,
)
from repro.data.tpcr import TPCRConfig, generate_tpcr
from repro.distributed import OptimizationOptions
from repro.gmdj.expression import GMDJExpression
from repro.net.costmodel import CostModel, WAN
from repro.queries.olap import QueryBuilder
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail

HIGH_CARDINALITY_KEY = ["CustName"]  # unique per customer (paper: 100k values)
LOW_CARDINALITY_KEY = ["SuppKey"]  # 2000-4000 values (paper Section 5.1)


# ---------------------------------------------------------------------------
# Query roster
# ---------------------------------------------------------------------------


def correlated_query(keys: Sequence[str]) -> GMDJExpression:
    """COUNT+AVG, then COUNT+AVG over tuples above the group average.

    The stage-2 condition references stage-1 aggregates, so coalescing
    cannot apply — the paper's group-reduction/sync-reduction workload.
    """
    return (
        QueryBuilder("TPCR", keys=list(keys))
        .stage([count_star("cnt1"), AggSpec("avg", detail.Price, "avg1")])
        .stage(
            [count_star("cnt2"), AggSpec("avg", detail.Price, "avg2")],
            extra=detail.Price >= base.avg1,
        )
        .build()
    )


def coalescable_query(keys: Sequence[str]) -> GMDJExpression:
    """Two GMDJs with independent conditions (the coalescing workload)."""
    return (
        QueryBuilder("TPCR", keys=list(keys))
        .stage([count_star("cnt1"), AggSpec("avg", detail.Price, "avg1")])
        .stage(
            [count_star("cnt2"), AggSpec("avg", detail.Quantity, "avg2")],
            extra=detail.Discount >= 0.05,
        )
        .build()
    )


def combined_query(keys: Sequence[str]) -> GMDJExpression:
    """Three GMDJs: two coalescable stages plus a correlated stage."""
    return (
        QueryBuilder("TPCR", keys=list(keys))
        .stage([count_star("cnt1"), AggSpec("avg", detail.Price, "avg1")])
        .stage(
            [count_star("cnt2"), AggSpec("avg", detail.Quantity, "avg2")],
            extra=detail.Discount >= 0.05,
        )
        .stage(
            [count_star("cnt3"), AggSpec("avg", detail.Price, "avg3")],
            extra=detail.Price >= base.avg1,
        )
        .build()
    )


# ---------------------------------------------------------------------------
# Optimization arms
# ---------------------------------------------------------------------------

NO_OPTS = OptimizationOptions.none()
GROUP_REDUCTION_ONLY = OptimizationOptions(
    coalescing=False,
    sync_reduction=False,
    aware_group_reduction=False,
    independent_group_reduction=True,
    site_pruning=False,
)
AWARE_AND_INDEPENDENT = OptimizationOptions(
    coalescing=False,
    sync_reduction=False,
    aware_group_reduction=True,
    independent_group_reduction=True,
    site_pruning=False,
)
COALESCED = OptimizationOptions(
    coalescing=True,
    sync_reduction=True,
    aware_group_reduction=False,
    independent_group_reduction=False,
    site_pruning=False,
)
SYNC_REDUCED = OptimizationOptions(
    coalescing=False,
    sync_reduction=True,
    aware_group_reduction=False,
    independent_group_reduction=False,
    site_pruning=False,
)
ALL_OPTS = OptimizationOptions.all()


# ---------------------------------------------------------------------------
# Figure 2 — group reduction
# ---------------------------------------------------------------------------


@dataclass
class TrafficFormulaPoint:
    """The paper's Figure-2 traffic analysis, checked per site count.

    The paper derives: groups transferred with reduction / without
    = (2c + 2n + 1) / (4n + 1), matching experiment "to within 5%".
    """

    sites: int
    c: float
    predicted_ratio: float
    measured_ratio: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured_ratio - self.predicted_ratio) / self.predicted_ratio


def figure2(
    scale: float = 0.0005,
    participating: Sequence[int] = range(1, 9),
    total_sites: int = 8,
    model: CostModel = WAN,
    keys: Optional[Sequence[str]] = None,
    check_reference: bool = True,
) -> tuple:
    """Group reduction query: time & traffic vs participating sites.

    Returns ``(series, formula_points)``.
    """
    tpcr = generate_tpcr(TPCRConfig(scale=scale))
    keys = list(keys or HIGH_CARDINALITY_KEY)
    series = FigureSeries("Figure 2: group reduction query", "sites")
    formula_points = []
    arms = {
        "no_reduction": NO_OPTS,
        "group_reduction": GROUP_REDUCTION_ONLY,
    }
    for sites in participating:
        cluster = speedup_cluster(tpcr, sites, total_sites)
        expression = correlated_query(keys)
        measurements = run_arms(
            cluster, expression, arms, model, check_reference=check_reference
        )
        series.add_point(sites, measurements)
        formula_points.append(
            _traffic_formula_point(
                sites,
                measurements["no_reduction"],
                measurements["group_reduction"],
            )
        )
    return series, formula_points


def _traffic_formula_point(
    sites: int, unreduced: ArmMeasurement, reduced: ArmMeasurement
) -> TrafficFormulaPoint:
    """Check the paper's traffic analysis for the group reduction query.

    With g groups per site and n sites (so |Q| = ng groups): the base
    round ships ng up; each of the two MD rounds ships n·ng down. Without
    reduction each round ships n·ng back up — total ng(4n + 1). With
    reduction a site returns only the c·g groups it updated — total
    ng(2c + 2n + 1). ``c`` is *measured* from the reduced arm's up-leg
    (per site per round, relative to its g local groups), and the
    predicted ratio is compared against the measured tuple-count ratio.
    """
    groups_total = unreduced.result_rows  # ng
    g = groups_total / sites
    per_site_per_round_up = reduced.tuples_up_md / (reduced.md_rounds * sites)
    c = per_site_per_round_up / g if g else 0.0
    predicted = (2 * c + 2 * sites + 1) / (4 * sites + 1)
    measured = reduced.tuples_total / max(1, unreduced.tuples_total)
    return TrafficFormulaPoint(sites, c, predicted, measured)


def figure2_aware(
    scale: float = 0.0005,
    participating: Sequence[int] = range(1, 9),
    total_sites: int = 8,
    model: CostModel = WAN,
    check_reference: bool = True,
) -> FigureSeries:
    """Extension: coordinator-side (distribution-aware) group reduction.

    Section 5.2 observes that the site-side reduction "solves half of the
    inefficiency ... Distribution-aware (i.e., coordinator side) group
    reduction would make the curves linear" — but the paper does not
    measure it. This experiment does: TPCR is *range*-partitioned on
    CustKey so each site's φᵢ constrains the grouping attribute, the
    optimizer derives per-site ship filters, and the coordinator-to-site
    leg drops from n·|X| to |X| total, making the traffic linear in n.
    """
    from repro.bench.harness import speedup_cluster_range

    tpcr = generate_tpcr(TPCRConfig(scale=scale))
    series = FigureSeries(
        "Figure 2 extension: distribution-aware group reduction", "sites"
    )
    arms = {
        "no_reduction": NO_OPTS,
        "independent_only": GROUP_REDUCTION_ONLY,
        "aware+independent": AWARE_AND_INDEPENDENT,
    }
    for sites in participating:
        cluster = speedup_cluster_range(tpcr, sites, total_sites, "CustKey")
        expression = correlated_query(["CustKey"])
        measurements = run_arms(
            cluster, expression, arms, model, check_reference=check_reference
        )
        series.add_point(sites, measurements)
    return series


# ---------------------------------------------------------------------------
# Figure 3 — coalescing
# ---------------------------------------------------------------------------


def figure3(
    scale: float = 0.0005,
    participating: Sequence[int] = range(1, 9),
    total_sites: int = 8,
    model: CostModel = WAN,
    check_reference: bool = True,
) -> dict:
    """Coalescing query, high- and low-cardinality grouping.

    Returns ``{"high": FigureSeries, "low": FigureSeries}``.
    """
    tpcr = generate_tpcr(TPCRConfig(scale=scale))
    arms = {"non_coalesced": NO_OPTS, "coalesced": COALESCED}
    result = {}
    for label, keys in (("high", HIGH_CARDINALITY_KEY), ("low", LOW_CARDINALITY_KEY)):
        series = FigureSeries(
            f"Figure 3: coalescing query ({label} cardinality)", "sites"
        )
        for sites in participating:
            cluster = speedup_cluster(tpcr, sites, total_sites)
            measurements = run_arms(
                cluster,
                coalescable_query(keys),
                arms,
                model,
                check_reference=check_reference,
            )
            series.add_point(sites, measurements)
        result[label] = series
    return result


# ---------------------------------------------------------------------------
# Figure 4 — synchronization reduction
# ---------------------------------------------------------------------------


def figure4(
    scale: float = 0.0005,
    participating: Sequence[int] = range(1, 9),
    total_sites: int = 8,
    model: CostModel = WAN,
    check_reference: bool = True,
) -> dict:
    """Synchronization reduction (without coalescing), high/low cardinality."""
    tpcr = generate_tpcr(TPCRConfig(scale=scale))
    arms = {"no_sync_reduction": NO_OPTS, "sync_reduction": SYNC_REDUCED}
    result = {}
    for label, keys in (("high", HIGH_CARDINALITY_KEY), ("low", LOW_CARDINALITY_KEY)):
        series = FigureSeries(
            f"Figure 4: synchronization reduction query ({label} cardinality)",
            "sites",
        )
        for sites in participating:
            cluster = speedup_cluster(tpcr, sites, total_sites)
            measurements = run_arms(
                cluster,
                correlated_query(keys),
                arms,
                model,
                check_reference=check_reference,
            )
            series.add_point(sites, measurements)
        result[label] = series
    return result


# ---------------------------------------------------------------------------
# Figure 5 — combined reductions (scale-up)
# ---------------------------------------------------------------------------


def figure5(
    base_scale: float = 0.0005,
    scale_factors: Sequence[int] = (1, 2, 3, 4),
    sites: int = 4,
    model: CostModel = WAN,
    constant_groups: bool = False,
    check_reference: bool = True,
) -> FigureSeries:
    """Combined reductions query: data scale-up at a fixed site count.

    ``constant_groups=True`` runs the paper's second variant where the
    group count stays fixed while the database grows.
    """
    arms = {"no_optimizations": NO_OPTS, "all_optimizations": ALL_OPTS}
    variant = "constant groups" if constant_groups else "groups grow with data"
    series = FigureSeries(
        f"Figure 5: combined reductions scale-up ({variant})", "scale_factor"
    )
    fixed_customers = (
        max(1, int(100_000 * base_scale)) if constant_groups else 0
    )
    for factor in scale_factors:
        config = TPCRConfig(
            scale=base_scale * factor, fixed_customers=fixed_customers
        )
        cluster = scaleup_cluster(config, sites)
        measurements = run_arms(
            cluster,
            combined_query(HIGH_CARDINALITY_KEY),
            arms,
            model,
            check_reference=check_reference,
        )
        series.add_point(factor, measurements)
    return series


def executor_sweep(
    scale: float = 0.002,
    sites: int = 8,
    executors: Sequence[str] = ("serial", "threads", "processes"),
    repetitions: int = 1,
    options: Optional[OptimizationOptions] = None,
) -> dict:
    """Tentpole experiment: one query, one cluster, every execution engine.

    Runs the combined-reductions query on a ``sites``-site scale-up
    cluster once per executor and reports, per engine:

    - ``wall_s`` — measured wall-clock of the round loop (best of
      ``repetitions``, via :meth:`ExecutionStats.wall_time_s`);
    - ``modeled_max_over_sites_s`` — the parallel-model site compute
      time (max over sites per round, summed over rounds). Identical
      across engines by construction, which is what keeps sequential
      runs reproducible for the paper's speed-up figures;
    - ``site_compute_total_s`` — work done across *all* sites (the
      serial engine's wall-clock floor);
    - byte totals and result rows.

    Executor equivalence is asserted, not assumed: result rows must be
    bit-identical and per-round per-site byte accounting must match the
    first executor's exactly (raises
    :class:`~repro.bench.harness.ShapeCheckError` otherwise).
    """
    from repro.bench.harness import ShapeCheckError
    from repro.distributed import execute_query
    from repro.distributed.evaluator import ExecutionConfig

    if repetitions < 1:
        raise ShapeCheckError(f"repetitions must be >= 1, got {repetitions}")
    query = combined_query(HIGH_CARDINALITY_KEY)
    options = options or ALL_OPTS
    report: dict = {"sites": sites, "scale": scale, "executors": {}}
    baseline = None
    for executor in executors:
        cluster = scaleup_cluster(TPCRConfig(scale=scale), sites)
        config = ExecutionConfig(executor=executor)
        best = None
        for _repetition in range(repetitions):
            cluster.reset_network()
            result = execute_query(cluster, query, options, config=config)
            if best is None or result.stats.wall_time_s() < best.stats.wall_time_s():
                best = result
        stats = best.stats
        accounting = [
            (round_stats.index, site_id, site.bytes_down, site.bytes_up, site.tuples_up)
            for round_stats in stats.rounds
            for site_id, site in sorted(round_stats.sites.items())
        ]
        if baseline is None:
            baseline = (best.relation.rows, accounting)
        elif best.relation.rows != baseline[0]:
            raise ShapeCheckError(
                f"{executor!r}: result rows differ from {executors[0]!r}"
            )
        elif accounting != baseline[1]:
            raise ShapeCheckError(
                f"{executor!r}: byte accounting differs from {executors[0]!r}"
            )
        report["executors"][executor] = {
            "wall_s": stats.wall_time_s(),
            "modeled_max_over_sites_s": stats.site_compute_s(),
            "site_compute_total_s": stats.site_compute_total_s(),
            "bytes_total": stats.bytes_total,
            "result_rows": len(best.relation),
        }
    reference_name = "serial" if "serial" in report["executors"] else executors[0]
    reference_wall = report["executors"][reference_name]["wall_s"]
    for entry in report["executors"].values():
        entry["speedup_vs_serial"] = (
            reference_wall / entry["wall_s"] if entry["wall_s"] > 0 else 0.0
        )
    return report
