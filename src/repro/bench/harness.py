"""Experiment harness shared by all figure reproductions.

Provides the cluster builders matching the paper's experimental setup
(Section 5.1/5.2: TPCR divided among eight sites, a varying number of
which participate; Section 5.3: four sites with growing per-site data)
and the machinery to run one query under several optimization "arms",
verify each arm against centralized evaluation and the Theorem 2 bound,
and tabulate the measurements the figures plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.data.tpcr import (
    TPCRConfig,
    generate_tpcr,
    nation_partitioner,
    register_tpcr_fds,
)
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
)
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.executor import EXECUTORS
from repro.errors import ReproError
from repro.gmdj.expression import GMDJExpression
from repro.net.costmodel import CostModel, WAN
from repro.obs import MetricsRegistry, Tracer, build_trace
from repro.obs.top import QUANTILES
from repro.relalg.relation import Relation


class ShapeCheckError(ReproError):
    """An arm's result failed verification against the reference."""


# ---------------------------------------------------------------------------
# Cluster builders matching the paper's setups
# ---------------------------------------------------------------------------


def speedup_cluster(
    tpcr: Relation, participating: int, total_sites: int = 8
) -> SimulatedCluster:
    """Section 5.2 setup: TPCR divided among ``total_sites``; the first
    ``participating`` of them take part in the query.

    The participating sites keep their original 1/``total_sites``
    partitions, so the participating data (and group count) grows
    linearly with ``participating`` — the behaviour behind the paper's
    quadratic traffic growth.
    """
    if not 1 <= participating <= total_sites:
        raise ShapeCheckError(
            f"participating must be in 1..{total_sites}, got {participating}"
        )
    partitioner = nation_partitioner(total_sites)
    partitions = partitioner.split(tpcr)
    cluster = SimulatedCluster.with_sites(participating)
    site_ids = cluster.site_ids
    cluster.load_manual(
        "TPCR",
        {site_id: partitions[index] for index, site_id in enumerate(site_ids)},
        phi_by_site={
            site_id: partitioner.site_predicate(index, tpcr.schema)
            for index, site_id in enumerate(site_ids)
        },
        partition_attrs=partitioner.partition_attributes(),
    )
    register_tpcr_fds(cluster.catalog)
    return cluster


def speedup_cluster_range(
    tpcr: Relation,
    participating: int,
    total_sites: int = 8,
    attribute: str = "CustKey",
) -> SimulatedCluster:
    """Speed-up setup with *range* partitioning on a grouping attribute.

    Used by the aware-group-reduction extension experiment: range
    partitioning yields per-site φᵢ predicates over the grouping
    attribute itself, so the coordinator can derive ship filters
    (Theorem 4) — which the paper notes "would make the curves linear"
    (Section 5.2) but does not measure.
    """
    if not 1 <= participating <= total_sites:
        raise ShapeCheckError(
            f"participating must be in 1..{total_sites}, got {participating}"
        )
    from repro.warehouse.partition import RangePartitioner

    values = sorted(set(tpcr.column(attribute)))
    if len(values) < total_sites:
        raise ShapeCheckError(
            f"{attribute!r} has only {len(values)} values for {total_sites} sites"
        )
    boundaries = [
        values[(index + 1) * len(values) // total_sites - 1]
        for index in range(total_sites - 1)
    ]
    partitioner = RangePartitioner(attribute, boundaries, total_sites)
    partitions = partitioner.split(tpcr)
    cluster = SimulatedCluster.with_sites(participating)
    site_ids = cluster.site_ids
    cluster.load_manual(
        "TPCR",
        {site_id: partitions[index] for index, site_id in enumerate(site_ids)},
        phi_by_site={
            site_id: partitioner.site_predicate(index, tpcr.schema)
            for index, site_id in enumerate(site_ids)
        },
        partition_attrs=partitioner.partition_attributes(),
    )
    return cluster


def scaleup_cluster(config: TPCRConfig, sites: int = 4) -> SimulatedCluster:
    """Section 5.3 setup: a fixed number of sites, data size varied via
    ``config.scale`` (and group count via ``config.fixed_customers``)."""
    tpcr = generate_tpcr(config)
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned("TPCR", tpcr, nation_partitioner(sites))
    register_tpcr_fds(cluster.catalog)
    return cluster


# ---------------------------------------------------------------------------
# Arm execution
# ---------------------------------------------------------------------------


@dataclass
class ArmMeasurement:
    """Everything measured for one (query, optimization-arm) execution."""

    arm: str
    total_time_s: float
    site_compute_s: float
    coordinator_compute_s: float
    communication_s: float
    bytes_total: int
    bytes_down: int
    bytes_up: int
    tuples_total: int
    tuples_down: int
    tuples_up: int
    tuples_up_md: int
    md_rounds: int
    synchronizations: int
    result_rows: int
    theorem2_ok: bool
    matches_reference: bool
    plan_notes: tuple = ()
    executor: str = "serial"
    wall_time_s: float = 0.0


def run_arm(
    cluster: SimulatedCluster,
    expression: GMDJExpression,
    arm_name: str,
    options: OptimizationOptions,
    reference: Optional[Relation] = None,
    model: CostModel = WAN,
    config: Optional[ExecutionConfig] = None,
) -> ArmMeasurement:
    """Execute one arm, returning its measurement (reference-checked)."""
    cluster.reset_network()
    result = execute_query(cluster, expression, options, config=config)
    breakdown = result.stats.breakdown(model)
    matches = True
    if reference is not None:
        matches = reference.same_rows_any_order_of_columns(result.relation)
        if not matches:
            raise ShapeCheckError(
                f"arm {arm_name!r} result does not match centralized reference"
            )
    return ArmMeasurement(
        arm=arm_name,
        total_time_s=breakdown["total_s"],
        site_compute_s=breakdown["site_compute_s"],
        coordinator_compute_s=breakdown["coordinator_compute_s"],
        communication_s=breakdown["communication_s"],
        bytes_total=result.stats.bytes_total,
        bytes_down=result.stats.bytes_down,
        bytes_up=result.stats.bytes_up,
        tuples_total=result.stats.tuples_total,
        tuples_down=result.stats.tuples_down,
        tuples_up=result.stats.tuples_up,
        tuples_up_md=result.stats.tuples_up_md(),
        md_rounds=result.stats.md_round_count(),
        synchronizations=result.plan.synchronization_count,
        result_rows=len(result.relation),
        theorem2_ok=result.respects_theorem2(),
        matches_reference=matches,
        plan_notes=result.plan.notes,
        executor=result.stats.executor,
        wall_time_s=result.stats.wall_time_s(),
    )


def run_arms(
    cluster: SimulatedCluster,
    expression: GMDJExpression,
    arms: Mapping[str, OptimizationOptions],
    model: CostModel = WAN,
    check_reference: bool = True,
    config: Optional[ExecutionConfig] = None,
) -> dict:
    """Run every arm of one experiment point; verify all against reference."""
    reference = None
    if check_reference:
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
    return {
        arm_name: run_arm(
            cluster, expression, arm_name, options, reference, model, config
        )
        for arm_name, options in arms.items()
    }


# ---------------------------------------------------------------------------
# Traced runs & tracing overhead
# ---------------------------------------------------------------------------


def run_traced(
    cluster: SimulatedCluster,
    expression: GMDJExpression,
    options: OptimizationOptions,
    model: CostModel = WAN,
) -> tuple:
    """Execute once with live tracing; returns ``(result, EventLog)``.

    The channels account into the same registry the operator counters
    land in, so the emitted JSONL trace is one self-consistent artifact.
    """
    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    result = execute_query(
        cluster, expression, options, tracer=tracer, metrics=registry
    )
    return result, build_trace(tracer, registry, result.stats, model=model)


def measure_tracing_overhead(
    cluster: SimulatedCluster,
    expression: GMDJExpression,
    options: OptimizationOptions,
    repetitions: int = 3,
) -> dict:
    """Wall-clock cost of the tracing layer itself.

    Runs the same query ``repetitions`` times with the default
    :class:`~repro.obs.tracer.NullTracer` and again with a live tracer +
    registry, taking the fastest run of each arm (standard micro-bench
    practice: the minimum is the least-noise estimate). The delta is
    reported so the tracing tax stays visible — the obs layer's budget
    is < 5% on real workloads.
    """
    if repetitions < 1:
        raise ShapeCheckError(f"repetitions must be >= 1, got {repetitions}")

    def _time_one(tracer, registry) -> float:
        cluster.reset_network(metrics=registry)
        started = time.perf_counter()
        execute_query(cluster, expression, options, tracer=tracer, metrics=registry)
        return time.perf_counter() - started

    untraced_s = min(_time_one(None, None) for _ in range(repetitions))
    traced_s = min(
        _time_one(Tracer(), MetricsRegistry()) for _ in range(repetitions)
    )
    overhead_s = traced_s - untraced_s
    return {
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead_s": overhead_s,
        "overhead_frac": (overhead_s / untraced_s) if untraced_s > 0 else 0.0,
        "repetitions": repetitions,
    }


# ---------------------------------------------------------------------------
# Fault-injection recovery check
# ---------------------------------------------------------------------------


def fault_recovery_report(
    sites: int = 4,
    scale: float = 0.001,
    seed: int = 0,
    executor: str = "serial",
) -> dict:
    """The acceptance scenario for the recovery layer, as a self-checking run.

    On a ``sites``-site cluster, one seeded victim site suffers a dropped
    sub-result plus a crash lasting two rounds. The run asserts (raising
    :class:`ShapeCheckError` on violation) that

    - ``retry`` mode completes with a result *bit-identical* to the
      fault-free run, and
    - ``degrade`` mode completes with the victim recorded as excluded in
      ``ExecutionStats`` (and a result that differs, since the victim's
      tuples are missing),

    and that the stats/channel byte accounting agrees in every case.
    """
    from repro.distributed.stats import verify_against_network
    from repro.net.faults import FaultPlan, FaultRule
    from repro.queries.olap import QueryBuilder
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import base, detail

    if sites < 2:
        raise ShapeCheckError(f"fault report needs >= 2 sites, got {sites}")
    cluster = scaleup_cluster(TPCRConfig(scale=scale), sites=sites)
    victim = cluster.site_ids[seed % len(cluster.site_ids)]
    # The un-optimized plan has wire rounds 0 (base), 1 and 2 — the crash
    # spans MD rounds 1-2. ``times`` counts doomed *leg attempts*: 4 is
    # two rounds of two attempts under degrade's max_retries=1 budget,
    # and is healed within round 1 by retry's six-attempt budget.
    plan = FaultPlan(
        [
            FaultRule("drop", site=victim, rounds=(1,), direction="up", times=1),
            FaultRule("crash", site=victim, rounds=(1, 2), times=4),
        ],
        description=f"drop+crash on {victim} (seed={seed})",
    )
    expression = (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("above")], extra=detail.Price >= base.avg_price)
        .build()
    )

    def _run(failure_mode: str, max_retries: int, faulty: bool):
        cluster.install_faults(plan if faulty else None)
        config = ExecutionConfig(
            executor=executor,
            failure_mode=failure_mode,
            max_retries=max_retries,
            retry_backoff_s=0.0,
        )
        result = execute_query(
            cluster, expression, OptimizationOptions.none(), config=config
        )
        mismatches = verify_against_network(result.stats, cluster.network)
        if mismatches:
            raise ShapeCheckError(
                f"{failure_mode}: stats/channel accounting diverged: {mismatches}"
            )
        return result

    clean = _run("fail_fast", 0, faulty=False)
    retried = _run("retry", 5, faulty=True)
    degraded = _run("degrade", 1, faulty=True)

    if retried.relation.rows != clean.relation.rows:
        raise ShapeCheckError("retry mode result differs from the fault-free run")
    if retried.stats.retries == 0:
        raise ShapeCheckError("retry mode saw no retries despite injected faults")
    excluded = degraded.stats.excluded_sites
    if not excluded or any(site_id != victim for _round, site_id in excluded):
        raise ShapeCheckError(
            f"degrade mode should exclude exactly {victim!r}, recorded {excluded}"
        )
    if degraded.relation.rows == clean.relation.rows:
        raise ShapeCheckError(
            "degrade mode result matches the fault-free run — the exclusion "
            "had no effect, so the fault schedule did not fire"
        )
    return {
        "sites": sites,
        "scale": scale,
        "seed": seed,
        "executor": executor,
        "victim": victim,
        "fault_plan": plan.to_dicts(),
        "clean_rows": len(clean.relation),
        "retry": {
            "identical_to_clean": True,
            "retries": retried.stats.retries,
            "faults_injected": retried.stats.fault_count,
        },
        "degrade": {
            "excluded": [list(entry) for entry in excluded],
            "retries": degraded.stats.retries,
            "faults_injected": degraded.stats.fault_count,
            "rows": len(degraded.relation),
        },
    }


# ---------------------------------------------------------------------------
# Socket-vs-simulated transport sweep
# ---------------------------------------------------------------------------


def socket_sweep_report(sites: int = 4, scale: float = 0.001) -> dict:
    """Run every query family over real sockets and over the in-memory
    transport, asserting the deployment-mode contract per query:

    - the socket result is *bit-identical* to the in-process run;
    - the modeled ``DirectionStats`` bytes are identical on both
      transports (the simulation is the oracle, not an approximation);
    - the measured socket payload bytes equal the modeled bytes exactly,
      with framing overhead accounted separately.

    Raises :class:`ShapeCheckError` on any violation; returns the
    comparison table (per-query bytes, framing, wall times) otherwise.
    """
    import shutil
    import tempfile

    from repro.distributed.deployment import ProcessCluster
    from repro.queries.cube import cube_lattice_queries
    from repro.queries.olap import QueryBuilder
    from repro.queries.unpivot import marginal_queries
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import base, detail

    simulated = scaleup_cluster(TPCRConfig(scale=scale), sites=sites)
    aggs = [count_star("cnt"), AggSpec("sum", detail.Price, "revenue")]
    queries = []
    for subset, expression in cube_lattice_queries(
        "TPCR", ["NationKey", "OrderYear"], aggs
    ):
        queries.append((f"cube:{'+'.join(subset) or 'apex'}", expression))
    for attribute, expression in marginal_queries(
        "TPCR", ["NationKey", "SuppKey"], aggs
    ):
        queries.append((f"unpivot:{attribute}", expression))
    queries.append(
        (
            "multifeature:price",
            QueryBuilder("TPCR", keys=["NationKey"])
            .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
            .stage([count_star("above")], extra=detail.Price >= base.avg_price)
            .build(),
        )
    )

    def _measure(cluster, executor):
        measurements = {}
        for name, expression in queries:
            cluster.reset_network()
            started = time.perf_counter()
            result = execute_query(
                cluster,
                expression,
                OptimizationOptions.none(),
                config=ExecutionConfig(executor=executor),
            )
            measurements[name] = (
                result,
                time.perf_counter() - started,
            )
        return measurements

    oracle = _measure(simulated, "serial")
    root = tempfile.mkdtemp(prefix="repro-socket-sweep-")
    try:
        with ProcessCluster.from_simulated(simulated, root) as deployed:
            over_sockets = _measure(deployed, "sockets")
            rows = []
            for name, _expression in queries:
                sim_result, sim_wall = oracle[name]
                sock_result, sock_wall = over_sockets[name]
                if sock_result.relation.rows != sim_result.relation.rows:
                    raise ShapeCheckError(
                        f"{name}: socket result is not bit-identical to the "
                        "in-process run"
                    )
                sim_stats, sock_stats = sim_result.stats, sock_result.stats
                if (sim_stats.bytes_down, sim_stats.bytes_up) != (
                    sock_stats.bytes_down,
                    sock_stats.bytes_up,
                ):
                    raise ShapeCheckError(
                        f"{name}: modeled bytes diverge between transports: "
                        f"sim ({sim_stats.bytes_down}, {sim_stats.bytes_up}) "
                        f"vs sockets ({sock_stats.bytes_down}, "
                        f"{sock_stats.bytes_up})"
                    )
                if not sock_stats.socket_parity():
                    raise ShapeCheckError(
                        f"{name}: measured socket payload "
                        f"({sock_stats.socket_bytes_down}, "
                        f"{sock_stats.socket_bytes_up}) != modeled "
                        f"({sock_stats.bytes_down}, {sock_stats.bytes_up})"
                    )
                rows.append(
                    {
                        "query": name,
                        "rows": len(sock_result.relation),
                        "bytes_down": sock_stats.bytes_down,
                        "bytes_up": sock_stats.bytes_up,
                        "framing_bytes": sock_stats.socket_framing_bytes,
                        "frames": sock_stats.socket_frames,
                        "sim_wall_s": sim_wall,
                        "socket_wall_s": sock_wall,
                    }
                )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "sites": sites,
        "scale": scale,
        "queries": rows,
        "totals": {
            "queries": len(rows),
            "bytes_modeled": sum(r["bytes_down"] + r["bytes_up"] for r in rows),
            "framing_bytes": sum(r["framing_bytes"] for r in rows),
            "frames": sum(r["frames"] for r in rows),
            "sim_wall_s": sum(r["sim_wall_s"] for r in rows),
            "socket_wall_s": sum(r["socket_wall_s"] for r in rows),
        },
        "parity": True,
    }


# ---------------------------------------------------------------------------
# Straggler sweep: speculation vs baseline under seeded per-site delays
# ---------------------------------------------------------------------------


def _percentile(samples: Sequence[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def straggler_sweep_report(
    sites: int = 4,
    scale: float = 0.001,
    trials: int = 3,
    delay_s: float = 1.5,
    seed: int = 11,
    min_speedup: float = 1.5,
    speculation_factor: float = 2.0,
) -> dict:
    """Prove speculative re-execution under real sockets: seeded one-site
    compute delays (``FaultPlan.stragglers``) slow one leg per trial;
    with speculation off the round wall absorbs the full delay, with it
    on the deadline (median leg time x factor) fires a backup that wins.

    ``delay_s`` must dominate the healthy-leg floor: a backup can never
    finish before ``deadline + leg_time``, so a delay close to
    ``(speculation_factor - 1) x`` the slowest healthy leg gains
    nothing. The defaults (1.5s delay, factor 2) leave the widest query
    family in the sweep a >=2x margin.

    Contract checked per (trial, mode, query):

    - the socket result is bit-identical to the fault-free simulated
      flat run (the oracle);
    - measured socket payload bytes reconcile with the modeled
      ``DirectionStats`` *including* the abandoned leg's bytes
      (``ExecutionStats.socket_parity`` adds the speculative buckets);
    - with speculation on, at least one leg was re-executed across the
      sweep and the p99 of the slowest-round wall improves by
      ``min_speedup`` vs the speculation-off baseline.

    Raises :class:`ShapeCheckError` on any violation; returns the sweep
    table otherwise.
    """
    import shutil
    import tempfile

    from repro.distributed.deployment import ProcessCluster
    from repro.net.faults import FaultPlan
    from repro.queries.cube import cube_lattice_queries
    from repro.queries.olap import QueryBuilder
    from repro.queries.unpivot import marginal_queries
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import base, detail

    simulated = scaleup_cluster(TPCRConfig(scale=scale), sites=sites)
    aggs = [count_star("cnt"), AggSpec("sum", detail.Price, "revenue")]
    queries = []
    for subset, expression in cube_lattice_queries(
        "TPCR", ["NationKey", "OrderYear"], aggs
    ):
        queries.append((f"cube:{'+'.join(subset) or 'apex'}", expression))
    for attribute, expression in marginal_queries(
        "TPCR", ["NationKey", "SuppKey"], aggs
    ):
        queries.append((f"unpivot:{attribute}", expression))
    queries.append(
        (
            "multifeature:price",
            QueryBuilder("TPCR", keys=["NationKey"])
            .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
            .stage([count_star("above")], extra=detail.Price >= base.avg_price)
            .build(),
        )
    )

    # Fault-free simulated flat runs are the oracle for both result rows
    # and the modeled DirectionStats.
    oracle = {}
    for name, expression in queries:
        simulated.reset_network()
        oracle[name] = execute_query(
            simulated,
            expression,
            OptimizationOptions.none(),
            config=ExecutionConfig(executor="serial"),
        )

    walls = {"baseline": [], "speculation": []}
    rows = []
    speculative_legs = 0
    speculation_wins = 0
    root = tempfile.mkdtemp(prefix="repro-straggler-sweep-")
    try:
        with ProcessCluster.from_simulated(simulated, root) as deployed:
            for trial in range(trials):
                for mode in ("baseline", "speculation"):
                    config = ExecutionConfig(
                        executor="sockets",
                        speculation=(mode == "speculation"),
                        speculation_factor=speculation_factor,
                    )
                    for name, expression in queries:
                        # Fresh fault budget per run: the straggle rule
                        # fires once, so the speculative backup re-runs
                        # the leg with the delay already spent.
                        deployed.install_faults(
                            FaultPlan.stragglers(
                                deployed.site_ids,
                                seed=seed + trial,
                                delay_s=delay_s,
                                rounds=(1,),
                            )
                        )
                        result = execute_query(
                            deployed,
                            expression,
                            OptimizationOptions.none(),
                            config=config,
                        )
                        reference = oracle[name]
                        if result.relation.rows != reference.relation.rows:
                            raise ShapeCheckError(
                                f"{mode}/{name} (trial {trial}): socket result "
                                "is not bit-identical to the fault-free flat run"
                            )
                        stats = result.stats
                        if (stats.bytes_down, stats.bytes_up) != (
                            reference.stats.bytes_down,
                            reference.stats.bytes_up,
                        ):
                            raise ShapeCheckError(
                                f"{mode}/{name} (trial {trial}): winning-path "
                                "modeled bytes diverge from the fault-free "
                                f"oracle: ({stats.bytes_down}, {stats.bytes_up})"
                                f" vs ({reference.stats.bytes_down}, "
                                f"{reference.stats.bytes_up})"
                            )
                        if not stats.socket_parity():
                            raise ShapeCheckError(
                                f"{mode}/{name} (trial {trial}): measured "
                                f"socket payload ({stats.socket_bytes_down}, "
                                f"{stats.socket_bytes_up}) != modeled + "
                                f"speculative ({stats.bytes_down} + "
                                f"{stats.speculative_bytes_down}, "
                                f"{stats.bytes_up} + "
                                f"{stats.speculative_bytes_up})"
                            )
                        slowest = max(
                            round_stats.wall_s for round_stats in stats.rounds
                        )
                        walls[mode].append(slowest)
                        if mode == "speculation":
                            speculative_legs += stats.speculative_legs
                            speculation_wins += stats.speculation_wins
                        rows.append(
                            {
                                "trial": trial,
                                "mode": mode,
                                "query": name,
                                "slowest_round_wall_s": slowest,
                                "speculative_legs": stats.speculative_legs,
                                "speculation_wins": stats.speculation_wins,
                                "speculative_bytes": stats.speculative_bytes_down
                                + stats.speculative_bytes_up,
                            }
                        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    baseline_p99 = _percentile(walls["baseline"], 0.99)
    speculation_p99 = _percentile(walls["speculation"], 0.99)
    speedup = (
        baseline_p99 / speculation_p99 if speculation_p99 > 0 else float("inf")
    )
    if not speculative_legs:
        raise ShapeCheckError(
            "straggler sweep never triggered speculation: no leg was "
            "re-executed despite the seeded delays"
        )
    if speedup < min_speedup:
        raise ShapeCheckError(
            f"speculation cut p99 slowest-round wall by only {speedup:.2f}x "
            f"({baseline_p99:.3f}s -> {speculation_p99:.3f}s); the gate "
            f"requires >= {min_speedup:.2f}x"
        )
    return {
        "sites": sites,
        "scale": scale,
        "trials": trials,
        "delay_s": delay_s,
        "speculation_factor": speculation_factor,
        "seed": seed,
        "queries": len(queries),
        "runs": rows,
        "baseline_p99_s": baseline_p99,
        "speculation_p99_s": speculation_p99,
        "speedup": speedup,
        "speculative_legs": speculative_legs,
        "speculation_wins": speculation_wins,
        "parity": True,
    }


# ---------------------------------------------------------------------------
# Query-service cache sweep
# ---------------------------------------------------------------------------


def service_cache_report(
    sites: int = 3,
    flow_count: int = 600,
    waves: int = 4,
    append_every: int = 2,
    executor: str = "serial",
    seed: int = 11,
) -> dict:
    """Cache-hit-ratio sweep of the query service, self-checking.

    A fixed set of distinct queries is submitted in ``waves`` rounds
    through one :class:`~repro.service.QueryService`; every
    ``append_every``-th wave is preceded by an append, so the workload
    exercises all three serving paths — fresh evaluation, pure cache
    hit, and sub-aggregate refresh upgrade. The report tabulates the
    per-wave serving sources, the cumulative hit ratio, and the mean
    wall-clock per path (the hit/fresh gap is the cache's payoff).

    Self-check: after the final wave, every query's served answer is
    compared against a cold evaluation on an identically grown cluster;
    a mismatch raises :class:`ShapeCheckError`.
    """
    from repro.data.flows import FlowConfig, generate_flows, router_partitioner
    from repro.service import FRESH, HIT, REFRESH, QueryService

    if waves < 1:
        raise ShapeCheckError(f"waves must be >= 1, got {waves}")
    queries = (
        "SELECT SourceAS, COUNT(*) AS cnt, SUM(NumPackets) AS packets "
        "FROM Flow GROUP BY SourceAS",
        "SELECT DestAS, COUNT(*) AS cnt, MAX(NumPackets) AS biggest "
        "FROM Flow GROUP BY DestAS",
        "SELECT RouterId, COUNT(*) AS flows, MIN(StartTime) AS first_seen "
        "FROM Flow GROUP BY RouterId",
    )

    def _cluster() -> SimulatedCluster:
        config = FlowConfig(flow_count=flow_count, router_count=sites, seed=seed)
        built = SimulatedCluster.with_sites(sites)
        built.load_partitioned(
            "Flow", generate_flows(config), router_partitioner(config)
        )
        return built

    cluster = _cluster()
    deltas_applied = []
    wave_rows = []
    wall_by_source: dict = {}
    with QueryService(cluster, ExecutionConfig(executor=executor)) as service:
        for wave in range(1, waves + 1):
            if append_every and wave > 1 and (wave - 1) % append_every == 0:
                delta_config = FlowConfig(
                    flow_count=max(20, flow_count // 10),
                    router_count=sites,
                    seed=seed + wave,
                )
                delta = generate_flows(delta_config)
                per_site = dict(
                    zip(
                        cluster.site_ids,
                        router_partitioner(delta_config).split(delta),
                    )
                )
                service.append("Flow", per_site)
                deltas_applied.append(per_site)
            sources = []
            for sql in queries:
                result = service.submit(sql)
                sources.append(result.source)
                wall_by_source.setdefault(result.source, []).append(result.wall_s)
            wave_rows.append({"wave": wave, "sources": sources})

        # Self-check: the served state must equal a cold, equally-grown run.
        reference_cluster = _cluster()
        for per_site in deltas_applied:
            for site_id, delta in per_site.items():
                reference_cluster.site(site_id).warehouse.append("Flow", delta)
        with QueryService(
            reference_cluster, ExecutionConfig(executor="serial")
        ) as reference_service:
            for sql in queries:
                expected = reference_service.submit(sql).relation
                served = service.submit(sql).relation
                if served.rows != expected.rows:
                    raise ShapeCheckError(
                        f"service answer diverged from cold evaluation for: {sql}"
                    )

        metrics = service.metrics
        total = metrics.value_of("service.queries")
        hits = metrics.value_of("service.cache.hit")
        misses = metrics.value_of("service.cache.miss")
        refreshes = metrics.value_of("service.cache.refresh")
        latency = metrics.get("service.latency_s")
        latency_ms = {
            label: latency.quantile(q) * 1000.0 for q, label in QUANTILES
        }
        latency_ms["mean"] = (
            (latency.sum / latency.count * 1000.0) if latency.count else 0.0
        )
        latency_ms["count"] = latency.count

    def _mean_ms(source: str) -> float:
        walls = wall_by_source.get(source, [])
        return (sum(walls) / len(walls) * 1000.0) if walls else 0.0

    return {
        "sites": sites,
        "flow_count": flow_count,
        "waves": waves,
        "append_every": append_every,
        "executor": executor,
        "queries": len(queries),
        "wave_sources": wave_rows,
        "totals": {
            "queries": int(total),
            "hits": int(hits),
            "misses": int(misses),
            "refreshes": int(refreshes),
        },
        "hit_ratio": (hits + refreshes) / total if total else 0.0,
        "mean_wall_ms": {
            source: _mean_ms(source) for source in (FRESH, HIT, REFRESH)
        },
        "latency_ms": latency_ms,
        "verified": True,
    }


# ---------------------------------------------------------------------------
# Codec microbenchmark
# ---------------------------------------------------------------------------


def codec_microbenchmark(scale: float = 0.005, repetitions: int = 5) -> dict:
    """Rows/s of the wire codec: fast path vs the reference implementation.

    Encodes and decodes one TPCR relation with both the planned fast path
    (:func:`repro.net.serialize.encode_relation`) and the straight-line
    reference codec, taking the fastest of ``repetitions`` runs per arm.
    The two must be byte-identical (asserted here — this doubles as a
    differential check), so the ratio is pure overhead removed.

    The ``column`` section measures the column-block codec on the same
    relation — encode/decode time, wire bytes and the byte saving versus
    the row codec — after asserting the round trip is value-identical.
    """
    if repetitions < 1:
        raise ShapeCheckError(f"repetitions must be >= 1, got {repetitions}")
    from repro.net import serialize

    relation = generate_tpcr(TPCRConfig(scale=scale, seed=12))
    rows = len(relation)

    def _best(fn, *args) -> float:
        return min(
            _timed(fn, *args) for _ in range(repetitions)
        )

    def _timed(fn, *args) -> float:
        started = time.perf_counter()
        fn(*args)
        return time.perf_counter() - started

    fast_payload = serialize.encode_relation(relation)
    reference_payload = serialize._encode_relation_reference(relation)
    if fast_payload != reference_payload:
        raise ShapeCheckError("fast codec output differs from reference codec")

    encode_fast_s = _best(serialize.encode_relation, relation)
    encode_reference_s = _best(serialize._encode_relation_reference, relation)
    decode_fast_s = _best(serialize.decode_relation, fast_payload)
    decode_reference_s = _best(serialize._decode_relation_reference, fast_payload)

    def _rate(seconds: float) -> float:
        return rows / seconds if seconds > 0 else 0.0

    column_payload = serialize.encode_relation(relation, "column")
    decoded = serialize.decode_relation(column_payload)
    if decoded.schema != relation.schema or decoded.rows != relation.rows:
        raise ShapeCheckError("column codec round trip is not value-identical")
    column_encode_s = _best(serialize.encode_relation, relation, "column")
    column_decode_s = _best(serialize.decode_relation, column_payload)

    return {
        "rows": rows,
        "bytes": len(fast_payload),
        "scale": scale,
        "repetitions": repetitions,
        "column": {
            "bytes": len(column_payload),
            "row_bytes": len(fast_payload),
            "saved_bytes": len(fast_payload) - len(column_payload),
            "saving_fraction": (
                (len(fast_payload) - len(column_payload)) / len(fast_payload)
                if fast_payload
                else 0.0
            ),
            "encode_s": column_encode_s,
            "decode_s": column_decode_s,
            "encode_rows_per_s": _rate(column_encode_s),
            "decode_rows_per_s": _rate(column_decode_s),
            "roundtrip_identical": True,
        },
        "encode": {
            "fast_s": encode_fast_s,
            "reference_s": encode_reference_s,
            "fast_rows_per_s": _rate(encode_fast_s),
            "reference_rows_per_s": _rate(encode_reference_s),
            "speedup": (
                encode_reference_s / encode_fast_s if encode_fast_s > 0 else 0.0
            ),
        },
        "decode": {
            "fast_s": decode_fast_s,
            "reference_s": decode_reference_s,
            "fast_rows_per_s": _rate(decode_fast_s),
            "reference_rows_per_s": _rate(decode_reference_s),
            "speedup": (
                decode_reference_s / decode_fast_s if decode_fast_s > 0 else 0.0
            ),
        },
    }


# ---------------------------------------------------------------------------
# Columnar-engine sweep
# ---------------------------------------------------------------------------


def _columnar_workloads(detail_rows: int):
    """Deterministic (base, detail, blocks) triples for the engine sweep.

    Two shapes matching the paper's query families: a cube-style
    single-block grouping (hash path) and a multifeature-style pair of
    blocks whose second block carries a residual base-vs-detail
    comparison (hash path plus residual filter).
    """
    import random as _random

    from repro.gmdj.blocks import MDBlock
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import Const, base, detail
    from repro.relalg.schema import FLOAT, INT, Schema

    rng = _random.Random(7)
    schema = Schema.of(("k1", INT), ("k2", INT), ("v", FLOAT))
    rows = [
        (
            rng.randrange(32),
            rng.randrange(8),
            float(rng.randrange(1, 5000)),
        )
        for _ in range(detail_rows)
    ]
    detail_relation = Relation(schema, rows)

    cube_base = detail_relation.distinct_project(["k1", "k2"])
    cube_blocks = [
        MDBlock(
            [
                count_star("cnt"),
                AggSpec("sum", detail.v, "total"),
                AggSpec("avg", detail.v, "mean"),
                AggSpec("min", detail.v, "lo"),
                AggSpec("max", detail.v, "hi"),
            ],
            (base.k1 == detail.k1) & (base.k2 == detail.k2),
        )
    ]

    multifeature_base = detail_relation.distinct_project(["k1"])
    multifeature_blocks = [
        MDBlock(
            [AggSpec("min", detail.v, "lo"), count_star("cnt")],
            base.k1 == detail.k1,
        ),
        MDBlock(
            [AggSpec("sum", detail.v, "hi_total"), AggSpec("count", detail.v, "hi_cnt")],
            (base.k1 == detail.k1) & (detail.v > Const(2500.0)),
        ),
    ]

    return {
        "cube": (cube_base, detail_relation, cube_blocks),
        "multifeature": (multifeature_base, detail_relation, multifeature_blocks),
    }


def columnar_sweep(detail_rows: int = 60_000, repetitions: int = 3) -> dict:
    """Row vs columnar GMDJ kernel timings on the cube/multifeature shapes.

    Runs :func:`repro.gmdj.operator.evaluate` under both engines (fastest
    of ``repetitions`` per arm), asserts the results are bit-identical
    (the differential-oracle contract), and reports per-workload
    speedups. The pinned numbers live in ``BENCH_micro.json`` under
    ``columnar`` and are gated by ``repro bench --check``.
    """
    if repetitions < 1:
        raise ShapeCheckError(f"repetitions must be >= 1, got {repetitions}")
    from repro.gmdj import operator
    from repro.relalg.engine import use_engine

    workloads = _columnar_workloads(detail_rows)
    report = {"detail_rows": detail_rows, "repetitions": repetitions}
    for name, (base_relation, detail_relation, blocks) in workloads.items():
        timings = {}
        results = {}
        for engine_name in ("row", "columnar"):
            best = None
            with use_engine(engine_name):
                for _ in range(repetitions):
                    started = time.perf_counter()
                    result = operator.evaluate(base_relation, detail_relation, blocks)
                    elapsed = time.perf_counter() - started
                    best = elapsed if best is None else min(best, elapsed)
            timings[engine_name] = best
            results[engine_name] = result
        if results["row"].rows != results["columnar"].rows or (
            results["row"].schema != results["columnar"].schema
        ):
            raise ShapeCheckError(
                f"columnar engine diverged from row oracle on {name!r}"
            )
        report[name] = {
            "base_rows": len(base_relation),
            "row_s": timings["row"],
            "columnar_s": timings["columnar"],
            "speedup": (
                timings["row"] / timings["columnar"]
                if timings["columnar"] > 0
                else 0.0
            ),
            "identical": True,
        }
    return report


def check_micro_baseline(
    micro: dict, baseline: dict, min_speedup: float = 1.3
) -> list:
    """Gate a fresh micro report against the pinned ``BENCH_micro.json``.

    Checks structural invariants that hold regardless of machine (codec
    round trips verified, column codec actually saves bytes, columnar
    results identical to the row oracle) plus a noise-tolerant floor on
    the columnar kernel speedups — well under the pinned ~4x so loaded
    CI machines don't flap, but failing when vectorization is lost.
    Returns a list of problem strings (empty = pass).
    """
    problems = []
    column = micro.get("column", {})
    if not column.get("roundtrip_identical"):
        problems.append("column codec round trip not verified")
    if column.get("saved_bytes", 0) <= 0:
        problems.append(
            f"column codec saves no bytes "
            f"({column.get('bytes')}B vs row {column.get('row_bytes')}B)"
        )
    baseline_column = baseline.get("column", {})
    if baseline_column:
        fresh_saving = column.get("saving_fraction", 0.0)
        pinned_saving = baseline_column.get("saving_fraction", 0.0)
        # Byte savings are deterministic for a fixed seed/scale; allow a
        # small slack for schema evolution of the generator.
        if fresh_saving < pinned_saving - 0.10:
            problems.append(
                f"column codec saving fraction {fresh_saving:.1%} fell more "
                f"than 10pp under pinned {pinned_saving:.1%}"
            )
    columnar = micro.get("columnar", {})
    for workload in ("cube", "multifeature"):
        entry = columnar.get(workload)
        if entry is None:
            problems.append(f"columnar sweep missing workload {workload!r}")
            continue
        if not entry.get("identical"):
            problems.append(f"columnar {workload} result not verified identical")
        speedup = entry.get("speedup", 0.0)
        if speedup < min_speedup:
            problems.append(
                f"columnar {workload} kernel speedup {speedup:.2f}x "
                f"under the {min_speedup:.1f}x floor"
            )
    return problems


# ---------------------------------------------------------------------------
# Series & tabulation
# ---------------------------------------------------------------------------


@dataclass
class FigureSeries:
    """One experiment's full sweep: x values against per-arm measurements."""

    name: str
    x_label: str
    x_values: list = field(default_factory=list)
    measurements: list = field(default_factory=list)  # list of dict arm -> ArmMeasurement

    def add_point(self, x, arm_measurements: Mapping[str, ArmMeasurement]) -> None:
        self.x_values.append(x)
        self.measurements.append(dict(arm_measurements))

    @property
    def arm_names(self) -> tuple:
        return tuple(self.measurements[0]) if self.measurements else ()

    def column(self, arm: str, attribute: str) -> list:
        return [getattr(point[arm], attribute) for point in self.measurements]

    def table(self, attribute: str, fmt: str = "{:.4f}") -> str:
        """Render one metric as a fixed-width table (x by arm)."""
        headers = [self.x_label, *self.arm_names]
        rows = []
        for x, point in zip(self.x_values, self.measurements):
            cells = [str(x)]
            for arm in self.arm_names:
                value = getattr(point[arm], attribute)
                cells.append(
                    fmt.format(value) if isinstance(value, float) else str(value)
                )
            rows.append(cells)
        return format_table(headers, rows)

    def show(self, attributes: Sequence[tuple] = ()) -> str:
        """Full report: time and traffic tables plus any extra metrics."""
        sections = [f"== {self.name} =="]
        sections.append("query evaluation time (s, modeled comm + measured compute):")
        sections.append(self.table("total_time_s"))
        sections.append("bytes transferred:")
        sections.append(self.table("bytes_total", fmt="{:.0f}"))
        for attribute, label in attributes:
            sections.append(f"{label}:")
            sections.append(self.table(attribute))
        return "\n".join(sections)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) on log(x): ~1 linear, ~2 quadratic.

    Used by benchmark assertions to verify the paper's shape claims
    without depending on absolute numbers.
    """
    import math

    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise ShapeCheckError("need at least two positive points for a growth fit")
    log_x = [math.log(x) for x, _y in pairs]
    log_y = [math.log(y) for _x, y in pairs]
    n = len(pairs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    numerator = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    if denominator == 0:
        raise ShapeCheckError("degenerate x values in growth fit")
    return numerator / denominator


# ---------------------------------------------------------------------------
# Standalone harness CLI
# ---------------------------------------------------------------------------


def benchmark_report(
    sites: int = 4,
    scale: float = 0.001,
    model: CostModel = WAN,
    emit_trace: Optional[str] = None,
    overhead_repetitions: int = 3,
    executor: str = "serial",
) -> dict:
    """One harness run as a JSON-serializable benchmark report.

    Runs the Section-5 correlated query on a ``sites``-site scale-up
    cluster under the no-optimizations and all-optimizations arms
    (reference-checked), measures the tracing layer's own overhead, and
    — when ``emit_trace`` is given — writes the all-optimizations arm's
    JSONL trace alongside the benchmark JSON.
    """
    from dataclasses import asdict

    from repro.queries.olap import QueryBuilder
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import base, detail

    cluster = scaleup_cluster(TPCRConfig(scale=scale), sites=sites)
    expression = (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("above")], extra=detail.Price >= base.avg_price)
        .build()
    )
    arms = {
        "no_optimizations": OptimizationOptions.none(),
        "all_optimizations": OptimizationOptions.all(),
    }
    config = ExecutionConfig(executor=executor)
    measurements = run_arms(cluster, expression, arms, model=model, config=config)
    overhead = measure_tracing_overhead(
        cluster,
        expression,
        OptimizationOptions.all(),
        repetitions=overhead_repetitions,
    )
    report = {
        "sites": sites,
        "scale": scale,
        "executor": executor,
        "arms": {name: asdict(arm) for name, arm in measurements.items()},
        "tracing_overhead": overhead,
    }
    if emit_trace:
        _result, log = run_traced(
            cluster, expression, OptimizationOptions.all(), model=model
        )
        log.dump(emit_trace)
        report["trace_path"] = emit_trace
        report["trace_records"] = len(log)
    return report


def profile_benchmark_report(
    sites: int = 4,
    scale: float = 0.001,
    repetitions: int = 3,
    executor: str = "serial",
) -> dict:
    """EXPLAIN ANALYZE acceptance numbers as a JSON-serializable report.

    Runs the Section-5 correlated query fully traced (min of
    ``repetitions``, same practice as :func:`measure_tracing_overhead`),
    builds the per-query profile behind ``repro explain --analyze``, and
    reports the profiler's own cost next to the run it profiles plus the
    coverage/impact numbers the acceptance criteria pin:

    - ``profiler.overhead_frac`` — profile build time over the traced
      run it profiles (budget: < 5%);
    - ``profiler.time_coverage`` — fraction of traced query wall time
      attributed to plan nodes (bar: >= 95%);
    - ``profiler.bytes_coverage`` — fraction of shipped bytes attributed
      (exact by construction: 100%);
    - ``service.latency_ms`` — the query-service latency quantiles from
      :func:`service_cache_report`.

    The full query profile is embedded under ``"profile"`` so
    ``repro diff`` (and the ``--check`` failure report) can attribute a
    regression to the specific round/site/operator that slowed down.

    ``BENCH_profile.json`` pins one run of this; ``repro bench --check``
    re-measures and compares via :func:`check_profile_baseline`.
    """
    from repro.distributed.costing import (
        StatisticsStore,
        estimate_optimization_impacts,
    )
    from repro.obs.profile import build_profile
    from repro.queries.olap import QueryBuilder
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import base, detail

    if repetitions < 1:
        raise ShapeCheckError(f"repetitions must be >= 1, got {repetitions}")
    cluster = scaleup_cluster(TPCRConfig(scale=scale), sites=sites)
    expression = (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("above")], extra=detail.Price >= base.avg_price)
        .build()
    )
    options = OptimizationOptions.all()
    config = ExecutionConfig(executor=executor)

    def _traced_run() -> tuple:
        tracer = Tracer()
        registry = MetricsRegistry()
        cluster.reset_network(metrics=registry)
        started = time.perf_counter()
        result = execute_query(
            cluster, expression, options, config=config,
            tracer=tracer, metrics=registry, query_id=1,
        )
        return time.perf_counter() - started, tracer, result

    best = None
    for _ in range(repetitions):
        run = _traced_run()
        if best is None or run[0] < best[0]:
            best = run
    traced_s, tracer, result = best

    statistics = StatisticsStore.from_cluster(cluster)
    impacts = estimate_optimization_impacts(
        expression,
        cluster.catalog,
        statistics,
        options=options,
        measured_stats=result.stats,
        plan=result.plan,
    )
    build_started = time.perf_counter()
    profile = build_profile(
        tracer.finished(),
        result.stats,
        impacts=impacts,
        plan_description=result.plan.describe(),
        notes=result.plan.notes,
        query_id=1,
    )
    profile_build_s = time.perf_counter() - build_started

    service = service_cache_report(executor=executor)
    socket_profiler = socket_trace_report(sites=sites, scale=scale)
    return {
        "sites": sites,
        "scale": scale,
        "executor": executor,
        "repetitions": repetitions,
        "profiler": {
            "traced_run_s": traced_s,
            "profile_build_s": profile_build_s,
            "overhead_frac": (
                (profile_build_s / traced_s) if traced_s > 0 else 0.0
            ),
            "time_coverage": profile.time_coverage(),
            "bytes_coverage": profile.bytes_coverage(),
            "rounds": len(profile.rounds),
            "optimizations_reported": len(profile.impacts),
            "optimizations_applied": len(result.plan.applied_optimizations()),
        },
        "service": {
            "hit_ratio": service["hit_ratio"],
            "latency_ms": service["latency_ms"],
            "queries": service["totals"]["queries"],
        },
        # Full per-round/site/operator breakdown so `repro diff` (and
        # the bench gate's failure report) can attribute a timing
        # regression to the operator that caused it.
        "profile": profile.to_dict(),
        # Cross-process trace coverage: the same query over real
        # sockets, profiled from clock-synced replayed site spans.
        "socket_profiler": socket_profiler,
    }


def socket_trace_report(sites: int = 4, scale: float = 0.001) -> dict:
    """Trace coverage for a socket-executor (multi-process) run.

    Boots an ephemeral :class:`~repro.distributed.deployment.ProcessCluster`,
    runs the Section-5 correlated query traced, and reports how much of
    the run's wall time the profile attributes when every site span
    crossed a process boundary (shipped in a REPLY frame, skew-corrected
    on replay). ``repro bench --check`` pins this with its own coverage
    bar — replayed spans arriving misaligned (or not at all) would show
    up here as a coverage collapse long before anyone reads a timeline.
    """
    import tempfile

    from repro.distributed.costing import (
        StatisticsStore,
        estimate_optimization_impacts,
    )
    from repro.distributed.deployment import ProcessCluster
    from repro.obs.profile import build_profile
    from repro.queries.olap import QueryBuilder
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import base, detail

    simulated = scaleup_cluster(TPCRConfig(scale=scale), sites=sites)
    expression = (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("above")], extra=detail.Price >= base.avg_price)
        .build()
    )
    options = OptimizationOptions.all()
    deployed = ProcessCluster.from_simulated(
        simulated, tempfile.mkdtemp(prefix="repro-bench-sockets-"),
        ephemeral=True,
    )
    try:
        tracer = Tracer()
        registry = MetricsRegistry()
        deployed.reset_network(metrics=registry)
        started = time.perf_counter()
        result = execute_query(
            deployed, expression, options,
            config=ExecutionConfig(executor="sockets"),
            tracer=tracer, metrics=registry, query_id=1,
        )
        traced_s = time.perf_counter() - started
        statistics = StatisticsStore.from_cluster(deployed)
        impacts = estimate_optimization_impacts(
            expression,
            deployed.catalog,
            statistics,
            options=options,
            measured_stats=result.stats,
            plan=result.plan,
        )
        profile = build_profile(
            tracer.finished(), result.stats, impacts=impacts, query_id=1
        )
        finished = tracer.finished()
        site_spans = sum(1 for span in finished if span.process == "site")
        negative = sum(1 for span in finished if span.end_s < span.start_s)
        return {
            "sites": sites,
            "scale": scale,
            "traced_run_s": traced_s,
            "time_coverage": profile.time_coverage(),
            "bytes_coverage": profile.bytes_coverage(),
            "spans": len(finished),
            "site_spans": site_spans,
            "negative_duration_spans": negative,
            "clock_synced_sites": len(result.stats.clock_offsets),
        }
    finally:
        deployed.close()


#: Hard acceptance bars (independent of any baseline file).
TIME_COVERAGE_FLOOR = 0.95
BYTES_COVERAGE_FLOOR = 0.999
PROFILER_OVERHEAD_CEILING = 0.05
#: Socket (multi-process) runs attribute against replayed site spans;
#: process boundaries and real I/O leave more unattributed wall, so the
#: cross-process bar sits below the in-process one.
SOCKET_TIME_COVERAGE_FLOOR = 0.85


def check_profile_baseline(
    current: dict, baseline: dict, tolerance: float = 0.2
) -> list:
    """Compare a fresh profile report against a pinned baseline.

    Returns a list of human-readable problem strings (empty = pass).
    Coverage and the profiler-overhead budget are *hard* bars from the
    acceptance criteria; timing comparisons get ``tolerance`` headroom
    plus small absolute slack so CI-machine jitter does not fail builds.
    """
    problems = []
    profiler = current.get("profiler", {})
    base_profiler = baseline.get("profiler", {})

    time_coverage = profiler.get("time_coverage", 0.0)
    if time_coverage < TIME_COVERAGE_FLOOR:
        problems.append(
            f"time_coverage {time_coverage:.3f} below the "
            f"{TIME_COVERAGE_FLOOR:.0%} acceptance floor"
        )
    bytes_coverage = profiler.get("bytes_coverage", 0.0)
    if bytes_coverage < BYTES_COVERAGE_FLOOR:
        problems.append(
            f"bytes_coverage {bytes_coverage:.4f} below the "
            f"{BYTES_COVERAGE_FLOOR} acceptance floor"
        )
    overhead = profiler.get("overhead_frac", 0.0)
    if overhead > PROFILER_OVERHEAD_CEILING:
        problems.append(
            f"profiler overhead_frac {overhead:.3f} above the "
            f"{PROFILER_OVERHEAD_CEILING:.0%} budget"
        )
    baseline_overhead = base_profiler.get("overhead_frac")
    if baseline_overhead is not None:
        allowed = baseline_overhead + max(tolerance * baseline_overhead, 0.02)
        if overhead > allowed:
            problems.append(
                f"profiler overhead_frac {overhead:.3f} regressed "
                f">{tolerance:.0%} over baseline {baseline_overhead:.3f}"
            )

    socket_profiler = current.get("socket_profiler")
    if socket_profiler is not None:
        socket_coverage = socket_profiler.get("time_coverage", 0.0)
        if socket_coverage < SOCKET_TIME_COVERAGE_FLOOR:
            problems.append(
                f"socket-executor time_coverage {socket_coverage:.3f} below "
                f"the {SOCKET_TIME_COVERAGE_FLOOR:.0%} cross-process floor"
            )
        if socket_profiler.get("site_spans", 0) < 1:
            problems.append(
                "socket-executor run replayed no site-process spans — "
                "REPLY span shipping is broken"
            )
        if socket_profiler.get("negative_duration_spans", 0):
            problems.append(
                f"socket-executor run has "
                f"{socket_profiler['negative_duration_spans']} negative-"
                "duration span(s) — skew correction is broken"
            )

    reported = profiler.get("optimizations_reported", 0)
    applied = profiler.get("optimizations_applied", 0)
    if reported < applied:
        problems.append(
            f"only {reported} of {applied} applied optimizations carry a "
            "measured-vs-estimated saving"
        )

    service = current.get("service", {})
    base_service = baseline.get("service", {})
    hit_ratio = service.get("hit_ratio", 0.0)
    baseline_hit_ratio = base_service.get("hit_ratio")
    if baseline_hit_ratio is not None and hit_ratio < baseline_hit_ratio * (
        1.0 - tolerance
    ):
        problems.append(
            f"service hit_ratio {hit_ratio:.3f} regressed >{tolerance:.0%} "
            f"under baseline {baseline_hit_ratio:.3f}"
        )
    latency = service.get("latency_ms", {})
    baseline_latency = base_service.get("latency_ms", {})
    for label in ("p50", "p90", "p99", "mean"):
        now_ms = latency.get(label)
        then_ms = baseline_latency.get(label)
        if now_ms is None or then_ms is None:
            continue
        allowed_ms = then_ms * (1.0 + tolerance) + 5.0
        if now_ms > allowed_ms:
            problems.append(
                f"service latency {label} {now_ms:.1f}ms regressed "
                f">{tolerance:.0%} over baseline {then_ms:.1f}ms"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """``python -m repro.bench.harness``: one benchmark run as JSON."""
    import argparse
    import json
    import sys

    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.bench.harness",
        description="run one reference-checked benchmark and print JSON",
    )
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.001)
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="serial",
        help="site execution engine for the benchmark arms",
    )
    parser.add_argument(
        "--emit-trace",
        metavar="PATH",
        help="write the all-optimizations arm's JSONL trace to PATH",
    )
    parser.add_argument(
        "--micro",
        metavar="PATH",
        help="run the codec microbenchmark only and write its JSON to PATH",
    )
    parser.add_argument(
        "--fault-report",
        metavar="PATH",
        help="run the seeded fault-injection recovery check only (retry "
        "bit-identical, degrade excludes the victim) and write its JSON to PATH",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="victim-site seed for --fault-report"
    )
    parser.add_argument(
        "--service-report",
        metavar="PATH",
        help="run the query-service cache-hit-ratio sweep only (every served "
        "answer checked against a cold evaluation) and write its JSON to PATH",
    )
    parser.add_argument(
        "--profile-report",
        metavar="PATH",
        help="run the EXPLAIN ANALYZE profiler benchmark only (coverage, "
        "profiler overhead, service latency quantiles) and write its JSON "
        "to PATH",
    )
    parser.add_argument(
        "--socket-report",
        metavar="PATH",
        help="run the socket-vs-simulated transport sweep only (every query "
        "family bit-identical over real sockets, measured payload bytes "
        "equal to modeled bytes) and write its JSON to PATH",
    )
    parser.add_argument(
        "--output", metavar="PATH", help="write the benchmark JSON to PATH"
    )
    args = parser.parse_args(argv)
    if args.socket_report:
        sweep = socket_sweep_report(sites=args.sites, scale=args.scale)
        with open(args.socket_report, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(sweep, indent=2, sort_keys=True) + "\n")
        totals = sweep["totals"]
        print(
            f"socket sweep: {totals['queries']} queries bit-identical over "
            f"sockets; payload {totals['bytes_modeled']}B == modeled, "
            f"framing +{totals['framing_bytes']}B ({totals['frames']} frames); "
            f"wall sim {totals['sim_wall_s']:.2f}s vs "
            f"sockets {totals['socket_wall_s']:.2f}s",
            file=sys.stderr,
        )
        return 0
    if args.profile_report:
        report = profile_benchmark_report(
            sites=args.sites, scale=args.scale, executor=args.executor
        )
        with open(args.profile_report, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        profiler = report["profiler"]
        print(
            f"profiler [{args.executor}]: overhead "
            f"{profiler['overhead_frac']:.1%}, time coverage "
            f"{profiler['time_coverage']:.1%}, bytes coverage "
            f"{profiler['bytes_coverage']:.1%}, "
            f"{profiler['optimizations_reported']} optimization(s) measured",
            file=sys.stderr,
        )
        return 0
    if args.service_report:
        sweep = service_cache_report(sites=args.sites, executor=args.executor)
        with open(args.service_report, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(sweep, indent=2, sort_keys=True) + "\n")
        totals = sweep["totals"]
        print(
            f"service cache [{args.executor}]: {totals['queries']} queries, "
            f"hit ratio {sweep['hit_ratio']:.0%} "
            f"({totals['hits']} hits / {totals['misses']} misses / "
            f"{totals['refreshes']} refreshes), answers verified",
            file=sys.stderr,
        )
        return 0
    if args.fault_report:
        fault = fault_recovery_report(
            sites=args.sites,
            scale=args.scale,
            seed=args.seed,
            executor=args.executor,
        )
        with open(args.fault_report, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(fault, indent=2, sort_keys=True) + "\n")
        print(
            f"fault recovery [{args.executor}]: victim={fault['victim']} "
            f"retry retries={fault['retry']['retries']} (bit-identical), "
            f"degrade excluded={fault['degrade']['excluded']}",
            file=sys.stderr,
        )
        return 0
    if args.micro:
        micro = codec_microbenchmark()
        micro["columnar"] = columnar_sweep()
        with open(args.micro, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(micro, indent=2, sort_keys=True) + "\n")
        print(
            f"codec: encode {micro['encode']['speedup']:.2f}x, "
            f"decode {micro['decode']['speedup']:.2f}x over reference "
            f"({micro['rows']} rows); column codec saves "
            f"{micro['column']['saving_fraction']:.1%}; columnar kernels "
            f"cube {micro['columnar']['cube']['speedup']:.2f}x, "
            f"multifeature {micro['columnar']['multifeature']['speedup']:.2f}x",
            file=sys.stderr,
        )
        return 0
    report = benchmark_report(
        sites=args.sites,
        scale=args.scale,
        emit_trace=args.emit_trace,
        executor=args.executor,
    )
    text = json.dumps(report, indent=2, sort_keys=True, default=str)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text, file=out)
    overhead = report["tracing_overhead"]
    print(
        f"tracing overhead: {overhead['overhead_s'] * 1000:.2f}ms "
        f"({overhead['overhead_frac']:.1%}) over "
        f"{overhead['untraced_s'] * 1000:.2f}ms untraced",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
