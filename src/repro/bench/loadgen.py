"""Closed- and open-loop load generator for the query service.

The ROADMAP's "heavy traffic" claim becomes a measured one here: a
seeded, deterministic mix of the paper's query families — cube lattice
group-bys, correlated multi-feature cascades at varying selectivities,
and unpivot marginals — is driven through one
:class:`~repro.service.QueryService` per offered-load step, and every
submission's lifecycle stages (admission → lookup → plan → execute →
merge, measured by the service itself) are aggregated into an SLO
report:

- **closed loop** (``mode="closed"``): each step runs N worker threads
  that submit back-to-back; offered load is the worker count, so the
  sweep traces the latency-vs-concurrency curve up to the admission
  gate's ``max_in_flight``;
- **open loop** (``mode="open"``): workers submit on a fixed
  offered-QPS arrival schedule (arrival *i* at ``i/qps`` seconds);
  when the service cannot keep up, admission rejections and timeouts
  are counted instead of silently stretching the schedule.

Determinism contract: the query *sequence* is a pure function of
``(mix, seed)`` — one ``random.Random(seed)`` drawing from the prebuilt
pool across all steps — so two runs with the same config submit
identical queries in identical order (thread interleaving may vary, the
schedule may not). :func:`strip_timings` removes the timing-derived
fields, and the remainder of two same-seed reports must be identical —
the regression test pins this.

``BENCH_slo.json`` pins one run; ``repro loadgen --check`` (and the
extended ``repro bench --check``) re-measures and compares via
:func:`check_slo_baseline`, which delegates the thresholded verdicts to
:mod:`repro.obs.diff`. ``repro loadgen --self-test`` additionally
verifies the acceptance bars: >= 3 steps with per-stage p50/p99, stage
sums covering >= 95% of end-to-end latency, and an injected operator
slowdown correctly named by the trace diff.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.flows import FlowConfig, generate_flows, router_partitioner
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.evaluator import ExecutionConfig
from repro.errors import AdmissionError, QueryTimeoutError, ReproError
from repro.queries.cube import cube_lattice_queries
from repro.queries.multifeature import Feature, multifeature_query
from repro.queries.unpivot import marginal_queries
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.service.service import (
    DEGRADED,
    FRESH,
    HIT,
    REFRESH,
    REJECTED,
    STAGES,
    TIMEOUT,
    QueryService,
)

SLO_VERSION = 1

MIXES = ("cube", "multifeature", "unpivot", "mixed")

#: Outcomes that returned an answer (everything but rejected/timeout).
SERVED_OUTCOMES = (HIT, FRESH, REFRESH, DEGRADED)

#: The selectivity knobs of the multi-feature mix: the second feature
#: counts detail tuples with NumBytes >= factor * mean, so larger
#: factors qualify fewer tuples.
SELECTIVITY_FACTORS = (0.5, 1.0, 2.0)


class LoadgenError(ReproError):
    """Bad load-generator configuration or a failed SLO self-check."""


@dataclass(frozen=True)
class LoadgenConfig:
    """One sweep: a mode, a query mix, and the offered-load steps."""

    mode: str = "closed"  #: ``"closed"`` | ``"open"``
    mix: str = "mixed"
    seed: int = 17
    sites: int = 3
    flow_count: int = 400
    executor: str = "serial"
    #: Worker counts (closed) or offered QPS values (open), one per step.
    steps: Tuple[float, ...] = (1, 2, 4)
    queries_per_step: int = 24
    #: Open-loop client threads (closed loop uses the step value).
    workers: int = 4
    timeout_s: float = 30.0
    max_in_flight: int = 4
    max_queue: int = 32

    def __post_init__(self):
        if self.mode not in ("closed", "open"):
            raise LoadgenError(f"mode must be closed|open, got {self.mode!r}")
        if self.mix not in MIXES:
            raise LoadgenError(f"mix must be one of {MIXES}, got {self.mix!r}")
        if not self.steps:
            raise LoadgenError("need at least one offered-load step")
        if self.queries_per_step < 1:
            raise LoadgenError(
                f"queries_per_step must be >= 1, got {self.queries_per_step}"
            )

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "mix": self.mix,
            "seed": self.seed,
            "sites": self.sites,
            "flow_count": self.flow_count,
            "executor": self.executor,
            "steps": list(self.steps),
            "queries_per_step": self.queries_per_step,
            "workers": self.workers,
            "timeout_s": self.timeout_s,
            "max_in_flight": self.max_in_flight,
            "max_queue": self.max_queue,
        }


def config_from_report(report: dict) -> LoadgenConfig:
    """Rebuild the config a pinned ``BENCH_slo.json`` was produced with,
    so ``--check`` re-measures apples-to-apples."""
    recorded = report.get("config")
    if not recorded:
        raise LoadgenError("report carries no config to re-measure with")
    return LoadgenConfig(
        mode=recorded["mode"],
        mix=recorded["mix"],
        seed=recorded["seed"],
        sites=recorded["sites"],
        flow_count=recorded["flow_count"],
        executor=recorded["executor"],
        steps=tuple(recorded["steps"]),
        queries_per_step=recorded["queries_per_step"],
        workers=recorded["workers"],
        timeout_s=recorded["timeout_s"],
        max_in_flight=recorded["max_in_flight"],
        max_queue=recorded["max_queue"],
    )


# ---------------------------------------------------------------------------
# Query pool & deterministic schedule
# ---------------------------------------------------------------------------


def build_query_pool(mix: str = "mixed") -> List[tuple]:
    """``[(name, GMDJExpression), ...]`` for one mix over the Flow table.

    The pool is a pure function of ``mix`` — no randomness — so the
    seeded schedule over its indices fully determines the workload.
    """
    if mix not in MIXES:
        raise LoadgenError(f"mix must be one of {MIXES}, got {mix!r}")
    pool: List[tuple] = []
    if mix in ("cube", "mixed"):
        aggs = [count_star("cnt"), AggSpec("sum", detail.NumBytes, "bytes")]
        for subset, expression in cube_lattice_queries(
            "Flow", ["SourceAS", "DestAS"], aggs
        ):
            pool.append((f"cube:{'+'.join(subset)}", expression))
    if mix in ("multifeature", "mixed"):
        for factor in SELECTIVITY_FACTORS:
            expression = multifeature_query(
                "Flow",
                ["SourceAS"],
                [
                    Feature(
                        [
                            count_star("cnt"),
                            AggSpec("avg", detail.NumBytes, "avg_bytes"),
                        ]
                    ),
                    Feature(
                        [count_star("heavy")],
                        when=detail.NumBytes >= base.avg_bytes * factor,
                    ),
                ],
            )
            pool.append((f"multifeature:x{factor:g}", expression))
    if mix in ("unpivot", "mixed"):
        aggs = [count_star("cnt"), AggSpec("max", detail.NumPackets, "peak")]
        for attribute, expression in marginal_queries(
            "Flow", ["SourceAS", "DestAS", "RouterId"], aggs
        ):
            pool.append((f"unpivot:{attribute}", expression))
    return pool


def schedule_queries(pool_size: int, count: int, rng: random.Random) -> List[int]:
    """The next ``count`` pool indices from the sweep's one seeded stream."""
    return [rng.randrange(pool_size) for _ in range(count)]


# ---------------------------------------------------------------------------
# Step execution
# ---------------------------------------------------------------------------


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _quantiles_ms(values_s: Sequence[float]) -> dict:
    ordered = sorted(values_s)
    return {
        "p50": _percentile(ordered, 0.50) * 1000.0,
        "p90": _percentile(ordered, 0.90) * 1000.0,
        "p99": _percentile(ordered, 0.99) * 1000.0,
        "mean": (sum(ordered) / len(ordered) * 1000.0) if ordered else 0.0,
        "count": len(ordered),
    }


def _run_step(
    service: QueryService,
    pool: List[tuple],
    indices: Sequence[int],
    *,
    workers: int,
    offered_qps: Optional[float],
    timeout_s: float,
    join_deadline_s: Optional[float] = None,
) -> tuple:
    """Fire one step's schedule; returns ``(records, elapsed_s)``.

    Workers pull the next schedule position under a lock, so the
    submission order matches the seeded schedule regardless of thread
    interleaving. A record is ``(position, name, outcome, wall_s,
    stages)``.

    Shutdown is deadline-capped: client threads are joined against a
    budget derived from the step's worst case (every remaining
    submission timing out) rather than forever. A client still alive at
    the deadline is *leaked* — its daemon thread may hold a service
    permit — and the step fails loudly with :class:`LoadgenError`
    instead of writing a report that silently undercounts in-flight
    work. ``join_deadline_s`` overrides the budget (tests use a tiny
    one to exercise the leak path).
    """
    lock = threading.Lock()
    cursor = [0]
    records: List[tuple] = []
    started = time.perf_counter()

    def _client() -> None:
        while True:
            with lock:
                position = cursor[0]
                if position >= len(indices):
                    return
                cursor[0] += 1
            if offered_qps:
                delay = (started + position / offered_qps) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            name, expression = pool[indices[position]]
            begin = time.perf_counter()
            try:
                result = service.submit(expression, timeout_s=timeout_s)
            except AdmissionError:
                record = (position, name, REJECTED,
                          time.perf_counter() - begin, {})
            except QueryTimeoutError:
                record = (position, name, TIMEOUT,
                          time.perf_counter() - begin, {})
            else:
                record = (position, name, result.outcome, result.wall_s,
                          result.stages)
            with lock:
                records.append(record)

    threads = [
        threading.Thread(target=_client, name=f"loadgen-{index}", daemon=True)
        for index in range(max(1, workers))
    ]
    for thread in threads:
        thread.start()
    if join_deadline_s is None:
        # Worst case: every submission times out serially, plus slack
        # for scheduling jitter and the open-loop arrival offsets.
        join_deadline_s = max(timeout_s, 1.0) * len(indices) + 30.0
        if offered_qps:
            join_deadline_s += len(indices) / offered_qps
    deadline = started + join_deadline_s
    for thread in threads:
        thread.join(max(0.0, deadline - time.perf_counter()))
    leaked = [thread.name for thread in threads if thread.is_alive()]
    if leaked:
        raise LoadgenError(
            f"{len(leaked)} load client(s) still running "
            f"{join_deadline_s:.1f}s after step start: {leaked} — refusing "
            "to write a report over leaked in-flight work"
        )
    elapsed = time.perf_counter() - started
    records.sort(key=lambda record: record[0])
    return records, elapsed


def _summarize_step(
    label: str,
    offered: float,
    schedule_names: Sequence[str],
    records: Sequence[tuple],
    elapsed_s: float,
) -> dict:
    outcomes = {outcome: 0 for outcome in (*SERVED_OUTCOMES, REJECTED, TIMEOUT)}
    walls: List[float] = []
    stage_values: Dict[str, List[float]] = {stage: [] for stage in STAGES}
    stage_total_s = 0.0
    wall_total_s = 0.0
    for _position, _name, outcome, wall_s, stages in records:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if outcome in SERVED_OUTCOMES:
            walls.append(wall_s)
            wall_total_s += wall_s
            stage_total_s += sum(stages.values())
            for stage, seconds in stages.items():
                stage_values.setdefault(stage, []).append(seconds)
    served = len(walls)
    lookups = outcomes[HIT] + outcomes[FRESH] + outcomes[REFRESH]
    return {
        "label": label,
        "offered": offered,
        "queries": len(records),
        "schedule": list(schedule_names),
        "duration_s": elapsed_s,
        "achieved_qps": (served / elapsed_s) if elapsed_s > 0 else 0.0,
        "outcomes": outcomes,
        "hit_ratio": (
            (outcomes[HIT] + outcomes[REFRESH]) / lookups if lookups else 0.0
        ),
        "latency_ms": _quantiles_ms(walls),
        "stages_ms": {
            stage: _quantiles_ms(values)
            for stage, values in stage_values.items()
            if values
        },
        #: Time-weighted: Σ stage seconds / Σ end-to-end seconds over the
        #: served submissions. The acceptance bar is >= 0.95.
        "stage_sum_frac": (
            (stage_total_s / wall_total_s) if wall_total_s > 0 else 0.0
        ),
    }


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


def _build_cluster(config: LoadgenConfig) -> SimulatedCluster:
    flow_config = FlowConfig(
        flow_count=config.flow_count,
        router_count=config.sites,
        seed=config.seed,
    )
    cluster = SimulatedCluster.with_sites(config.sites)
    cluster.load_partitioned(
        "Flow", generate_flows(flow_config), router_partitioner(flow_config)
    )
    return cluster


def run_loadgen(config: LoadgenConfig) -> dict:
    """Run the full sweep and return the SLO report (``BENCH_slo.json``).

    Each step gets a fresh :class:`QueryService` (same cluster, cold
    cache), so every step measures the same workload — a deterministic
    blend of cache misses and hits — at its own offered load.
    """
    pool = build_query_pool(config.mix)
    rng = random.Random(config.seed)
    cluster = _build_cluster(config)
    steps = []
    for step_value in config.steps:
        indices = schedule_queries(len(pool), config.queries_per_step, rng)
        if config.mode == "closed":
            label = f"closed-{int(step_value)}w"
            workers, offered_qps = int(step_value), None
        else:
            label = f"open-{step_value:g}qps"
            workers, offered_qps = config.workers, float(step_value)
        with QueryService(
            cluster,
            ExecutionConfig(executor=config.executor),
            max_in_flight=config.max_in_flight,
            max_queue=config.max_queue,
        ) as service:
            records, elapsed = _run_step(
                service,
                pool,
                indices,
                workers=workers,
                offered_qps=offered_qps,
                timeout_s=config.timeout_s,
            )
        steps.append(
            _summarize_step(
                label,
                float(step_value),
                [pool[index][0] for index in indices],
                records,
                elapsed,
            )
        )
    return {
        "slo_version": SLO_VERSION,
        "mode": config.mode,
        "mix": config.mix,
        "seed": config.seed,
        "pool": [name for name, _expression in pool],
        "config": config.to_dict(),
        "steps": steps,
    }


def strip_timings(report: dict) -> dict:
    """The deterministic remainder of an SLO report.

    Removes every wall-clock-derived field: quantiles, achieved QPS,
    durations, stage fractions — and the outcome counts/hit ratio, which
    are also race-dependent under concurrency (two in-flight submissions
    of the same signature may both evaluate fresh, or the later one may
    score a hit, depending on interleaving). What is left — the seeded
    schedule, pool, labels and config — must be identical across
    same-seed runs, which the determinism test asserts.
    """
    timing_keys = (
        "duration_s", "achieved_qps", "latency_ms", "stages_ms",
        "stage_sum_frac", "outcomes", "hit_ratio",
    )
    stripped = {
        key: value for key, value in report.items() if key != "steps"
    }
    stripped["steps"] = [
        {key: value for key, value in step.items() if key not in timing_keys}
        for step in report.get("steps", ())
    ]
    return stripped


def render_slo_table(report: dict) -> str:
    """The ASCII latency-vs-offered-load table."""
    from repro.bench.harness import format_table

    headers = [
        "step", "offered", "qps", "p50ms", "p90ms", "p99ms",
        "hit%", "rej", "t/o", "stage%",
    ]
    rows = []
    for step in report.get("steps", ()):
        latency = step.get("latency_ms", {})
        outcomes = step.get("outcomes", {})
        rows.append(
            [
                step.get("label", "?"),
                f"{step.get('offered', 0):g}",
                f"{step.get('achieved_qps', 0.0):.1f}",
                f"{latency.get('p50', 0.0):.1f}",
                f"{latency.get('p90', 0.0):.1f}",
                f"{latency.get('p99', 0.0):.1f}",
                f"{step.get('hit_ratio', 0.0) * 100:.0f}",
                str(outcomes.get(REJECTED, 0)),
                str(outcomes.get(TIMEOUT, 0)),
                f"{step.get('stage_sum_frac', 0.0) * 100:.1f}",
            ]
        )
    title = (
        f"repro loadgen [{report.get('mode', '?')}/{report.get('mix', '?')}] "
        f"seed={report.get('seed')} — offered load vs latency"
    )
    return title + "\n" + format_table(headers, rows)


# ---------------------------------------------------------------------------
# Baseline gate
# ---------------------------------------------------------------------------


def check_slo_baseline(
    current: dict, baseline: dict, threshold: float = 0.5
):
    """Diff a fresh report against the pinned one.

    Returns ``(problems, diff)`` — ``problems`` is a list of
    human-readable regression strings (empty = pass) and ``diff`` the
    full :class:`~repro.obs.diff.TraceDiff` for the root-cause table.
    The default threshold is deliberately loose (50% + the per-unit
    slack) because SLO numbers carry CI-machine noise; the schedule and
    outcome fields are compared exactly.
    """
    from repro.obs.diff import diff_slo

    problems = []
    if strip_timings(baseline) != strip_timings(current):
        problems.append(
            "deterministic fields diverged from the baseline (schedule, "
            "outcomes or config) — regenerate BENCH_slo.json if the "
            "workload changed intentionally"
        )
    diff = diff_slo(
        baseline, current, threshold=threshold,
        before_label="baseline", after_label="current",
    )
    for entry in diff.regressions():
        problems.append(
            f"SLO regression: {entry.dimension} {entry.key} {entry.metric} "
            f"{entry.before:.3f} -> {entry.after:.3f}"
        )
    return problems, diff


# ---------------------------------------------------------------------------
# Self-test (the acceptance scenario)
# ---------------------------------------------------------------------------


def _traced_profile(cluster, expression):
    """One traced, unoptimized run of ``expression`` -> profile dict.

    Unoptimized so the plan keeps its synchronization rounds — the
    coordinator's ``round.merge`` operator is the self-test's slowdown
    victim and must be on the hot path.
    """
    from repro.distributed import OptimizationOptions, execute_query
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs.profile import build_profile

    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    result = execute_query(
        cluster,
        expression,
        OptimizationOptions.none(),
        tracer=tracer,
        metrics=registry,
        query_id=1,
    )
    return build_profile(tracer.finished(), result.stats, query_id=1).to_dict()


def run_self_test(
    out=None, *, output: str = "BENCH_slo.json", slowdown_s: float = 0.08
) -> int:
    """``repro loadgen --self-test``: the PR's acceptance scenario.

    1. A closed-loop sweep at >= 3 offered-load steps writes ``output``
       and must report per-stage p50/p99 at every step;
    2. stage durations must sum to >= 95% of measured end-to-end
       latency (time-weighted, per step);
    3. a synthetic ``slowdown_s`` sleep injected into the coordinator's
       sync-merge operator must be named by the trace diff as the top
       attributed regression (dimension ``operator``, key
       ``round.merge``).
    """
    import sys

    from repro.gmdj import operator as gmdj_operator
    from repro.obs.diff import diff_profiles

    out = out or sys.stdout
    failures = []

    config = LoadgenConfig(steps=(1, 2, 4), queries_per_step=18)
    report = run_loadgen(config)
    with open(output, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render_slo_table(report), file=out)
    print(f"SLO report written to {output}", file=out)

    if len(report["steps"]) < 3:
        failures.append(
            f"need >= 3 offered-load steps, got {len(report['steps'])}"
        )
    for step in report["steps"]:
        for stage, quantiles in step["stages_ms"].items():
            if "p50" not in quantiles or "p99" not in quantiles:
                failures.append(
                    f"{step['label']}: stage {stage} lacks p50/p99"
                )
        missing = [
            stage for stage in STAGES if stage not in step["stages_ms"]
        ]
        # Hit-only paths never run plan/execute; admission and lookup
        # must always be present.
        if "admission" in missing or "lookup" in missing:
            failures.append(
                f"{step['label']}: stages {missing} unobserved"
            )
        frac = step["stage_sum_frac"]
        if not 0.95 <= frac <= 1.05:
            failures.append(
                f"{step['label']}: stage sum covers {frac:.1%} of "
                "end-to-end latency (bar: within 5%)"
            )
        else:
            print(
                f"{step['label']}: stage sum covers {frac:.1%} of "
                "end-to-end latency",
                file=out,
            )

    # -- operator-slowdown attribution --------------------------------------
    pool = dict(build_query_pool("multifeature"))
    victim_query = pool[f"multifeature:x{SELECTIVITY_FACTORS[0]:g}"]
    cluster = _build_cluster(config)
    before = _traced_profile(cluster, victim_query)
    original_finish = gmdj_operator.SyncSession.finish

    def _slowed_finish(self, *args, **kwargs):
        time.sleep(slowdown_s)
        return original_finish(self, *args, **kwargs)

    gmdj_operator.SyncSession.finish = _slowed_finish
    try:
        after = _traced_profile(cluster, victim_query)
    finally:
        gmdj_operator.SyncSession.finish = original_finish
    diff = diff_profiles(
        before, after, before_label="healthy", after_label="slowed"
    )
    top = diff.top_regression()
    if top is None:
        failures.append(
            f"injected {slowdown_s * 1000:.0f}ms operator slowdown produced "
            "no attributed regression"
        )
    elif top.dimension != "operator" or "round.merge" not in top.key:
        failures.append(
            f"top attributed regression is {top.dimension} {top.key} "
            f"{top.metric}, expected operator round.merge"
        )
    else:
        print(
            f"injected {slowdown_s * 1000:.0f}ms sync-merge slowdown "
            f"attributed to: {top.dimension} {top.key} "
            f"(+{(top.after - top.before) * 1000:.1f}ms)",
            file=out,
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    print("loadgen self-test passed", file=out)
    return 0
