"""Markdown report generation for the reproduced experiments.

``make_markdown_report`` reruns every figure at a given scale and
renders a self-contained markdown document — the machinery behind
EXPERIMENTS.md, kept runnable so the recorded numbers can always be
regenerated (``python -m repro report > EXPERIMENTS_regenerated.md``).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.figures import figure2, figure2_aware, figure3, figure4, figure5
from repro.bench.harness import FigureSeries, growth_exponent
from repro.net.costmodel import CostModel, WAN


def _series_table(series: FigureSeries, attribute: str, title: str, fmt="{:.4f}") -> list:
    lines = [f"**{title}**", ""]
    headers = [series.x_label, *series.arm_names]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "---|" * len(headers))
    for x, point in zip(series.x_values, series.measurements):
        cells = [str(x)]
        for arm in series.arm_names:
            value = getattr(point[arm], attribute)
            cells.append(fmt.format(value) if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return lines


def _exponent_line(series: FigureSeries, attribute: str = "bytes_total") -> str:
    parts = []
    for arm in series.arm_names:
        values = series.column(arm, attribute)
        try:
            exponent = growth_exponent(series.x_values, values)
            parts.append(f"{arm}: {exponent:.2f}")
        except Exception:  # degenerate sweeps (single point)
            parts.append(f"{arm}: n/a")
    return f"growth exponents ({attribute}): " + ", ".join(parts)


def make_markdown_report(
    scale: float = 0.001,
    participating: Sequence[int] = (1, 2, 4, 8),
    model: CostModel = WAN,
) -> str:
    """Run all figures and render a markdown report."""
    lines = [
        "# Regenerated experiment report",
        "",
        f"TPC-R scale {scale} (≈{int(6_000_000 * scale)} rows), "
        f"sites {list(participating)}. All arms verified against "
        "centralized evaluation and Theorem 2's bound during the runs.",
        "",
        "## Figure 2 — group reduction",
        "",
    ]
    series, formula = figure2(scale=scale, participating=participating, model=model)
    lines += _series_table(series, "bytes_total", "bytes transferred", fmt="{:.0f}")
    lines += _series_table(series, "total_time_s", "evaluation time (s)")
    lines.append(_exponent_line(series))
    lines.append("")
    lines.append("traffic formula (2c+2n+1)/(4n+1):")
    lines.append("")
    lines.append("| n | c | predicted | measured | error |")
    lines.append("|---|---|---|---|---|")
    for point in formula:
        lines.append(
            f"| {point.sites} | {point.c:.3f} | {point.predicted_ratio:.4f} "
            f"| {point.measured_ratio:.4f} | {point.relative_error:.2%} |"
        )
    lines.append("")

    lines.append("### Extension: distribution-aware reduction")
    lines.append("")
    aware = figure2_aware(scale=scale, participating=participating, model=model)
    lines += _series_table(aware, "bytes_total", "bytes transferred", fmt="{:.0f}")
    lines.append(_exponent_line(aware, "bytes_down"))
    lines.append("")

    lines.append("## Figure 3 — coalescing")
    lines.append("")
    fig3 = figure3(scale=scale, participating=participating, model=model)
    for label in ("high", "low"):
        lines.append(f"### {label} cardinality")
        lines.append("")
        lines += _series_table(fig3[label], "bytes_total", "bytes transferred", fmt="{:.0f}")
        lines += _series_table(fig3[label], "total_time_s", "evaluation time (s)")
        lines.append(_exponent_line(fig3[label]))
        lines.append("")

    lines.append("## Figure 4 — synchronization reduction")
    lines.append("")
    fig4 = figure4(scale=scale, participating=participating, model=model)
    for label in ("high", "low"):
        lines.append(f"### {label} cardinality")
        lines.append("")
        lines += _series_table(fig4[label], "bytes_total", "bytes transferred", fmt="{:.0f}")
        lines += _series_table(
            fig4[label], "synchronizations", "synchronizations", fmt="{:.0f}"
        )
        lines.append(_exponent_line(fig4[label]))
        lines.append("")

    lines.append("## Figure 5 — combined reductions (scale-up)")
    lines.append("")
    for constant_groups in (False, True):
        variant = "constant groups" if constant_groups else "groups grow with data"
        lines.append(f"### {variant}")
        lines.append("")
        fig5 = figure5(
            base_scale=scale,
            scale_factors=(1, 2, 3, 4),
            model=model,
            constant_groups=constant_groups,
        )
        lines += _series_table(fig5, "bytes_total", "bytes transferred", fmt="{:.0f}")
        lines += _series_table(fig5, "total_time_s", "evaluation time (s)")
        lines.append("")

    return "\n".join(lines)
