"""Command-line interface: ``python -m repro``.

Subcommands:

- ``demo`` — build a distributed TPC-R warehouse and run the quickstart
  correlated query with and without optimizations;
- ``sql QUERY`` — run a query in the OLAP SQL dialect against a freshly
  generated distributed warehouse (TPC-R or flows), on a star or
  multi-tier topology;
- ``trace QUERY`` — run a query (same options as ``sql``) with tracing
  on and print an ASCII per-round timeline — one bar per site scaled to
  ``down_xfer + compute + up_xfer`` plus the coordinator merge — whose
  totals footer agrees with ``ExecutionStats``; ``--json`` emits the raw
  JSONL trace instead, ``--emit-trace PATH`` writes it alongside;
- ``explain QUERY`` — print the optimized GMDJ plan with every applied
  optimization priced by ablation against the cost model;
  ``--analyze`` additionally *runs* the query traced and renders an
  EXPLAIN ANALYZE tree attributing measured time/rows/bytes to rounds,
  sites and operators, with measured-vs-estimated savings per
  optimization;
- ``serve`` — the concurrent query service REPL; ``--metrics-port``
  additionally exposes the service registry as Prometheus text at
  ``http://127.0.0.1:PORT/metrics``;
- ``top`` — poll a ``/metrics`` endpoint and render a terminal
  dashboard (in-flight/queued, cache hit ratio, latency quantiles,
  per-site bytes);
- ``bench`` — run the EXPLAIN ANALYZE profiler benchmark;
  ``--check`` compares against the pinned ``BENCH_profile.json``
  baseline (and, when present, the ``BENCH_slo.json`` SLO baseline),
  fails on regressions, and prints the trace-diff root-cause table for
  any failure;
- ``loadgen`` — the closed/open-loop load generator: seeded
  deterministic query mixes against the query service, an SLO report
  (``BENCH_slo.json``) with achieved QPS and per-stage latency
  quantiles per offered-load step, and an ASCII latency-vs-load table;
  ``--check`` gates against the pinned baseline, ``--self-test`` runs
  the acceptance scenario;
- ``diff BEFORE AFTER`` — compare two observability artifacts (JSONL
  traces, ``explain --analyze --json`` profiles, ``loadgen`` SLO
  reports, or ``bench`` reports) and attribute wall-time/byte deltas to
  rounds, sites, operators, stages and optimizations with thresholded
  verdicts; exits 1 when anything regressed;
- ``figures [NAME]`` — regenerate the paper's experiments and print
  their reports (fig2, fig2x, fig3, fig4, fig5, or all).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.data.flows import FlowConfig, generate_flows, router_partitioner
from repro.data.tpcr import (
    TPCRConfig,
    generate_tpcr,
    nation_partitioner,
    register_tpcr_fds,
)
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    TreeTopology,
    execute_query,
    execute_query_hierarchical,
)
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.executor import EXECUTORS
from repro.distributed.recovery import FAILURE_MODES
from repro.net import serialize
from repro.queries.sql import parse_olap_statement
from repro.relalg.engine import ENGINES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skalla: distributed OLAP query processing (Akinde et al., 2002)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run the quickstart demonstration")
    _add_cluster_options(demo)

    sql = commands.add_parser("sql", help="run an OLAP SQL query distributed")
    sql.add_argument("query", help="query text, e.g. \"SELECT NationKey, COUNT(*) AS c FROM TPCR GROUP BY NationKey\"")
    _add_cluster_options(sql)
    sql.add_argument(
        "--data",
        choices=("tpcr", "flows"),
        default="tpcr",
        help="which synthetic warehouse to build (table name TPCR or Flow)",
    )
    sql.add_argument(
        "--topology",
        default="star",
        help="'star' (flat coordinator merge), 'tree:R' (two-level tree "
        "with R regions), or a scheduler mode: 'auto' lets the cost "
        "model pick, 'flat'/'hierarchical:R'/'chain:F' force one",
    )
    sql.add_argument("--max-rows", type=int, default=20, help="rows to print")

    trace = commands.add_parser(
        "trace", help="run a query traced and print a per-round timeline"
    )
    trace.add_argument(
        "query",
        nargs="?",
        default=None,
        help="query text (same dialect as 'sql'); omit with --flight",
    )
    trace.add_argument(
        "--flight",
        metavar="PATH",
        default=None,
        help="post-mortem mode: render flight-recorder dump(s) at PATH "
        "(a flight-*.jsonl file, or a directory written by "
        "'repro cluster dump') instead of running a query",
    )
    _add_cluster_options(trace)
    trace.add_argument(
        "--data",
        choices=("tpcr", "flows"),
        default="tpcr",
        help="which synthetic warehouse to build (table name TPCR or Flow)",
    )
    trace.add_argument(
        "--topology",
        default="star",
        help="only 'star' supports tracing today",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the raw JSONL trace instead of the ASCII timeline",
    )
    trace.add_argument(
        "--emit-trace",
        metavar="PATH",
        help="also write the JSONL trace to PATH",
    )

    explain = commands.add_parser(
        "explain",
        help="print the optimized plan with per-optimization savings; "
        "--analyze runs it traced and renders EXPLAIN ANALYZE",
    )
    explain.add_argument("query", help="query text (same dialect as 'sql')")
    _add_cluster_options(explain)
    explain.add_argument(
        "--data",
        choices=("tpcr", "flows"),
        default="tpcr",
        help="which synthetic warehouse to build (table name TPCR or Flow)",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query traced and attribute measured "
        "time/rows/bytes to plan nodes",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the plan/profile as JSON instead of the ASCII tree",
    )
    explain.add_argument(
        "--emit-trace",
        metavar="PATH",
        help="with --analyze: also write the run's JSONL trace to PATH",
    )
    explain.add_argument(
        "--topology",
        default="auto",
        metavar="TOPOLOGY",
        help="merge topology: 'auto' (cost-model scheduler picks), "
        "'flat', 'hierarchical:R', or 'chain:F'",
    )

    serve = commands.add_parser(
        "serve",
        help="start the concurrent query service (REPL over stdin, or "
        "--self-test for the concurrency smoke test)",
    )
    _add_cluster_options(serve)
    serve.add_argument(
        "--data",
        choices=("tpcr", "flows"),
        default="flows",
        help="which synthetic warehouse to build (table name TPCR or Flow)",
    )
    serve.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in concurrency smoke test and exit",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent client threads for --self-test",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=4, help="concurrent query limit"
    )
    serve.add_argument(
        "--max-queue", type=int, default=16, help="admission queue capacity"
    )
    serve.add_argument("--max-rows", type=int, default=20, help="rows to print")
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose the service metrics registry as Prometheus text at "
        "http://127.0.0.1:PORT/metrics (0 picks a free port)",
    )

    top = commands.add_parser(
        "top",
        help="poll a /metrics endpoint and render a terminal dashboard",
    )
    top.add_argument(
        "--url",
        default=None,
        help="full exposition URL (default: built from --host/--port)",
    )
    top.add_argument(
        "--cluster",
        metavar="DIR",
        default=None,
        help="scrape a running 'repro cluster up --dir DIR' deployment "
        "directly (per-site telemetry panel) instead of polling --url",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=9108)
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between frames"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting (0 = until interrupted)",
    )

    bench = commands.add_parser(
        "bench",
        help="run the EXPLAIN ANALYZE profiler benchmark "
        "(--check compares against the pinned baseline)",
    )
    bench.add_argument("--sites", type=int, default=4)
    bench.add_argument("--scale", type=float, default=0.001)
    bench.add_argument(
        "--executor", choices=EXECUTORS, default="serial",
        help="site execution engine",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare the fresh numbers against --baseline and exit "
        "non-zero on regression",
    )
    bench.add_argument(
        "--baseline",
        default="BENCH_profile.json",
        metavar="PATH",
        help="pinned baseline JSON for --check",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed relative regression vs the baseline",
    )
    bench.add_argument(
        "--output", metavar="PATH", help="write the fresh report JSON to PATH"
    )
    bench.add_argument(
        "--slo-baseline",
        default="BENCH_slo.json",
        metavar="PATH",
        help="with --check: also re-run the pinned SLO sweep and gate "
        "against this baseline (skipped when the file does not exist)",
    )
    bench.add_argument(
        "--slo-threshold",
        type=float,
        default=0.5,
        help="allowed relative SLO regression vs the baseline",
    )
    bench.add_argument(
        "--micro-baseline",
        default="BENCH_micro.json",
        metavar="PATH",
        help="with --check: re-run the codec microbenchmark and columnar "
        "kernel sweep and gate against this baseline (skipped when the "
        "file does not exist)",
    )
    bench.add_argument(
        "--min-columnar-speedup",
        type=float,
        default=1.3,
        help="floor on the columnar kernel speedup for the micro gate "
        "(the pinned numbers are ~4x; the floor absorbs CI timing noise)",
    )
    bench.add_argument(
        "--straggler-sweep",
        action="store_true",
        help="run the speculative-re-execution sweep instead: seeded "
        "per-site compute delays over real sockets, gating that "
        "speculation cuts the p99 slowest-round wall while every query "
        "stays bit-identical to the fault-free flat run "
        "(requires --executor sockets)",
    )
    bench.add_argument(
        "--straggler-delay",
        type=float,
        default=1.5,
        help="seeded per-site compute delay in seconds for --straggler-sweep",
    )
    bench.add_argument(
        "--straggler-trials",
        type=int,
        default=3,
        help="seeds swept per mode for --straggler-sweep",
    )
    bench.add_argument(
        "--straggler-min-speedup",
        type=float,
        default=1.5,
        help="required p99 slowest-round-wall improvement for "
        "--straggler-sweep",
    )

    loadgen = commands.add_parser(
        "loadgen",
        help="drive the query service with a seeded deterministic query "
        "mix and emit an SLO report (latency vs offered load)",
    )
    loadgen.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed loop (steps = worker counts) or open loop "
        "(steps = offered QPS)",
    )
    loadgen.add_argument(
        "--mix",
        choices=("cube", "multifeature", "unpivot", "mixed"),
        default="mixed",
        help="query family blend",
    )
    loadgen.add_argument("--seed", type=int, default=17)
    loadgen.add_argument("--sites", type=int, default=3)
    loadgen.add_argument("--flow-count", type=int, default=400)
    loadgen.add_argument(
        "--executor", choices=EXECUTORS, default="serial",
        help="site execution engine",
    )
    loadgen.add_argument(
        "--steps",
        default=None,
        help="comma-separated offered loads: worker counts (closed) or "
        "QPS values (open); default 1,2,4",
    )
    loadgen.add_argument(
        "--queries", type=int, default=24, help="submissions per step"
    )
    loadgen.add_argument(
        "--workers", type=int, default=4, help="open-loop client threads"
    )
    loadgen.add_argument(
        "--timeout", type=float, default=30.0, help="per-query timeout (s)"
    )
    loadgen.add_argument(
        "--output", metavar="PATH", help="write the SLO report JSON to PATH"
    )
    loadgen.add_argument(
        "--check",
        action="store_true",
        help="compare against --baseline and exit non-zero on regression",
    )
    loadgen.add_argument(
        "--baseline",
        default="BENCH_slo.json",
        metavar="PATH",
        help="pinned SLO baseline for --check",
    )
    loadgen.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="allowed relative regression vs the baseline",
    )
    loadgen.add_argument(
        "--self-test",
        action="store_true",
        help="run the acceptance scenario: >=3 steps with per-stage "
        "p50/p99, stage sums within 5% of end-to-end latency, and an "
        "injected operator slowdown attributed by the trace diff",
    )

    diff = commands.add_parser(
        "diff",
        help="attribute wall-time/byte deltas between two observability "
        "artifacts (traces, profiles, SLO or bench reports)",
    )
    diff.add_argument("before", help="baseline artifact path")
    diff.add_argument("after", help="fresh artifact path")
    diff.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="relative movement a series needs to earn a verdict",
    )
    diff.add_argument(
        "--query-id",
        type=int,
        default=None,
        help="when diffing traces: restrict to one query's records",
    )
    diff.add_argument(
        "--json",
        action="store_true",
        help="emit the diff as JSON instead of the root-cause table",
    )

    query = commands.add_parser(
        "query",
        help="run one query through the caching query service "
        "(--repeat to demonstrate cache hits)",
    )
    query.add_argument("query", help="query text (same dialect as 'sql')")
    _add_cluster_options(query)
    query.add_argument(
        "--data",
        choices=("tpcr", "flows"),
        default="tpcr",
        help="which synthetic warehouse to build (table name TPCR or Flow)",
    )
    query.add_argument(
        "--repeat", type=int, default=2, help="submissions of the same query"
    )
    query.add_argument("--max-rows", type=int, default=20, help="rows to print")

    figures = commands.add_parser("figures", help="regenerate paper experiments")
    figures.add_argument(
        "name",
        nargs="?",
        default="all",
        choices=("fig2", "fig2x", "fig3", "fig4", "fig5", "all"),
    )
    figures.add_argument("--scale", type=float, default=0.001)

    report = commands.add_parser(
        "report", help="regenerate the full markdown experiment report"
    )
    report.add_argument("--scale", type=float, default=0.001)

    site_server = commands.add_parser(
        "site-server",
        help="serve one site's partition over TCP (started per site by "
        "'repro cluster up' or by an ephemeral --executor sockets run)",
    )
    site_server.add_argument(
        "--store", required=True, metavar="DIR",
        help="partition store directory (written by 'repro cluster up')",
    )
    site_server.add_argument("--site", required=True, help="site id to serve")
    site_server.add_argument("--host", default="127.0.0.1")
    site_server.add_argument(
        "--port", type=int, default=0,
        help="listening port (0 picks a free one, announced on stdout as "
        "'READY site=<id> port=<port>')",
    )

    cluster_cmd = commands.add_parser(
        "cluster",
        help="manage a process-separated site deployment "
        "(up: write a partition store and launch one site-server process "
        "per site; down: stop them)",
    )
    cluster_sub = cluster_cmd.add_subparsers(dest="cluster_command", required=True)
    cluster_up = cluster_sub.add_parser(
        "up", help="deploy site-server processes serving a fresh warehouse"
    )
    cluster_up.add_argument(
        "--dir", required=True, metavar="DIR",
        help="directory for the partition store and deployment spec",
    )
    cluster_up.add_argument("--sites", type=int, default=4)
    cluster_up.add_argument("--scale", type=float, default=0.001)
    cluster_up.add_argument(
        "--data", choices=("tpcr", "flows"), default="tpcr",
        help="which synthetic warehouse to build (table name TPCR or Flow)",
    )
    cluster_up.add_argument("--host", default="127.0.0.1")
    cluster_down = cluster_sub.add_parser(
        "down", help="stop a running deployment"
    )
    cluster_down.add_argument("--dir", required=True, metavar="DIR")
    cluster_dump = cluster_sub.add_parser(
        "dump",
        help="write coordinator + per-site flight-recorder dumps into the "
        "deployment directory (dead sites keep their last crash dump)",
    )
    cluster_dump.add_argument("--dir", required=True, metavar="DIR")
    cluster_dump.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory for the flight-*.jsonl files (default: --dir)",
    )
    return parser


def _add_cluster_options(parser) -> None:
    parser.add_argument("--sites", type=int, default=4, help="number of sites")
    parser.add_argument("--scale", type=float, default=0.001, help="TPC-R scale")
    parser.add_argument(
        "--optimizations",
        choices=("all", "none"),
        default="all",
        help="Skalla optimization toggles",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="serial",
        help="site execution engine (star topology; 'threads'/'processes' "
        "fan site legs out across a worker pool; 'sockets' runs each site "
        "as a separate OS process reached over TCP)",
    )
    parser.add_argument(
        "--cluster-dir",
        metavar="DIR",
        default=None,
        help="attach to the running deployment in DIR ('repro cluster up "
        "--dir DIR') instead of booting an ephemeral one; implies "
        "--executor sockets",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="fault-injection spec: a rule DSL string like "
        "'drop site=site1 round=1 dir=up; crash site=site1 rounds=1-2 times=4', "
        "or a path to a JSON rule file",
    )
    parser.add_argument(
        "--failure-mode",
        choices=FAILURE_MODES,
        default=None,
        help="how the coordinator reacts to failing site legs "
        "(default: fail_fast, or retry when --faults is given)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="leg re-runs before a site is declared failed (retry/degrade)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="relational execution engine: 'row' (tuple-at-a-time oracle) or "
        "'columnar' (vectorized batch kernels); default $REPRO_ENGINE or row",
    )
    parser.add_argument(
        "--wire-codec",
        choices=serialize.CODECS,
        default=None,
        help="relation wire encoding: 'row' (per-value) or 'column' "
        "(dictionary+delta column blocks); default $REPRO_CODEC or row",
    )


#: Process clusters booted by the current CLI invocation, closed by
#: ``main()`` on the way out so ephemeral site-server processes (and
#: their temp stores) never outlive the command.
_ACTIVE_DEPLOYMENTS: list = []


def _load_cluster_data(cluster, args) -> None:
    if getattr(args, "data", "tpcr") == "flows":
        config = FlowConfig(
            flow_count=max(100, int(5_000_000 * args.scale)),
            router_count=args.sites,
        )
        cluster.load_partitioned(
            "Flow", generate_flows(config), router_partitioner(config)
        )
        cluster.catalog.add_functional_dependency("SourceAS", "RouterId")
    else:
        cluster.load_partitioned(
            "TPCR",
            generate_tpcr(TPCRConfig(scale=args.scale)),
            nation_partitioner(args.sites),
        )
        register_tpcr_fds(cluster.catalog)


def _build_cluster(args):
    faults = getattr(args, "faults", None)
    fault_plan = None
    if faults:
        from repro.net.faults import FaultPlan

        fault_plan = FaultPlan.from_any(faults)

    if getattr(args, "cluster_dir", None) and getattr(args, "executor", "serial") != "sockets":
        # --cluster-dir only makes sense against the socket transport;
        # silently running in-process instead would fake the deployment.
        args.executor = "sockets"

    if getattr(args, "executor", "serial") == "sockets":
        from repro.distributed.deployment import ProcessCluster

        cluster_dir = getattr(args, "cluster_dir", None)
        if cluster_dir:
            deployed = ProcessCluster.attach(cluster_dir)
        else:
            import tempfile

            simulated = SimulatedCluster.with_sites(args.sites)
            _load_cluster_data(simulated, args)
            deployed = ProcessCluster.from_simulated(
                simulated,
                tempfile.mkdtemp(prefix="repro-cluster-"),
                ephemeral=True,
            )
        if fault_plan is not None:
            deployed.install_faults(fault_plan)
        _ACTIVE_DEPLOYMENTS.append(deployed)
        return deployed

    cluster = SimulatedCluster.with_sites(args.sites)
    if fault_plan is not None:
        cluster.install_faults(fault_plan)
    _load_cluster_data(cluster, args)
    return cluster


def _options(args) -> OptimizationOptions:
    if args.optimizations == "all":
        return OptimizationOptions.all()
    return OptimizationOptions.none()


def _config(args) -> ExecutionConfig:
    failure_mode = getattr(args, "failure_mode", None)
    if failure_mode is None:
        # With faults injected but no explicit mode, retrying is the only
        # default that still answers the query correctly.
        failure_mode = "retry" if getattr(args, "faults", None) else "fail_fast"
    overrides = {}
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    if getattr(args, "wire_codec", None) is not None:
        overrides["wire_codec"] = args.wire_codec
    return ExecutionConfig(
        executor=getattr(args, "executor", "serial"),
        failure_mode=failure_mode,
        max_retries=getattr(args, "max_retries", 2),
        **overrides,
    )


def _print_recovery(stats, out) -> None:
    """One summary line when a run saw faults, retries, or exclusions."""
    if not (stats.faults or stats.retries or stats.degraded):
        return
    line = (
        f"recovery [{stats.failure_mode}]: faults={stats.fault_count} "
        f"retries={stats.retries}"
    )
    if stats.excluded_sites:
        excluded = ", ".join(
            f"round {index}: {site_id}" for index, site_id in stats.excluded_sites
        )
        line += f" EXCLUDED ({excluded}) — result is an under-approximation"
    print(line, file=out)


def run_demo(args, out) -> int:
    from repro.queries.olap import QueryBuilder
    from repro.relalg.aggregates import AggSpec, count_star
    from repro.relalg.expressions import base, detail

    cluster = _build_cluster(args)
    expression = (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("above")], extra=detail.Price >= base.avg_price)
        .build()
    )
    for label, options in (
        ("no optimizations", OptimizationOptions.none()),
        ("all optimizations", OptimizationOptions.all()),
    ):
        cluster.reset_network()
        result = execute_query(cluster, expression, options, config=_config(args))
        print(f"=== {label} ===", file=out)
        print(result.plan.describe(), file=out)
        print(
            f"synchronizations={result.plan.synchronization_count} "
            f"bytes={result.stats.bytes_total}",
            file=out,
        )
        _print_recovery(result.stats, out)
        print(result.relation.sorted_by(["NationKey"]).pretty(8), file=out)
        print(file=out)
    return 0


def run_sql(args, out) -> int:
    statement = parse_olap_statement(args.query)
    expression = statement.expression
    cluster = _build_cluster(args)

    if args.topology == "star":
        result = execute_query(
            cluster, expression, _options(args), config=_config(args)
        )
        stats_line = (
            f"syncs={result.plan.synchronization_count} "
            f"bytes={result.stats.bytes_total} rounds={result.stats.round_count}"
        )
        _print_recovery(result.stats, out)
        plan = result.plan
    elif args.topology.startswith("tree:"):
        if args.executor != "serial":
            print("--executor applies to the star topology only", file=sys.stderr)
            return 2
        if args.faults:
            print("--faults applies to the star topology only", file=sys.stderr)
            return 2
        region_count = int(args.topology.split(":", 1)[1])
        topology = TreeTopology.balanced(cluster.site_ids, region_count)
        result = execute_query_hierarchical(
            cluster, topology, expression, _options(args)
        )
        stats_line = (
            f"root-link bytes={result.stats.root_link_bytes} "
            f"total bytes={result.stats.bytes_total}"
        )
        plan = result.plan
    elif args.topology == "auto" or args.topology == "flat" or (
        args.topology.split(":", 1)[0] in ("hierarchical", "chain")
    ):
        from repro.distributed import execute_query_scheduled
        from repro.errors import PlanError

        try:
            result = execute_query_scheduled(
                cluster,
                expression,
                _options(args),
                config=_config(args),
                topology=args.topology,
            )
        except PlanError as error:
            print(f"repro sql: {error}", file=sys.stderr)
            return 2
        choice = result.topology_choice
        stats_line = f"merge topology={choice.topology} — {choice.reason}"
        if choice.measured_root_link_bytes is not None:
            stats_line += (
                f"\nroot-link bytes={choice.measured_root_link_bytes} "
                f"total bytes={result.stats.bytes_total}"
            )
        _print_recovery(result.stats, out)
        plan = result.plan
    else:
        print(f"unknown topology {args.topology!r}", file=sys.stderr)
        return 2

    print(plan.describe(), file=out)
    print(stats_line, file=out)
    print(statement.apply_post(result.relation).pretty(args.max_rows), file=out)
    return 0


def _run_trace_flight(args, out) -> int:
    """Post-mortem: render flight-recorder dump(s) instead of running."""
    import json
    import os

    from repro.errors import ObservabilityError
    from repro.obs import FlightRecord, load_flight_dir

    try:
        if os.path.isdir(args.flight):
            records = load_flight_dir(args.flight)
        else:
            records = [FlightRecord.load(args.flight)]
    except (OSError, ObservabilityError) as error:
        print(f"repro trace --flight: {error}", file=sys.stderr)
        return 2

    if args.json:
        for record in records:
            out.write(record.to_event_log().dumps())
        return 0

    for record in records:
        label = (
            f"site {record.site_id}" if record.site_id else record.process
        )
        print(
            f"flight [{label}]: {len(record.records)} records "
            f"(capacity {record.capacity}, dropped {record.dropped})",
            file=out,
        )
        for entry in record.records:
            kind = entry.get("record", "event")
            detail = {
                key: value
                for key, value in entry.items()
                if key not in ("record", "t_s")
            }
            if kind == "span":
                start = detail.get("start_s")
                end = detail.get("end_s")
                if isinstance(start, (int, float)) and isinstance(
                    end, (int, float)
                ):
                    duration = f"{(end - start) * 1000:.2f}ms"
                else:
                    duration = "open"
                site = (detail.get("attributes") or {}).get("site")
                suffix = f" site={site}" if site else ""
                print(
                    f"  span  {detail.get('name', '?')} {duration}{suffix}",
                    file=out,
                )
            else:
                tag = "FAULT" if kind == "fault" else "event"
                print(
                    f"  {tag} {json.dumps(detail, sort_keys=True)}", file=out
                )
    return 0


def run_trace(args, out) -> int:
    from repro.net.costmodel import WAN
    from repro.obs import (
        ClockMap,
        MetricsRegistry,
        Tracer,
        build_trace,
        render_timeline,
    )
    from repro.distributed.stats import verify_against_network

    if args.flight is not None:
        return _run_trace_flight(args, out)
    if args.query is None:
        print("trace: a query (or --flight PATH) is required", file=sys.stderr)
        return 2
    if args.topology != "star":
        print(
            f"tracing supports the star topology only, got {args.topology!r}",
            file=sys.stderr,
        )
        return 2
    statement = parse_olap_statement(args.query)
    cluster = _build_cluster(args)

    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    result = execute_query(
        cluster,
        statement.expression,
        _options(args),
        config=_config(args),
        tracer=tracer,
        metrics=registry,
    )

    clock_map = (
        ClockMap.from_dict(result.stats.clock_offsets)
        if result.stats.clock_offsets
        else None
    )
    log = build_trace(tracer, registry, result.stats, model=WAN, clock_map=clock_map)
    if args.emit_trace:
        log.dump(args.emit_trace)
    if args.json:
        out.write(log.dumps())
        return 0

    mismatches = verify_against_network(result.stats, cluster.network)
    print(result.plan.describe(), file=out)
    _print_recovery(result.stats, out)
    print(render_timeline(result.stats, WAN), file=out)
    print(
        f"trace: {len(tracer.spans)} spans, {len(registry)} metrics"
        + (f", clock-synced {len(clock_map)} site(s)" if clock_map else "")
        + (f", written to {args.emit_trace}" if args.emit_trace else ""),
        file=out,
    )
    for mismatch in mismatches:  # pragma: no cover - bookkeeping invariant
        print(f"WARNING stats/network mismatch — {mismatch}", file=sys.stderr)
    return 1 if mismatches else 0


def run_explain(args, out) -> int:
    import json

    from repro.distributed.costing import (
        StatisticsStore,
        estimate_optimization_impacts,
    )
    from repro.distributed.optimizer import plan_query

    statement = parse_olap_statement(args.query)
    cluster = _build_cluster(args)
    options = _options(args)
    statistics = StatisticsStore.from_cluster(cluster)

    if not args.analyze:
        from repro.distributed import choose_topology

        plan = plan_query(statement.expression, cluster.catalog, options)
        impacts = estimate_optimization_impacts(
            statement.expression, cluster.catalog, statistics,
            options=options, plan=plan,
        )
        choice = choose_topology(plan, statistics, cluster.catalog)
        if args.json:
            print(
                json.dumps(
                    {
                        "plan": plan.describe(),
                        "notes": list(plan.notes),
                        "optimizations": [
                            impact.to_dict() for impact in impacts
                        ],
                        "topology": choice.to_dict(),
                    },
                    indent=2,
                    sort_keys=True,
                ),
                file=out,
            )
            return 0
        print(plan.describe(), file=out)
        print(f"merge topology [{choice.topology}]: {choice.reason}", file=out)
        if impacts:
            print("optimizations (estimated by ablation):", file=out)
            for impact in impacts:
                print(
                    f"  - {impact.name}: {impact.description}; "
                    f"estimated {impact.estimated_without_tuples:.0f} tuples "
                    f"without, {impact.estimated_with_tuples:.0f} with "
                    f"({impact.saving_fraction:.1%} saved)",
                    file=out,
                )
        for note in plan.notes:
            print(f"  note: {note}", file=out)
        return 0

    from repro.distributed import execute_plan_scheduled
    from repro.errors import PlanError
    from repro.net.costmodel import WAN
    from repro.obs import MetricsRegistry, Tracer, build_trace
    from repro.obs.profile import build_profile, render_profile

    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    plan = plan_query(statement.expression, cluster.catalog, options)
    config = _config(args)
    try:
        result = execute_plan_scheduled(
            cluster, plan, config,
            tracer=tracer, metrics=registry, query_id=1,
            statistics=statistics, topology=args.topology,
        )
    except PlanError as error:
        print(f"repro explain: {error}", file=sys.stderr)
        return 2
    impacts = estimate_optimization_impacts(
        statement.expression, cluster.catalog, statistics,
        options=options, measured_stats=result.stats, plan=result.plan,
    )
    codec_estimated = None
    if config.wire_codec != "row":
        from repro.distributed.costing import estimate_column_codec_saving

        # Price the codec on the schema the rounds actually ship: the
        # sub-aggregate relation (== the query's result schema).
        codec_estimated = estimate_column_codec_saving(result.relation.schema)
    profile = build_profile(
        tracer.finished(),
        result.stats,
        impacts=impacts,
        plan_description=result.plan.describe(),
        notes=result.plan.notes,
        query_id=1,
        codec_estimated_saving=codec_estimated,
        topology_choice=result.topology_choice,
    )
    if args.emit_trace:
        log = build_trace(
            tracer, registry, result.stats,
            model=WAN, plan=result.plan, query_id=1,
        )
        log.dump(args.emit_trace)
    if args.json:
        print(
            json.dumps(profile.to_dict(), indent=2, sort_keys=True, default=str),
            file=out,
        )
    else:
        print(render_profile(profile), file=out)
    _print_recovery(result.stats, out)
    if result.stats.transport == "sockets":
        print(result.stats.transport_summary(), file=out)
    ok = profile.time_coverage() >= 0.95 and profile.bytes_coverage() >= 0.999
    if not ok:  # pragma: no cover - attribution invariant
        print(
            f"WARNING: attribution below acceptance bars — time "
            f"{profile.time_coverage():.1%} (need >= 95%), bytes "
            f"{profile.bytes_coverage():.1%} (need 100%)",
            file=sys.stderr,
        )
    return 0 if ok else 1


def run_top(args, out) -> int:
    from repro.obs.top import cluster_top_loop, top_loop

    if args.cluster:
        from repro.distributed.deployment import ProcessCluster
        from repro.errors import DeploymentError
        from repro.obs import (
            MetricsRegistry,
            parse_prometheus_text,
            prometheus_text,
        )

        try:
            deployed = ProcessCluster.attach(args.cluster)
        except DeploymentError as error:
            print(f"repro top --cluster: {error}", file=sys.stderr)
            return 2
        _ACTIVE_DEPLOYMENTS.append(deployed)

        def scrape_cluster():
            # Round-trip through the exposition so the panel sees exactly
            # what a Prometheus scrape of this registry would.
            registry = deployed.scrape(MetricsRegistry())
            return parse_prometheus_text(prometheus_text(registry))

        return cluster_top_loop(
            scrape_cluster,
            label=f"cluster {args.cluster}",
            interval_s=args.interval,
            iterations=args.iterations,
            out=out,
        )

    url = args.url or f"http://{args.host}:{args.port}/metrics"
    return top_loop(
        url, interval_s=args.interval, iterations=args.iterations, out=out
    )


def run_bench(args, out) -> int:
    import json
    import os

    from repro.bench.harness import (
        check_profile_baseline,
        profile_benchmark_report,
    )
    from repro.obs.diff import diff_bench, render_diff

    if args.straggler_sweep:
        from repro.bench.harness import ShapeCheckError, straggler_sweep_report

        if args.executor != "sockets":
            print(
                "--straggler-sweep measures real wall time; it requires "
                "--executor sockets",
                file=sys.stderr,
            )
            return 2
        try:
            report = straggler_sweep_report(
                sites=args.sites,
                scale=args.scale,
                trials=args.straggler_trials,
                delay_s=args.straggler_delay,
                min_speedup=args.straggler_min_speedup,
            )
        except ShapeCheckError as error:
            print(f"straggler sweep FAILED: {error}", file=sys.stderr)
            return 1
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        else:
            print(text, file=out)
        print(
            f"straggler sweep: speculation cut p99 slowest-round wall "
            f"{report['speedup']:.2f}x ({report['baseline_p99_s']:.3f}s -> "
            f"{report['speculation_p99_s']:.3f}s) over {report['queries']} "
            f"query families x {report['trials']} trial(s); "
            f"{report['speculative_legs']} leg(s) re-executed, "
            f"{report['speculation_wins']} backup win(s); all runs "
            f"bit-identical to the fault-free flat oracle with byte parity",
            file=out,
        )
        return 0

    report = profile_benchmark_report(
        sites=args.sites, scale=args.scale, executor=args.executor
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text, file=out)
    if not args.check:
        return 0
    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except OSError as error:
        print(f"cannot read baseline {args.baseline!r}: {error}", file=sys.stderr)
        return 2
    failed = False
    problems = check_profile_baseline(report, baseline, tolerance=args.tolerance)
    if problems:
        failed = True
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        # Root-cause attribution: which metric/stage/operator moved.
        print(
            render_diff(
                diff_bench(
                    baseline,
                    report,
                    threshold=args.tolerance,
                    before_label=args.baseline,
                    after_label="fresh run",
                )
            ),
            file=sys.stderr,
        )
    if os.path.exists(args.micro_baseline):
        from repro.bench.harness import (
            check_micro_baseline,
            codec_microbenchmark,
            columnar_sweep,
        )

        with open(args.micro_baseline, "r", encoding="utf-8") as handle:
            micro_baseline = json.load(handle)
        micro = codec_microbenchmark(repetitions=3)
        micro["columnar"] = columnar_sweep(detail_rows=30_000, repetitions=2)
        micro_problems = check_micro_baseline(
            micro, micro_baseline, min_speedup=args.min_columnar_speedup
        )
        if micro_problems:
            failed = True
            for problem in micro_problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
        else:
            print(
                f"bench --check: codec + columnar kernel bars hold vs "
                f"{args.micro_baseline} (columnar cube "
                f"{micro['columnar']['cube']['speedup']:.2f}x, multifeature "
                f"{micro['columnar']['multifeature']['speedup']:.2f}x, column "
                f"codec saves {micro['column']['saving_fraction']:.0%})",
                file=out,
            )
    if os.path.exists(args.slo_baseline):
        from repro.bench.loadgen import (
            check_slo_baseline,
            config_from_report,
            run_loadgen as run_slo_sweep,
        )

        with open(args.slo_baseline, "r", encoding="utf-8") as handle:
            slo_baseline = json.load(handle)
        slo_report = run_slo_sweep(config_from_report(slo_baseline))
        slo_problems, slo_diff = check_slo_baseline(
            slo_report, slo_baseline, threshold=args.slo_threshold
        )
        if slo_problems:
            failed = True
            for problem in slo_problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            print(render_diff(slo_diff), file=sys.stderr)
        else:
            print(
                f"bench --check: SLO bars hold vs {args.slo_baseline} "
                f"(threshold {args.slo_threshold:.0%})",
                file=out,
            )
    if failed:
        return 1
    print(
        f"bench --check: no regression vs {args.baseline} "
        f"(tolerance {args.tolerance:.0%})",
        file=out,
    )
    return 0


def run_loadgen(args, out) -> int:
    import json

    from repro.bench.loadgen import (
        LoadgenConfig,
        LoadgenError,
        check_slo_baseline,
        render_slo_table,
        run_loadgen as run_sweep,
        run_self_test,
    )
    from repro.obs.diff import render_diff

    if args.self_test:
        return run_self_test(out, output=args.output or "BENCH_slo.json")
    try:
        steps = (
            tuple(float(step) for step in args.steps.split(","))
            if args.steps
            else (1, 2, 4)
        )
        config = LoadgenConfig(
            mode=args.mode,
            mix=args.mix,
            seed=args.seed,
            sites=args.sites,
            flow_count=args.flow_count,
            executor=args.executor,
            steps=steps,
            queries_per_step=args.queries,
            workers=args.workers,
            timeout_s=args.timeout,
        )
    except (LoadgenError, ValueError) as error:
        print(f"repro loadgen: {error}", file=sys.stderr)
        return 2
    report = run_sweep(config)
    print(render_slo_table(report), file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"SLO report written to {args.output}", file=out)
    if not args.check:
        return 0
    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except OSError as error:
        print(f"cannot read baseline {args.baseline!r}: {error}", file=sys.stderr)
        return 2
    problems, diff = check_slo_baseline(
        report, baseline, threshold=args.threshold
    )
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        print(render_diff(diff), file=sys.stderr)
        return 1
    print(
        f"loadgen --check: SLO bars hold vs {args.baseline} "
        f"(threshold {args.threshold:.0%})",
        file=out,
    )
    return 0


def run_diff(args, out) -> int:
    import json

    from repro.errors import ObservabilityError
    from repro.obs.diff import diff_artifacts, render_diff

    try:
        diff = diff_artifacts(
            args.before,
            args.after,
            threshold=args.threshold,
            query_id=args.query_id,
        )
    except (OSError, ObservabilityError) as error:
        print(f"repro diff: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(render_diff(diff), file=out)
    return 1 if diff.regressions() else 0


def _service_metrics_line(service) -> str:
    metrics = service.metrics
    return (
        f"cache: hits={int(metrics.value_of('service.cache.hit'))} "
        f"misses={int(metrics.value_of('service.cache.miss'))} "
        f"refreshes={int(metrics.value_of('service.cache.refresh'))} "
        f"rejected={int(metrics.value_of('service.admission.rejected'))}"
    )


def run_serve(args, out) -> int:
    from repro.service import QueryService
    from repro.service.selftest import run_self_test

    if args.self_test:
        return run_self_test(
            out,
            sites=args.sites,
            executor=args.executor,
            clients=args.clients,
        )

    cluster = _build_cluster(args)
    table = "Flow" if args.data == "flows" else "TPCR"
    service = QueryService(
        cluster,
        _config(args),
        _options(args),
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
    )
    print(
        f"serving {table} over {args.sites} sites [{args.executor}] — "
        "enter SQL (blank line or 'exit' to quit, '\\metrics' for counters)",
        file=out,
    )
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.export import start_metrics_server

        # Against a process deployment, /healthz goes degraded (503 +
        # dead-site list) when any site-server stops answering pings.
        health_probe = getattr(cluster, "dead_sites", None)
        metrics_server = start_metrics_server(
            service.metrics, port=args.metrics_port, health_probe=health_probe
        )
        print(f"metrics: {metrics_server.url}", file=out)
    try:
        with service:
            for line in sys.stdin:
                statement_text = line.strip()
                if not statement_text or statement_text.lower() in ("exit", "quit"):
                    break
                if statement_text == "\\metrics":
                    print(_service_metrics_line(service), file=out)
                    continue
                try:
                    result = service.submit(statement_text)
                except Exception as error:  # noqa: BLE001 - REPL keeps serving
                    print(f"error: {type(error).__name__}: {error}", file=out)
                    continue
                print(
                    f"[{result.source}] query {result.query_id} "
                    f"({result.wall_s * 1000:.1f} ms)",
                    file=out,
                )
                print(result.relation.pretty(args.max_rows), file=out)
            print(_service_metrics_line(service), file=out)
    finally:
        if metrics_server is not None:
            # Explicit stop (not just close): releases the listening
            # socket and joins the serving thread, so a quick restart of
            # `repro serve --metrics-port` can rebind without EADDRINUSE.
            metrics_server.stop()
    return 0


def run_query(args, out) -> int:
    from repro.service import QueryService

    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    cluster = _build_cluster(args)
    with QueryService(cluster, _config(args), _options(args)) as service:
        results = [service.submit(args.query) for _ in range(args.repeat)]
        for result in results:
            print(
                f"[{result.source}] query {result.query_id} "
                f"({result.wall_s * 1000:.1f} ms)",
                file=out,
            )
        print(_service_metrics_line(service), file=out)
        print(results[-1].relation.pretty(args.max_rows), file=out)
    return 0


def run_figures(args, out) -> int:
    from repro.bench import figure2, figure2_aware, figure3, figure4, figure5

    name = args.name
    if name in ("fig2", "all"):
        series, formula = figure2(scale=args.scale)
        print(series.show(), file=out)
        for point in formula:
            print(
                f"  n={point.sites}: predicted={point.predicted_ratio:.4f} "
                f"measured={point.measured_ratio:.4f}",
                file=out,
            )
        print(file=out)
    if name in ("fig2x", "all"):
        print(figure2_aware(scale=args.scale).show(), file=out)
        print(file=out)
    if name in ("fig3", "all"):
        result = figure3(scale=args.scale)
        print(result["high"].show(), file=out)
        print(result["low"].show(), file=out)
        print(file=out)
    if name in ("fig4", "all"):
        result = figure4(scale=args.scale)
        print(result["high"].show(), file=out)
        print(result["low"].show(), file=out)
        print(file=out)
    if name in ("fig5", "all"):
        print(figure5(base_scale=args.scale).show(), file=out)
        print(file=out)
    return 0


def run_site_server(args, out) -> int:
    from repro.distributed.siteserver import run_site_server as serve_site
    from repro.errors import DeploymentError

    try:
        serve_site(args.store, args.site, host=args.host, port=args.port)
    except DeploymentError as error:
        print(f"repro site-server: {error}", file=sys.stderr)
        return 2
    return 0


def run_cluster(args, out) -> int:
    from repro.distributed.deployment import (
        ProcessCluster,
        shutdown_deployment,
    )
    from repro.distributed.siteserver import write_partition_store
    from repro.errors import DeploymentError

    if args.cluster_command == "up":
        simulated = SimulatedCluster.with_sites(args.sites)
        _load_cluster_data(simulated, args)
        write_partition_store(simulated, args.dir)
        # The site-server children run in their own sessions, so they
        # keep serving after this command exits; the deployment spec is
        # what later attaches/downs find.
        deployed = ProcessCluster.deploy(args.dir, host=args.host)
        table = "Flow" if args.data == "flows" else "TPCR"
        print(
            f"cluster up: {deployed.site_count} site-server processes "
            f"serving {table} from {args.dir}",
            file=out,
        )
        for site_id in deployed.site_ids:
            print(
                f"  {site_id}: {deployed.host}:{deployed._ports[site_id]}",
                file=out,
            )
        print(
            "attach with: repro sql '<query>' --executor sockets "
            f"--cluster-dir {args.dir}",
            file=out,
        )
        # Drop connections but leave the processes running.
        deployed.network.close()
        return 0

    if args.cluster_command == "down":
        try:
            stopped = shutdown_deployment(args.dir)
        except DeploymentError as error:
            print(f"repro cluster down: {error}", file=sys.stderr)
            return 2
        print(f"cluster down: {stopped} site(s) acknowledged shutdown", file=out)
        return 0

    if args.cluster_command == "dump":
        try:
            deployed = ProcessCluster.attach(args.dir)
        except DeploymentError as error:
            print(f"repro cluster dump: {error}", file=sys.stderr)
            return 2
        try:
            paths = deployed.dump_flight(args.out)
            dead = deployed.dead_sites()
        finally:
            deployed.network.close()
        print(f"cluster dump: {len(paths)} flight record(s)", file=out)
        for path in paths:
            print(f"  {path}", file=out)
        if dead:
            print(
                f"  dead site(s): {', '.join(dead)} — their dumps are the "
                "last per-request crash dumps",
                file=out,
            )
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return run_demo(args, out)
        if args.command == "sql":
            return run_sql(args, out)
        if args.command == "trace":
            return run_trace(args, out)
        if args.command == "explain":
            return run_explain(args, out)
        if args.command == "serve":
            return run_serve(args, out)
        if args.command == "top":
            return run_top(args, out)
        if args.command == "bench":
            return run_bench(args, out)
        if args.command == "loadgen":
            return run_loadgen(args, out)
        if args.command == "diff":
            return run_diff(args, out)
        if args.command == "query":
            return run_query(args, out)
        if args.command == "figures":
            return run_figures(args, out)
        if args.command == "site-server":
            return run_site_server(args, out)
        if args.command == "cluster":
            return run_cluster(args, out)
        if args.command == "report":
            from repro.bench.report import make_markdown_report

            print(make_markdown_report(scale=args.scale), file=out)
            return 0
        return 2  # pragma: no cover - argparse enforces the choices
    finally:
        while _ACTIVE_DEPLOYMENTS:
            _ACTIVE_DEPLOYMENTS.pop().close()


if __name__ == "__main__":
    sys.exit(main())
