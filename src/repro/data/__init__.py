"""``repro.data`` — deterministic synthetic data generators.

:mod:`~repro.data.tpcr` reproduces the paper's TPC-R-derived evaluation
data set (denormalized fact relation, NationKey partitioning,
high/low-cardinality grouping attributes); :mod:`~repro.data.flows`
generates the motivating IP-flow traces of Section 2.1.
"""

from repro.data.flows import (
    FLOW_SCHEMA,
    FlowConfig,
    generate_flows,
    router_partitioner,
)
from repro.data.tpcr import (
    NATION_COUNT,
    TPCR_SCHEMA,
    TPCRConfig,
    generate_tpcr,
    nation_partitioner,
    register_tpcr_fds,
)

__all__ = [
    "FLOW_SCHEMA",
    "FlowConfig",
    "NATION_COUNT",
    "TPCR_SCHEMA",
    "TPCRConfig",
    "generate_flows",
    "generate_tpcr",
    "nation_partitioner",
    "register_tpcr_fds",
    "router_partitioner",
]
