"""TPC-R-style synthetic data generator.

The paper's evaluation (Section 5.1) derives "a denormalized 900 Mbyte
data set with 6 million tuples (named TPCR)" from the TPC(R) ``dbgen``
program, partitioned on NationKey (and therefore also on CustKey), with:

- a high-cardinality grouping attribute: ``Customer.Name`` — unique per
  customer (100,000 values in the paper);
- low-cardinality grouping attributes with 2,000–4,000 unique values
  (supplier- and part-like keys at the paper's scale).

This generator reproduces those *cardinality and partitioning
properties* at laptop scale. ``scale = 1.0`` matches the paper's row
counts; the benchmarks default to much smaller scales, which preserves
every shape result (the experiments vary sites and relative data size,
never absolute size).

The output is a single denormalized fact relation named ``TPCR``:

========== ===== ====================================================
attribute  type  notes
========== ===== ====================================================
OrderKey   int   order identifier
LineNumber int   1..7 within an order
CustKey    int   customer; functionally determines NationKey
CustName   str   ``Customer#%09d`` — unique per customer (high card.)
NationKey  int   0..24 — the partition attribute
RegionKey  int   0..4 (NationKey // 5)
SuppKey    int   low-cardinality key (default 2,000 values)
PartKey    int   low-cardinality key (default 4,000 values)
OrderYear  int   1992..1998
OrderMonth int   1..12
Quantity   float 1..50
Price      float extended price
Discount   float 0..0.10
Returned   bool  ~5% true
========== ===== ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WarehouseError
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, FLOAT, INT, STR, Schema
from repro.warehouse.partition import ValueListPartitioner

NATION_COUNT = 25
REGION_COUNT = 5

TPCR_SCHEMA = Schema.of(
    ("OrderKey", INT),
    ("LineNumber", INT),
    ("CustKey", INT),
    ("CustName", STR),
    ("NationKey", INT),
    ("RegionKey", INT),
    ("SuppKey", INT),
    ("PartKey", INT),
    ("OrderYear", INT),
    ("OrderMonth", INT),
    ("Quantity", FLOAT),
    ("Price", FLOAT),
    ("Discount", FLOAT),
    ("Returned", BOOL),
)


@dataclass(frozen=True)
class TPCRConfig:
    """Row counts and cardinalities; defaults follow TPC ratios.

    ``scale = 1.0`` reproduces the paper's 6M-tuple data set.
    """

    scale: float = 0.001
    seed: int = 7
    lineitems_per_scale: int = 6_000_000
    customers_per_scale: int = 100_000  # the paper's Customer.Name count
    suppliers: int = 2_000  # paper's low-cardinality band: 2000-4000
    parts: int = 4_000
    #: When set, the customer count no longer grows with ``scale`` — the
    #: paper's "number of groups remains constant with an increasing
    #: database size" scale-up variant (Section 5.3).
    fixed_customers: int = 0

    @property
    def lineitem_count(self) -> int:
        return max(1, int(self.lineitems_per_scale * self.scale))

    @property
    def customer_count(self) -> int:
        if self.fixed_customers:
            return self.fixed_customers
        return max(1, int(self.customers_per_scale * self.scale))


def generate_tpcr(config: TPCRConfig = TPCRConfig()) -> Relation:
    """Generate the denormalized TPCR fact relation, deterministically."""
    if config.scale <= 0:
        raise WarehouseError(f"scale must be positive, got {config.scale}")
    rng = np.random.default_rng(config.seed)
    count = config.lineitem_count
    customers = config.customer_count

    # Customers are dealt to nations round-robin, mirroring dbgen's
    # uniform nation assignment; CustKey therefore determines NationKey.
    cust_keys = rng.integers(0, customers, size=count)
    nation_keys = cust_keys % NATION_COUNT
    region_keys = nation_keys // (NATION_COUNT // REGION_COUNT)

    orders_per_customer = 10
    order_keys = cust_keys * orders_per_customer + rng.integers(
        0, orders_per_customer, size=count
    )
    line_numbers = rng.integers(1, 8, size=count)
    supp_keys = rng.integers(0, config.suppliers, size=count)
    part_keys = rng.integers(0, config.parts, size=count)
    order_years = rng.integers(1992, 1999, size=count)
    order_months = rng.integers(1, 13, size=count)
    quantities = rng.integers(1, 51, size=count).astype(float)
    unit_price = 900.0 + 100.0 * (part_keys % 200)
    prices = np.round(quantities * unit_price / 10.0, 2)
    discounts = np.round(rng.integers(0, 11, size=count) / 100.0, 2)
    returned = rng.random(size=count) < 0.05

    rows = []
    for index in range(count):
        cust_key = int(cust_keys[index])
        rows.append(
            (
                int(order_keys[index]),
                int(line_numbers[index]),
                cust_key,
                f"Customer#{cust_key:09d}",
                int(nation_keys[index]),
                int(region_keys[index]),
                int(supp_keys[index]),
                int(part_keys[index]),
                int(order_years[index]),
                int(order_months[index]),
                float(quantities[index]),
                float(prices[index]),
                float(discounts[index]),
                bool(returned[index]),
            )
        )
    return Relation(TPCR_SCHEMA, rows)


def nation_partitioner(site_count: int) -> ValueListPartitioner:
    """The paper's partitioning: NationKey values dealt across sites."""
    return ValueListPartitioner.spread("NationKey", range(NATION_COUNT), site_count)


def customer_functional_dependency() -> tuple:
    """The FD the paper notes: CustKey -> NationKey (so CustKey is a
    partition attribute too). Returns ``(determinant, determined)``."""
    return ("CustKey", "NationKey")


def register_tpcr_fds(catalog) -> None:
    """Register the FDs making CustKey and CustName partition attributes.

    NationKey is the physical partition attribute; CustKey determines
    NationKey (Section 5.1: "partitioned ... on the NationKey attribute,
    and therefore also on the CustKey attribute") and CustName is unique
    per customer, so it determines NationKey as well — which is what lets
    the paper group on Customer.Name and still apply Corollary 1.
    """
    catalog.add_functional_dependency("CustKey", "NationKey")
    catalog.add_functional_dependency("CustName", "NationKey")
