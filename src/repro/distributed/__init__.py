"""``repro.distributed`` — the Skalla distributed OLAP runtime.

The coordinator architecture of the paper: an optimizer (Egil) turns a
GMDJ expression into a round-based plan; Alg. GMDJDistribEval executes it
over a simulated cluster of local warehouses, shipping only partial
results (never detail data) and collecting per-round traffic and timing
statistics.
"""

from repro.distributed.cluster import SimulatedCluster, default_site_ids
from repro.distributed.coordinator import Coordinator
from repro.distributed.costing import (
    PlanEstimate,
    StatisticsStore,
    TableStatistics,
    TopologyEstimate,
    compare_plans,
    estimate_plan,
    estimate_topology_costs,
)
from repro.distributed.hierarchy import (
    HierarchicalResult,
    TreeStats,
    TreeTopology,
    execute_plan_hierarchical,
    execute_query_hierarchical,
)
from repro.distributed.incremental import IncrementalView, RefreshResult
from repro.distributed.evaluator import (
    DistributedResult,
    ExecutionConfig,
    execute_plan,
    execute_query,
)
from repro.distributed.optimizer import (
    OptimizationOptions,
    plan_query,
    plan_query_cost_based,
    plan_query_scheduled,
)
from repro.distributed.scheduler import (
    TopologyChoice,
    choose_topology,
    execute_plan_scheduled,
    execute_query_scheduled,
)
from repro.distributed.spanning import (
    SpanningResult,
    SpanningStats,
    TreeNode,
    chain_tree,
    execute_plan_spanning,
    execute_query_spanning,
)
from repro.distributed.plan import BaseRound, MDRound, Plan
from repro.distributed.site import SkallaSite
from repro.distributed.stats import (
    ExecutionStats,
    RoundStats,
    SiteRoundStats,
    check_theorem2,
    theorem2_bound,
)

__all__ = [
    "BaseRound",
    "Coordinator",
    "DistributedResult",
    "ExecutionConfig",
    "ExecutionStats",
    "HierarchicalResult",
    "IncrementalView",
    "MDRound",
    "OptimizationOptions",
    "Plan",
    "RefreshResult",
    "PlanEstimate",
    "RoundStats",
    "SimulatedCluster",
    "SiteRoundStats",
    "SkallaSite",
    "StatisticsStore",
    "TableStatistics",
    "SpanningResult",
    "SpanningStats",
    "TopologyChoice",
    "TopologyEstimate",
    "TreeStats",
    "TreeNode",
    "TreeTopology",
    "chain_tree",
    "choose_topology",
    "compare_plans",
    "check_theorem2",
    "default_site_ids",
    "estimate_plan",
    "estimate_topology_costs",
    "execute_plan",
    "execute_plan_hierarchical",
    "execute_plan_scheduled",
    "execute_query",
    "execute_query_hierarchical",
    "execute_plan_spanning",
    "execute_query_scheduled",
    "execute_query_spanning",
    "plan_query",
    "plan_query_cost_based",
    "plan_query_scheduled",
    "theorem2_bound",
]
