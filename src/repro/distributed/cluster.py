"""The simulated distributed data warehouse: sites + coordinator + network.

:class:`SimulatedCluster` wires together everything the evaluator needs:
one :class:`~repro.distributed.site.SkallaSite` per site (each with its
own :class:`~repro.warehouse.storage.LocalWarehouse`), a
:class:`~repro.net.channel.Network` of coordinator<->site channels, and a
:class:`~repro.warehouse.catalog.DistributionCatalog` describing the data
placement.

The conceptual fact relation is the union of the site partitions
(Section 3.1); :meth:`SimulatedCluster.conceptual_table` materializes it
for centralized reference evaluation in tests and benchmarks.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import WarehouseError
from repro.distributed.site import SkallaSite
from repro.net.channel import Network
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.relalg.operators import union_all
from repro.relalg.relation import Relation
from repro.warehouse.catalog import DistributionCatalog
from repro.warehouse.partition import Partitioner
from repro.warehouse.storage import LocalWarehouse


def default_site_ids(site_count: int) -> tuple:
    return tuple(f"site{index}" for index in range(site_count))


class SimulatedCluster:
    """A coordinator plus ``n`` Skalla sites, all in-process."""

    def __init__(self, site_ids: Sequence[str]):
        site_ids = tuple(site_ids)
        if not site_ids:
            raise WarehouseError("a cluster needs at least one site")
        if len(set(site_ids)) != len(site_ids):
            raise WarehouseError(f"duplicate site ids in {site_ids}")
        self.site_ids = site_ids
        self.sites = {
            site_id: SkallaSite(site_id, LocalWarehouse(site_id))
            for site_id in site_ids
        }
        self.catalog = DistributionCatalog()
        #: The active fault-injection plan (``None`` = perfect network);
        #: installed via :meth:`install_faults` and re-applied on every
        #: :meth:`reset_network`.
        self.fault_plan = None
        self.network = Network(site_ids)
        #: Span tracer for per-site evaluation; the evaluator installs a
        #: live one per traced run (default: record nothing).
        self.tracer = NULL_TRACER

    @classmethod
    def with_sites(cls, site_count: int) -> "SimulatedCluster":
        return cls(default_site_ids(site_count))

    # -- data loading --------------------------------------------------------------

    def load_partitioned(
        self,
        table_name: str,
        relation: Relation,
        partitioner: Partitioner,
        participating: Optional[Sequence[str]] = None,
    ) -> None:
        """Split ``relation`` across sites and register the distribution.

        ``participating`` selects the subset of sites that hold this table
        (defaults to all); the partitioner's ``site_count`` must match.
        """
        site_ids = tuple(participating) if participating else self.site_ids
        if partitioner.site_count != len(site_ids):
            raise WarehouseError(
                f"partitioner expects {partitioner.site_count} sites, "
                f"{len(site_ids)} participating"
            )
        partitions = partitioner.split(relation)
        for site_id, partition in zip(site_ids, partitions):
            self.sites[site_id].warehouse.register(table_name, partition)
        self.catalog.register_partitioner(
            table_name, partitioner, site_ids, relation.schema
        )

    def load_manual(
        self,
        table_name: str,
        partitions: Mapping[str, Relation],
        phi_by_site: Optional[Mapping[str, object]] = None,
        partition_attrs: Sequence[str] = (),
    ) -> None:
        """Load explicit per-site partitions with hand-written catalog facts."""
        for site_id, partition in partitions.items():
            if site_id not in self.sites:
                raise WarehouseError(f"unknown site {site_id!r}")
            self.sites[site_id].warehouse.register(table_name, partition)
        self.catalog.register(
            table_name,
            tuple(partitions),
            phi_by_site=phi_by_site,
            partition_attrs=partition_attrs,
        )

    # -- views -------------------------------------------------------------------------

    def site(self, site_id: str) -> SkallaSite:
        try:
            return self.sites[site_id]
        except KeyError:
            raise WarehouseError(f"unknown site {site_id!r}") from None

    def conceptual_table(self, table_name: str) -> Relation:
        """The conceptual fact relation: union of all site partitions.

        For replicated tables every site holds the same full copy, so the
        conceptual relation is any one replica, not the n-fold union.
        """
        pieces = [
            site.warehouse.table(table_name)
            for site in self.sites.values()
            if site.warehouse.has_table(table_name)
        ]
        if not pieces:
            raise WarehouseError(f"no site holds table {table_name!r}")
        if self.catalog.is_registered(table_name) and self.catalog.is_replicated(
            table_name
        ):
            return pieces[0]
        return union_all(pieces)

    def conceptual_tables(self) -> dict:
        """All conceptual tables, for centralized reference evaluation."""
        names = set()
        for site in self.sites.values():
            names.update(site.warehouse.table_names())
        return {name: self.conceptual_table(name) for name in sorted(names)}

    def load_replicated(self, table_name: str, relation: Relation) -> None:
        """Install a full copy of ``relation`` at every site.

        The warehouse idiom for small dimension tables: queries over a
        replicated detail relation run at a single site (the optimizer
        knows every replica is complete).
        """
        for site in self.sites.values():
            site.warehouse.register(table_name, relation)
        self.catalog.register(table_name, self.site_ids, replicated=True)

    def harvest_value_predicates(
        self, table_name: str, attributes: Sequence[str], max_values: int = 10_000
    ) -> int:
        """Strengthen the catalog's φᵢ from observed per-site value sets.

        Implements Section 4.1's "a given value might occur at only a few
        sites" refinement: even without a partitioning scheme covering
        ``attributes``, the observed value sets make distribution-aware
        group reduction applicable. Returns the number of predicates added.
        """
        partitions = {
            site_id: site.warehouse.table(table_name)
            for site_id, site in self.sites.items()
            if site.warehouse.has_table(table_name)
        }
        return self.catalog.harvest_value_predicates(
            table_name, attributes, partitions, max_values
        )

    # -- traced site evaluation ---------------------------------------------------

    def compute_base_at(self, site_id: str, source) -> Relation:
        """Run one site's base-values query under a ``round.evaluate`` span."""
        with self.tracer.span(
            "round.evaluate", kind="site", site=site_id, phase="base"
        ) as span:
            result = self.site(site_id).compute_base(source)
            span.set(rows=len(result))
        return result

    def evaluate_round_at(
        self,
        site_id: str,
        base_fragment: Relation,
        steps,
        key_attrs,
        independent_reduction: bool,
    ) -> Relation:
        """Run one site's round evaluation under a ``round.evaluate`` span."""
        with self.tracer.span(
            "round.evaluate",
            kind="site",
            site=site_id,
            steps=len(steps),
            fragment_rows=len(base_fragment),
        ) as span:
            result = self.site(site_id).evaluate_round(
                base_fragment, steps, key_attrs, independent_reduction
            )
            span.set(rows=len(result))
        return result

    def evaluate_merged_round_at(
        self, site_id: str, source, steps, key_attrs
    ) -> Relation:
        """Run one site's Proposition-2 round under a ``round.evaluate`` span."""
        with self.tracer.span(
            "round.evaluate", kind="site", site=site_id, merged_base=True
        ) as span:
            result = self.site(site_id).evaluate_merged_round(
                source, steps, key_attrs
            )
            span.set(rows=len(result))
        return result

    def data_versions(self, table_names: Sequence[str]) -> tuple:
        """Per-site data versions of the named tables, as a hashable tuple.

        ``((table, site, version), ...)`` sorted, covering every site
        (version 0 = site does not hold the table). Equal tuples imply
        the named tables' distributed contents are unchanged — the data
        component of the query service's cached plan signature.
        """
        return tuple(
            (table_name, site_id, self.sites[site_id].warehouse.version(table_name))
            for table_name in sorted(set(table_names))
            for site_id in self.site_ids
        )

    def fresh_network(self, metrics: Optional[MetricsRegistry] = None) -> Network:
        """A new, independent channel set over this cluster's sites.

        Unlike :meth:`reset_network` this does **not** replace
        ``self.network`` — concurrent queries each get their own channel
        queues (two queries interleaving sends on one channel would
        consume each other's fragments) while sharing the site
        warehouses. The installed fault plan is applied with fresh firing
        state, same as a reset.
        """
        return Network(self.site_ids, metrics=metrics, faults=self.fault_plan)

    def install_faults(self, plan) -> None:
        """Install a :class:`~repro.net.faults.FaultPlan` (or ``None`` to
        restore a perfect network) and rebuild the channels.

        Because the plan itself is stateless and all firing state lives
        in the fresh :class:`~repro.net.faults.FaultyChannel` objects,
        installing (or resetting the network under) the same plan replays
        the identical fault schedule.
        """
        self.fault_plan = plan
        self.reset_network()

    def reset_network(
        self, metrics: Optional[MetricsRegistry] = None, faults=None
    ) -> None:
        """Fresh traffic counters (e.g. between benchmark repetitions).

        Pass a registry to have the new channels account their bytes and
        message counts there (a traced run shares one registry between
        the network and the evaluator). ``faults`` overrides the installed
        fault plan for the new network (and becomes the installed plan);
        when omitted, the currently installed plan is re-applied with
        fresh firing state.
        """
        if faults is not None:
            self.fault_plan = faults
        self.network = Network(self.site_ids, metrics=metrics, faults=self.fault_plan)

    @property
    def site_count(self) -> int:
        return len(self.site_ids)

    def __repr__(self):
        return f"SimulatedCluster({self.site_count} sites)"
