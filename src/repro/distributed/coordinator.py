"""The Skalla coordinator: base-result structure and synchronization.

The coordinator maintains the base-result structure X — the global
relation whose schema grows by the finalized aggregate columns of each
round — indexed on the key attributes K so that each incoming sub-result
tuple synchronizes in O(1) (Section 3.2). Synchronization is Theorem 1:
the multiset union of site sub-results H is folded into X with
super-aggregates keyed by θ_K.

For Proposition 2 rounds (no separate base synchronization) the
coordinator *assembles* X from the shipped Hᵢ themselves:
``X = MD(π_B(H), H, l'', θ_K)`` with π_B deduplicated.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import PlanError
from repro.gmdj import operator
from repro.gmdj.blocks import MDBlock
from repro.obs.tracer import NULL_TRACER
from repro.relalg import compiler
from repro.relalg.expressions import BASE_VAR, Expr
from repro.relalg.relation import Relation


class Coordinator:
    """Holds and synchronizes the global base-result structure X.

    ``tracer`` records a ``round.merge`` span around every Theorem-1
    merge / base synchronization; the default no-op tracer keeps the
    untraced path free.
    """

    def __init__(self, key_attrs: Sequence[str], tracer=NULL_TRACER):
        self.key_attrs = tuple(key_attrs)
        self.tracer = tracer
        self._x: Optional[Relation] = None

    # -- state --------------------------------------------------------------------

    @property
    def x(self) -> Relation:
        if self._x is None:
            raise PlanError("base-result structure not initialized yet")
        return self._x

    @property
    def has_base(self) -> bool:
        return self._x is not None

    # -- base-values synchronization -------------------------------------------------

    def set_base(self, relation: Relation) -> None:
        """Install a literal base-values relation."""
        self._x = relation

    def sync_base(self, fragments: Sequence[Relation]) -> Relation:
        """Union the sites' base-query results into B₀ (deduplicated)."""
        if not fragments:
            raise PlanError("no base fragments to synchronize")
        with self.tracer.span(
            "round.merge", kind="coordinator", phase="base", fragments=len(fragments)
        ) as span:
            combined = fragments[0]
            for fragment in fragments[1:]:
                combined = combined.union_all(fragment)
            self._x = combined.distinct()
            span.set(rows=len(self._x))
        return self._x

    # -- round synchronization ----------------------------------------------------

    def fragment_for_site(self, ship_filter: Optional[Expr]) -> Relation:
        """The X fragment shipped to one site, after aware group reduction.

        ``ship_filter`` is the optimizer's ¬ψᵢ over base fields (relvar
        ``"b"``), or ``None`` to ship all of X.
        """
        x = self.x
        if ship_filter is None:
            return x
        predicate = compiler.compile_predicate(
            ship_filter, {BASE_VAR: x.schema}, (BASE_VAR,)
        )
        return x.select_fn(predicate)

    def begin_sync(self, blocks: Sequence[MDBlock]) -> operator.SyncSession:
        """Open an incremental synchronization round against current X.

        Fragments (whole site sub-results, or row blocks of them) are
        absorbed as they arrive — Section 3.2's streaming merge — and the
        caller commits the finalized structure with :meth:`commit_sync`.
        """
        return operator.SyncSession(self.x, self.key_attrs, blocks)

    def commit_sync(
        self, session: operator.SyncSession, excluded: Sequence[str] = ()
    ) -> Relation:
        """Finalize a sync round.

        ``excluded`` names the sites degrade mode dropped from the round
        (their accumulator banks were already reset by the recovery
        layer); it is recorded on the merge span so traces show which
        merges are under-approximations.
        """
        with self.tracer.span(
            "round.merge", kind="coordinator", phase="commit"
        ) as span:
            self._x = session.finish()
            span.set(rows=len(self._x))
            if excluded:
                span.set(excluded=",".join(sorted(excluded)))
        return self._x

    def synchronize(self, sub_results: Sequence[Relation], blocks: Sequence[MDBlock]) -> Relation:
        """Theorem 1: fold the sites' Hᵢ into X with super-aggregates."""
        if not sub_results:
            raise PlanError("no sub-results to synchronize")
        session = self.begin_sync(blocks)
        for fragment in sub_results:
            session.absorb(fragment)
        return self.commit_sync(session)

    def assemble_from_chain(
        self,
        sub_results: Sequence[Relation],
        blocks: Sequence[MDBlock],
    ) -> Relation:
        """Proposition 2: build X directly from merged-base sub-results.

        The shipped Hᵢ carry the key attributes (here: the full base
        schema, since merged bases are distinct projections), so
        ``π_B(H)`` deduplicated *is* the base-values relation.
        """
        if not sub_results:
            raise PlanError("no sub-results to assemble")
        with self.tracer.span(
            "round.merge",
            kind="coordinator",
            phase="assemble",
            fragments=len(sub_results),
        ) as span:
            h = sub_results[0]
            for fragment in sub_results[1:]:
                h = h.union_all(fragment)
            base = h.distinct_project(self.key_attrs)
            self._x = operator.super_aggregate(base, h, self.key_attrs, blocks)
            span.set(rows=len(self._x))
        return self._x
