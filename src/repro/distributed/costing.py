"""Plan cost estimation for Egil.

The paper derives traffic analytically in Section 5.2 (the
``(2c + 2n + 1)/(4n + 1)`` formula) from three quantities: the number of
groups |Q|, the number of participating sites n, and the per-site update
fraction c. This module turns that analysis into a reusable estimator:
given per-table statistics (row counts and attribute cardinalities,
registered in a :class:`TableStatistics` store), it predicts the tuples
shipped per round for any plan the optimizer emits — before running it.

Estimation model (tuples; bytes follow with a per-row size estimate):

- base round: every site ships its local distinct groups; with a
  partition attribute among the keys the pieces are disjoint (sum = |Q|),
  otherwise each site may hold up to min(|Q|, rows/site) of them;
- MD round down-leg: per site, |X| without aware reduction, |X|·(site
  selectivity) with it;
- MD round up-leg: per site, the shipped fragment size without
  independent reduction, fragment·c with it, where c is the estimated
  fraction of received groups the site updates (1/n for grouping on a
  partition attribute, 1 - (1 - 1/n)^(rows/|Q|) for uncorrelated
  placement — the standard balls-into-bins occupancy estimate);
- merged-base (Proposition 2) rounds ship nothing down and the local
  group count up.

Accuracy is validated in tests against measured traffic on TPC-R
(within a factor well under 2 for the workloads of Section 5). The
estimator deliberately shares no code with the execution-time counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.distributed.plan import Plan
from repro.errors import CatalogError
from repro.gmdj.expression import DistinctBase, LiteralBase
from repro.net.costmodel import CostModel, WAN


@dataclass
class TableStatistics:
    """Statistics for one conceptual table."""

    row_count: int
    #: attribute -> number of distinct values (cardinality)
    cardinalities: dict = field(default_factory=dict)

    def cardinality(self, attribute: str) -> Optional[int]:
        return self.cardinalities.get(attribute)


class StatisticsStore:
    """Per-table statistics, gathered or registered by the operator."""

    def __init__(self):
        self._tables: dict = {}

    def register(self, table_name: str, statistics: TableStatistics) -> None:
        self._tables[table_name] = statistics

    def register_from_relation(self, table_name: str, relation) -> None:
        """Scan a relation once and record exact statistics."""
        cardinalities = {
            name: len(set(relation.column(name))) for name in relation.schema.names
        }
        self.register(table_name, TableStatistics(len(relation), cardinalities))

    @classmethod
    def from_cluster(cls, cluster) -> "StatisticsStore":
        """Scan every conceptual table of a cluster into a fresh store.

        Convenient for tests and interactive use; a production deployment
        would maintain these statistics at load time instead of scanning.
        """
        store = cls()
        for table_name, relation in cluster.conceptual_tables().items():
            store.register_from_relation(table_name, relation)
        return store

    def get(self, table_name: str) -> TableStatistics:
        try:
            return self._tables[table_name]
        except KeyError:
            raise CatalogError(
                f"no statistics registered for table {table_name!r}"
            ) from None

    def has(self, table_name: str) -> bool:
        return table_name in self._tables


@dataclass(frozen=True)
class RoundEstimate:
    tuples_down: float
    tuples_up: float

    @property
    def tuples_total(self) -> float:
        return self.tuples_down + self.tuples_up


@dataclass(frozen=True)
class PlanEstimate:
    """Predicted traffic for a whole plan."""

    group_count: float
    base_tuples: float
    rounds: tuple  # RoundEstimate per MD round

    @property
    def tuples_total(self) -> float:
        return self.base_tuples + sum(
            round_estimate.tuples_total for round_estimate in self.rounds
        )

    def bytes_total(self, bytes_per_tuple: float = 20.0) -> float:
        """Rough byte prediction from a per-row wire-size estimate."""
        return self.tuples_total * bytes_per_tuple


def estimate_group_count(plan: Plan, statistics: StatisticsStore) -> float:
    """Estimate |Q|: the size of the base-values relation."""
    source = plan.expression.base_source
    if isinstance(source, LiteralBase):
        return float(len(source.relation))
    if isinstance(source, DistinctBase):
        table_statistics = statistics.get(source.table)
        estimate = 1.0
        for attribute in source.attrs:
            cardinality = table_statistics.cardinality(attribute)
            if cardinality is None:
                # Unknown: assume the attribute does not multiply groups.
                continue
            estimate *= cardinality
        # Never more groups than rows.
        return float(min(estimate, table_statistics.row_count))
    raise CatalogError(f"cannot estimate groups for base source {source!r}")


def _update_fraction(
    group_count: float,
    rows_per_site: float,
    partitioned_on_key: bool,
    site_count: int,
) -> float:
    """The paper's c: fraction of received groups a site updates."""
    if group_count <= 0:
        return 0.0
    if partitioned_on_key:
        return min(1.0, 1.0 / site_count) if site_count else 0.0
    # Occupancy: probability a given group has >= 1 of the site's rows,
    # assuming uniform placement of rows over groups.
    return 1.0 - math.exp(-rows_per_site / group_count)


def estimate_plan(
    plan: Plan,
    statistics: StatisticsStore,
    catalog=None,
) -> PlanEstimate:
    """Predict the tuple traffic of a plan.

    ``catalog`` (a :class:`~repro.warehouse.catalog.DistributionCatalog`)
    improves the estimate when available: partition attributes among the
    grouping keys imply disjoint per-site groups (c = 1/n) and a
    disjoint base round.
    """
    group_count = estimate_group_count(plan, statistics)
    key_attrs = set(plan.expression.key)

    # Base round.
    if plan.base.merged_into_chain or not plan.base.is_distributed:
        base_tuples = 0.0
    else:
        source = plan.expression.base_source
        table_statistics = statistics.get(source.table)
        site_count = len(plan.base.sites)
        rows_per_site = table_statistics.row_count / max(1, site_count)
        partitioned = _keys_cover_partition_attribute(
            catalog, source.table, key_attrs
        )
        if partitioned:
            base_tuples = group_count  # disjoint pieces sum to |Q|
        else:
            per_site = min(group_count, rows_per_site)
            # Each site holds ~occupancy * |Q| distinct groups.
            occupancy = _update_fraction(group_count, rows_per_site, False, site_count)
            base_tuples = min(site_count * group_count * occupancy, site_count * per_site)

    round_estimates = []
    for md_round in plan.rounds:
        detail = md_round.steps[0].detail
        table_statistics = statistics.get(detail)
        site_count = len(md_round.sites)
        rows_per_site = table_statistics.row_count / max(1, site_count)
        partitioned = _keys_cover_partition_attribute(catalog, detail, key_attrs)
        c = _update_fraction(group_count, rows_per_site, partitioned, site_count)

        if md_round.merged_base:
            down = 0.0
            up = (
                group_count
                if partitioned
                else min(site_count * group_count * c, site_count * group_count)
            )
        else:
            per_site_down = group_count
            if any(
                md_round.ship_filters.get(site) is not None for site in md_round.sites
            ):
                # Aware reduction: each site receives only its own share.
                per_site_down = group_count * max(c, 1.0 / max(1, site_count))
            down = site_count * per_site_down
            per_site_up = per_site_down
            if md_round.independent_reduction:
                per_site_up = per_site_down * c
            up = site_count * per_site_up
        round_estimates.append(RoundEstimate(down, up))

    return PlanEstimate(group_count, base_tuples, tuple(round_estimates))


def _keys_cover_partition_attribute(catalog, table_name, key_attrs) -> bool:
    if catalog is None or not catalog.is_registered(table_name):
        return False
    return any(
        attribute in key_attrs
        for attribute in catalog.partition_attributes(table_name)
    )


def compare_plans(
    plans: Mapping[str, Plan], statistics: StatisticsStore, catalog=None
) -> list:
    """Rank candidate plans by estimated tuple traffic (ascending)."""
    ranked = [
        (name, estimate_plan(plan, statistics, catalog)) for name, plan in plans.items()
    ]
    ranked.sort(key=lambda pair: pair[1].tuples_total)
    return ranked


# ---------------------------------------------------------------------------
# Per-topology response-time and root-link estimates
# ---------------------------------------------------------------------------

#: Per-row wire-size estimate shared with :meth:`PlanEstimate.bytes_total`.
DEFAULT_BYTES_PER_TUPLE = 20.0


@dataclass(frozen=True)
class TopologyEstimate:
    """Predicted cost of running one plan under one merge topology.

    ``label`` is the execution-facing name (``"flat"``,
    ``"hierarchical:R"``, ``"chain:F"``); ``response_time_s`` is the
    modeled sum-over-rounds critical path under a contended-root-link
    model (the coordinator/root serializes its link traffic; subtrees
    work in parallel); ``root_link_bytes`` is the traffic crossing the
    link into the root — the scarce resource hierarchical merging exists
    to protect (Section 6's multi-tier motivation).
    """

    label: str
    kind: str  # "flat" | "hierarchical" | "chain"
    parameter: int = 0  # region count or fanout; 0 for flat
    response_time_s: float = 0.0
    root_link_bytes: float = 0.0

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "parameter": self.parameter,
            "response_time_s": self.response_time_s,
            "root_link_bytes": self.root_link_bytes,
        }


def _per_round_volumes(plan: Plan, estimate: PlanEstimate):
    """(site_count, per_site_down, per_site_up, cap) tuples per round.

    ``cap`` is |Q| — the most any *merged* stream can carry, since
    combiners merge sub-results by key before forwarding (every grouping
    key appears at most once per merged shipment).
    """
    cap = max(1.0, estimate.group_count)
    volumes = []
    if not plan.base.merged_into_chain and plan.base.is_distributed:
        site_count = max(1, len(plan.base.sites))
        volumes.append((site_count, 0.0, estimate.base_tuples / site_count, cap))
    for md_round, round_estimate in zip(plan.rounds, estimate.rounds):
        site_count = max(1, len(md_round.sites))
        volumes.append(
            (
                site_count,
                round_estimate.tuples_down / site_count,
                round_estimate.tuples_up / site_count,
                cap,
            )
        )
    return volumes


def estimate_topology_costs(
    plan: Plan,
    statistics: StatisticsStore,
    catalog=None,
    model: CostModel = WAN,
    region_counts=(2, 4),
    fanouts=(2, 3),
    bytes_per_tuple: float = DEFAULT_BYTES_PER_TUPLE,
) -> tuple:
    """Price the plan under every candidate merge topology.

    Reuses :func:`estimate_plan` for the per-round tuple volumes, then
    composes them per topology the same way the measured
    ``SpanningRoundStats.response_time_s`` / ``TreeRoundStats`` math
    composes measured bytes:

    - *flat*: one round trip; the coordinator link serializes every
      site's down and up stream;
    - *hierarchical* (r regions, k = ceil(n/r) sites each): the root
      serializes r region streams — each capped at |Q| because regional
      combiners merge by key — then regions fan out to their k sites in
      parallel with each other;
    - *chain* (fanout f): one hop per tree level; each level's node
      serializes f child streams, again capped at |Q| once merged.

    Returns :class:`TopologyEstimate` per candidate, flat first. Only
    topologies that change the shape are emitted (a 1-region hierarchy
    or a chain no deeper than two levels degenerates to flat).
    """
    estimate = estimate_plan(plan, statistics, catalog)
    volumes = _per_round_volumes(plan, estimate)
    site_count = max((n for n, _d, _u, _c in volumes), default=1)

    def flat_cost():
        time_s = 0.0
        root_bytes = 0.0
        for n, down, up, _cap in volumes:
            round_bytes = n * (down + up) * bytes_per_tuple
            time_s += 2 * model.latency_s + round_bytes / model.bandwidth_bytes_per_s
            root_bytes += round_bytes
        return time_s, root_bytes

    def hierarchical_cost(region_count):
        time_s = 0.0
        root_bytes = 0.0
        for n, down, up, cap in volumes:
            regions = min(region_count, n)
            per_region_sites = math.ceil(n / regions)
            region_down = min(per_region_sites * down, cap if down else 0.0)
            region_up = min(per_region_sites * up, cap if up else 0.0)
            root_round = regions * (region_down + region_up) * bytes_per_tuple
            fan_round = per_region_sites * (down + up) * bytes_per_tuple
            time_s += (
                2 * model.latency_s
                + root_round / model.bandwidth_bytes_per_s
                + 2 * model.latency_s
                + fan_round / model.bandwidth_bytes_per_s
            )
            root_bytes += root_round
        return time_s, root_bytes

    def chain_cost(fanout):
        time_s = 0.0
        root_bytes = 0.0
        for n, down, up, cap in volumes:
            depth = max(1, math.ceil(math.log(max(n, 2), fanout)))
            subtree = float(n)
            for level in range(depth):
                edge_down = min(subtree / fanout * down, cap if down else 0.0)
                edge_up = min(subtree / fanout * up, cap if up else 0.0)
                level_bytes = fanout * (edge_down + edge_up) * bytes_per_tuple
                time_s += (
                    2 * model.latency_s
                    + level_bytes / model.bandwidth_bytes_per_s
                )
                if level == 0:
                    root_bytes += level_bytes
                subtree /= fanout
        return time_s, root_bytes

    flat_time, flat_bytes = flat_cost()
    candidates = [
        TopologyEstimate("flat", "flat", 0, flat_time, flat_bytes)
    ]
    for region_count in region_counts:
        if not 1 < region_count < site_count:
            continue
        time_s, root_bytes = hierarchical_cost(region_count)
        candidates.append(
            TopologyEstimate(
                f"hierarchical:{region_count}", "hierarchical",
                region_count, time_s, root_bytes,
            )
        )
    for fanout in fanouts:
        if fanout < 2 or site_count <= fanout:
            continue
        time_s, root_bytes = chain_cost(fanout)
        candidates.append(
            TopologyEstimate(f"chain:{fanout}", "chain", fanout, time_s, root_bytes)
        )
    return tuple(candidates)


# ---------------------------------------------------------------------------
# Per-optimization impact (EXPLAIN ANALYZE annotations)
# ---------------------------------------------------------------------------

#: Which :class:`~repro.distributed.optimizer.OptimizationOptions` fields
#: to switch off to ablate each optimization a plan reports via
#: :meth:`~repro.distributed.plan.Plan.applied_optimizations`. Proposition
#: 2 (merged base) has no toggle of its own — it is a consequence of
#: synchronization reduction.
OPTIMIZATION_TOGGLES: Mapping[str, tuple] = {
    "coalescing": ("coalescing",),
    "sync_reduction": ("sync_reduction",),
    "merged_base": ("sync_reduction",),
    "aware_group_reduction": ("aware_group_reduction",),
    "independent_group_reduction": ("independent_group_reduction",),
}


@dataclass(frozen=True)
class OptimizationImpact:
    """One applied optimization, priced by ablation.

    ``estimated_without_tuples`` is the predicted traffic of the plan
    re-planned with this optimization switched off;
    ``estimated_with_tuples`` prices the plan as actually optimized.
    ``measured_tuples`` is the optimized run's *observed* traffic when
    the impact annotates a finished execution (None for pure EXPLAIN).
    """

    name: str
    description: str
    estimated_with_tuples: float
    estimated_without_tuples: float
    measured_tuples: Optional[float] = None

    @property
    def estimated_saving_tuples(self) -> float:
        return self.estimated_without_tuples - self.estimated_with_tuples

    @property
    def measured_saving_tuples(self) -> Optional[float]:
        """Observed traffic vs the unoptimized *estimate* (None untraced)."""
        if self.measured_tuples is None:
            return None
        return self.estimated_without_tuples - self.measured_tuples

    @property
    def saving_fraction(self) -> float:
        """Fraction of the unoptimized estimate saved (measured if known)."""
        if self.estimated_without_tuples <= 0:
            return 0.0
        optimized = (
            self.measured_tuples
            if self.measured_tuples is not None
            else self.estimated_with_tuples
        )
        return max(0.0, 1.0 - optimized / self.estimated_without_tuples)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "estimated_with_tuples": self.estimated_with_tuples,
            "estimated_without_tuples": self.estimated_without_tuples,
            "measured_tuples": self.measured_tuples,
            "estimated_saving_tuples": self.estimated_saving_tuples,
            "measured_saving_tuples": self.measured_saving_tuples,
            "saving_fraction": self.saving_fraction,
        }


def estimate_optimization_impacts(
    expression,
    catalog,
    statistics: StatisticsStore,
    options=None,
    measured_stats=None,
    plan: Optional[Plan] = None,
) -> tuple:
    """Price every optimization the planner applied, by single ablation.

    For each ``(name, description)`` in ``plan.applied_optimizations()``
    the expression is re-planned with that optimization's toggles off and
    both variants priced with :func:`estimate_plan`; the measured traffic
    of the optimized run (``measured_stats.tuples_total``) annotates each
    impact when given. Returns :class:`OptimizationImpact` per applied
    optimization, in plan order.
    """
    from repro.distributed.optimizer import OptimizationOptions, plan_query

    if options is None:
        options = OptimizationOptions.all()
    if plan is None:
        plan = plan_query(expression, catalog, options)
    optimized_estimate = estimate_plan(plan, statistics, catalog).tuples_total
    measured = (
        float(measured_stats.tuples_total) if measured_stats is not None else None
    )
    impacts = []
    for name, description in plan.applied_optimizations():
        toggles = OPTIMIZATION_TOGGLES.get(name)
        if not toggles:
            continue
        ablated_options = replace(options, **{toggle: False for toggle in toggles})
        ablated_plan = plan_query(expression, catalog, ablated_options)
        ablated_estimate = estimate_plan(ablated_plan, statistics, catalog).tuples_total
        impacts.append(
            OptimizationImpact(
                name=name,
                description=description,
                estimated_with_tuples=optimized_estimate,
                estimated_without_tuples=ablated_estimate,
                measured_tuples=measured,
            )
        )
    return tuple(impacts)


# ---------------------------------------------------------------------------
# Column-block codec saving estimate
# ---------------------------------------------------------------------------

#: Expected fraction of row-codec bytes *saved* per attribute type when a
#: relation is shipped with the column-block codec instead of the per-value
#: row codec. Calibrated against the codec microbenchmark on mixed OLAP
#: schemas (delta varints compress monotone-ish integer keys well, the
#: string dictionary pays off on low-cardinality dimension labels, packed
#: doubles only drop the per-value tag byte).
COLUMN_CODEC_TYPE_SAVINGS: Mapping[str, float] = {
    "int": 0.55,
    "date": 0.55,
    "float": 0.10,
    "str": 0.60,
    "bool": 0.85,
}


def estimate_column_codec_saving(schema) -> float:
    """Predicted fractional byte saving of the column codec for ``schema``.

    Returns the expected ``saved_bytes / row_codec_bytes`` fraction in
    ``[0, 1)``, as the unweighted mean of per-attribute type savings (the
    row codec spends roughly comparable bytes per attribute, so the
    unweighted mean is a serviceable first-order model). Empty schemas
    (pure header traffic) save nothing.

    The execution path never uses this number: measured savings in
    :class:`repro.distributed.stats.ExecutionStats` come from actually
    row-encoding every shipped block. This estimate exists so that
    ``repro explain --analyze`` can show predicted-vs-measured codec
    savings side by side, the same honesty contract as the traffic
    estimator above.
    """
    attributes = tuple(schema)
    if not attributes:
        return 0.0
    total = 0.0
    for attribute in attributes:
        total += COLUMN_CODEC_TYPE_SAVINGS.get(attribute.type, 0.10)
    return total / len(attributes)
