"""Process-separated cluster deployment: launching and talking to site servers.

:class:`ProcessCluster` is the deployed counterpart of
:class:`~repro.distributed.cluster.SimulatedCluster`: same evaluator-facing
surface (``site_ids``, ``catalog``, ``network``, ``fresh_network``,
``data_versions``, ``conceptual_tables`` …), but the partitions live in
``repro site-server`` OS processes reached over
:class:`~repro.net.socket_channel.SocketNetwork` channels, and local
site objects do not exist — indexing ``cluster.sites[...]`` raises, by
design, because nothing on the coordinator should ever touch partition
data directly in this mode.

``deploy`` writes a ``deployment.json`` next to the partition store so a
later ``repro cluster down`` (or a ``--cluster-dir`` attach) can find
the ports and pids without talking to the launcher process.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from typing import Optional, Sequence

import repro
from repro.distributed.siteserver import (
    load_catalog,
    load_site_relation,
    read_cluster_spec,
    read_manifest,
    request_shutdown,
    write_partition_store,
)
from repro.errors import DeploymentError, PlanError, ReproError, WarehouseError
from repro.net.socket_channel import SocketNetwork
from repro.obs.flightrec import FlightRecord, FlightRecorder, flight_path
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.relalg.operators import union_all

DEPLOYMENT_SPEC = "deployment.json"

_READY_TIMEOUT_S = 30.0


class _RemoteSites:
    """Site-count-only stand-in for the evaluator's ``cluster.sites``.

    Engines size their pools from ``len(sites)``; anything that tries to
    *evaluate against* a site object locally gets a targeted error
    instead of an AttributeError three frames deeper.
    """

    def __init__(self, site_ids: Sequence[str]):
        self._site_ids = tuple(site_ids)

    def __len__(self) -> int:
        return len(self._site_ids)

    def __iter__(self):
        return iter(self._site_ids)

    def __contains__(self, site_id) -> bool:
        return site_id in self._site_ids

    def __getitem__(self, site_id):
        raise PlanError(
            f"site {site_id!r} runs in a separate process; its data is only "
            "reachable over the socket transport (--executor sockets)"
        )


def _site_log_path(root: str, site_id: str) -> str:
    return os.path.join(root, "logs", f"{site_id}.log")


def launch_site_server(
    root: str,
    site_id: str,
    host: str = "127.0.0.1",
    python: Optional[str] = None,
) -> tuple:
    """Start one ``repro site-server`` process; returns ``(process, port)``.

    The server picks an ephemeral port (``--port 0``) and announces it
    with a ``READY site=... port=...`` line on stdout, which is
    redirected to ``<root>/logs/<site>.log`` and polled here — log-file
    (not pipe) redirection keeps the child detachable and its later
    output from blocking on a full pipe.
    """
    os.makedirs(os.path.join(root, "logs"), exist_ok=True)
    log_path = _site_log_path(root, site_id)
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        python or sys.executable,
        "-m",
        "repro",
        "site-server",
        "--store",
        root,
        "--site",
        site_id,
        "--host",
        host,
        "--port",
        "0",
    ]
    log_handle = open(log_path, "wb")
    try:
        process = subprocess.Popen(
            command,
            stdout=log_handle,
            stderr=subprocess.STDOUT,
            env=env,
            start_new_session=True,
        )
    finally:
        log_handle.close()
    port = _await_ready(process, log_path, site_id)
    return process, port


def _await_ready(process, log_path: str, site_id: str) -> int:
    deadline = time.monotonic() + _READY_TIMEOUT_S
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise DeploymentError(
                f"site server {site_id!r} exited with code "
                f"{process.returncode} before READY; see {log_path}:\n"
                + _tail(log_path)
            )
        try:
            with open(log_path, "r", encoding="utf-8", errors="replace") as handle:
                for line in handle:
                    if line.startswith("READY ") and f"site={site_id}" in line:
                        for token in line.split():
                            if token.startswith("port="):
                                return int(token[5:])
        except OSError:
            pass
        time.sleep(0.05)
    raise DeploymentError(
        f"site server {site_id!r} did not report READY within "
        f"{_READY_TIMEOUT_S:.0f}s; see {log_path}:\n" + _tail(log_path)
    )


def _tail(log_path: str, lines: int = 20) -> str:
    try:
        with open(log_path, "r", encoding="utf-8", errors="replace") as handle:
            return "".join(handle.readlines()[-lines:])
    except OSError:
        return "(no log)"


class ProcessCluster:
    """A running deployment: site-server processes plus a socket network."""

    def __init__(
        self,
        root: str,
        host: str,
        ports: dict,
        processes: Optional[dict] = None,
        owns_processes: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        ephemeral: bool = False,
    ):
        self.root = root
        self.host = host
        spec = read_cluster_spec(root)
        self.site_ids = tuple(spec["site_ids"])
        missing = [site_id for site_id in self.site_ids if site_id not in ports]
        if missing:
            raise DeploymentError(f"no port known for site(s) {missing}")
        self._ports = dict(ports)
        self._processes = dict(processes or {})
        self._owns_processes = owns_processes
        self._ephemeral = ephemeral
        self._closed = False
        self.sites = _RemoteSites(self.site_ids)
        self.catalog = load_catalog(root)
        self.fault_plan = None
        self.network = SocketNetwork(self._endpoints(), metrics=metrics)
        #: Evaluator-installed per-run tracer (unused locally — remote
        #: sites trace into their replies — but the evaluator sets it).
        self.tracer = NULL_TRACER
        #: Coordinator-side flight recorder: deployment lifecycle events
        #: plus recent query spans (the evaluator feeds it), dumped by
        #: ``repro cluster dump`` or a SIGTERM handler.
        self.flight = FlightRecorder(process="coordinator")
        self.flight.record_event(
            "attach" if not owns_processes else "deploy",
            root=root,
            sites=list(self.site_ids),
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def deploy(
        cls,
        root: str,
        host: str = "127.0.0.1",
        metrics: Optional[MetricsRegistry] = None,
        ephemeral: bool = False,
    ) -> "ProcessCluster":
        """Launch one site server per store site and record the spec."""
        spec = read_cluster_spec(root)
        processes: dict = {}
        ports: dict = {}
        try:
            for site_id in spec["site_ids"]:
                process, port = launch_site_server(root, site_id, host)
                processes[site_id] = process
                ports[site_id] = port
        except BaseException:
            for process in processes.values():
                _terminate(process)
            raise
        cluster = cls(
            root,
            host,
            ports,
            processes,
            owns_processes=True,
            metrics=metrics,
            ephemeral=ephemeral,
        )
        cluster._write_spec()
        return cluster

    @classmethod
    def from_simulated(
        cls,
        simulated,
        root: str,
        host: str = "127.0.0.1",
        metrics: Optional[MetricsRegistry] = None,
        ephemeral: bool = False,
    ) -> "ProcessCluster":
        """Persist a loaded simulated cluster's placement, then deploy it."""
        write_partition_store(simulated, root)
        cluster = cls.deploy(root, host, metrics=metrics, ephemeral=ephemeral)
        if simulated.fault_plan is not None:
            cluster.install_faults(simulated.fault_plan)
        return cluster

    @classmethod
    def attach(
        cls, root: str, metrics: Optional[MetricsRegistry] = None
    ) -> "ProcessCluster":
        """Connect to an already-running deployment (``repro cluster up``).

        The attached cluster does not own the site processes: ``close``
        only drops connections, leaving the deployment running for the
        next attach. ``repro cluster down`` stops it.
        """
        spec_path = os.path.join(root, DEPLOYMENT_SPEC)
        try:
            with open(spec_path, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise DeploymentError(
                f"no running deployment at {root!r} ({error}); "
                "start one with: repro cluster up --dir " + root
            ) from None
        ports = {
            site_id: entry["port"] for site_id, entry in spec["sites"].items()
        }
        return cls(
            root,
            spec.get("host", "127.0.0.1"),
            ports,
            owns_processes=False,
            metrics=metrics,
        )

    def _endpoints(self) -> dict:
        return {
            site_id: (self.host, self._ports[site_id])
            for site_id in self.site_ids
        }

    def _write_spec(self) -> None:
        spec = {
            "version": 1,
            "host": self.host,
            "root": self.root,
            "sites": {
                site_id: {
                    "port": self._ports[site_id],
                    "pid": (
                        self._processes[site_id].pid
                        if site_id in self._processes
                        else None
                    ),
                }
                for site_id in self.site_ids
            },
        }
        with open(
            os.path.join(self.root, DEPLOYMENT_SPEC), "w", encoding="utf-8"
        ) as handle:
            json.dump(spec, handle, indent=2)

    # -- SimulatedCluster-compatible surface --------------------------------------

    @property
    def site_count(self) -> int:
        return len(self.site_ids)

    def site(self, site_id: str):
        if site_id not in self.site_ids:
            raise WarehouseError(f"unknown site {site_id!r}")
        return self.sites[site_id]  # raises the targeted PlanError

    def conceptual_table(self, table_name: str):
        """The conceptual relation, decoded from the on-disk partitions."""
        pieces = []
        for site_id in self.site_ids:
            manifest = read_manifest(self.root, site_id)
            entry = manifest.get("tables", {}).get(table_name)
            if entry is not None:
                pieces.append(load_site_relation(self.root, site_id, entry))
        if not pieces:
            raise WarehouseError(f"no site holds table {table_name!r}")
        if self.catalog.is_registered(table_name) and self.catalog.is_replicated(
            table_name
        ):
            return pieces[0]
        return union_all(pieces)

    def conceptual_tables(self) -> dict:
        names = set()
        for site_id in self.site_ids:
            names.update(read_manifest(self.root, site_id).get("tables", {}))
        return {name: self.conceptual_table(name) for name in sorted(names)}

    def data_versions(self, table_names: Sequence[str]) -> tuple:
        """Versions from the on-disk manifests (the served data is
        immutable while deployed, so the store is authoritative)."""
        manifests = {
            site_id: read_manifest(self.root, site_id).get("tables", {})
            for site_id in self.site_ids
        }
        return tuple(
            (
                table_name,
                site_id,
                manifests[site_id].get(table_name, {}).get("version", 0),
            )
            for table_name in sorted(set(table_names))
            for site_id in self.site_ids
        )

    def fresh_network(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> SocketNetwork:
        return SocketNetwork(
            self._endpoints(), metrics=metrics, faults=self.fault_plan
        )

    def reset_network(
        self, metrics: Optional[MetricsRegistry] = None, faults=None
    ) -> None:
        if faults is not None:
            self.fault_plan = faults
        old, self.network = self.network, self.fresh_network(metrics)
        old.close()

    def install_faults(self, plan) -> None:
        self.fault_plan = plan
        self.reset_network()

    # -- telemetry ---------------------------------------------------------------

    def scrape(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Pull every site process's registry over the TELEMETRY frame.

        Each site's metrics land in the target registry re-labeled with
        ``site=<id>``, plus a ``site.up`` gauge per site (1 answered,
        0 unreachable) — the same shape the Prometheus exposition and
        ``repro top --cluster`` consume. Returns the target registry
        (a fresh one when none is given).
        """
        target = registry if registry is not None else MetricsRegistry()
        for site_id in self.site_ids:
            channel = self.network._channels[site_id]
            try:
                snapshot = channel.telemetry(("metrics",))
            except (ReproError, OSError):
                target.gauge("site.up", site=site_id).set(0.0)
                continue
            target.gauge("site.up", site=site_id).set(1.0)
            target.gauge("site.pid", site=site_id).set(
                float(snapshot.get("pid", 0))
            )
            target.merge_snapshot(snapshot.get("metrics", {}), site=site_id)
        return target

    def liveness(self) -> dict:
        """``site_id -> bool`` by a PING round trip per site."""
        status = {}
        for site_id in self.site_ids:
            channel = self.network._channels[site_id]
            try:
                channel.ping(samples=1)
                status[site_id] = True
            except (ReproError, OSError):
                status[site_id] = False
        return status

    def dead_sites(self) -> list:
        return [
            site_id
            for site_id, alive in sorted(self.liveness().items())
            if not alive
        ]

    def sync_clocks(self, samples: int = 3):
        """Estimate per-site clock offsets (see :mod:`repro.obs.skew`)."""
        return self.network.sync_clocks(samples)

    def dump_flight(self, directory=None) -> list:
        """Write coordinator + per-site flight records; returns the paths.

        Live sites dump their ring on demand over the TELEMETRY frame;
        a dead (killed/crashed) site is covered by the per-request dump
        its process last wrote into the store, which is left untouched
        here — and reported, so the caller sees the post-mortem file.
        """
        directory = str(directory or self.root)
        os.makedirs(directory, exist_ok=True)
        self.flight.record_event("dump", root=self.root)
        written = [self.flight.dump(flight_path(directory, "coordinator"))]
        for site_id in self.site_ids:
            channel = self.network._channels[site_id]
            path = flight_path(directory, "site", site_id)
            try:
                snapshot = channel.telemetry(("flight",))
            except (ReproError, OSError):
                self.flight.record_event("dump.site.dead", site=site_id)
                if os.path.exists(path):
                    written.append(path)  # the killed site's last dump
                continue
            section = snapshot.get("flight")
            if not section:
                continue
            record = FlightRecord.from_snapshot(
                dict(section, site_id=site_id, process="site")
            )
            written.append(record.dump(path))
        return written

    # -- lifecycle ---------------------------------------------------------------

    def kill_site(self, site_id: str) -> None:
        """SIGKILL one site's server process (fault-injection for tests)."""
        process = self._processes.get(site_id)
        if process is None:
            raise DeploymentError(
                f"site {site_id!r} was not launched by this cluster"
            )
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        self.flight.record_event("kill", site=site_id)

    def restart_site(self, site_id: str) -> None:
        """Relaunch a site from its on-disk partition and re-point channels.

        The rejoin half of the recovery story: the new process serves
        exactly the partition the killed one held, on a fresh port that
        existing networks learn via their lazily-reconnecting channels.
        """
        if site_id not in self.site_ids:
            raise DeploymentError(f"unknown site {site_id!r}")
        old = self._processes.get(site_id)
        if old is not None and old.poll() is None:
            _terminate(old)
        process, port = launch_site_server(self.root, site_id, self.host)
        self._processes[site_id] = process
        self._ports[site_id] = port
        self._write_spec()
        # Channels reconnect lazily after a failure; give live networks
        # the new address so that reconnect finds the rejoined site.
        channel = self.network._channels.get(site_id)
        if channel is not None:
            channel.close()
            channel.address = (self.host, port)
        self.flight.record_event("restart", site=site_id, port=port)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.network.close()
        if self._owns_processes:
            for site_id in self.site_ids:
                request_shutdown(self.host, self._ports[site_id], timeout_s=2.0)
            for process in self._processes.values():
                _terminate(process)
            try:
                os.remove(os.path.join(self.root, DEPLOYMENT_SPEC))
            except OSError:
                pass
        if self._ephemeral:
            shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self):
        return (
            f"ProcessCluster({self.site_count} sites at {self.host}, "
            f"store {self.root!r})"
        )


def _terminate(process) -> None:
    if process.poll() is not None:
        return
    process.terminate()
    try:
        process.wait(timeout=5)
    except subprocess.TimeoutExpired:
        process.kill()
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:
            pass


def shutdown_deployment(root: str) -> int:
    """``repro cluster down``: stop every site of a recorded deployment.

    Returns the number of sites that acknowledged shutdown; any that did
    not get a SIGTERM by pid as fallback. The spec file is removed.
    """
    spec_path = os.path.join(root, DEPLOYMENT_SPEC)
    try:
        with open(spec_path, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise DeploymentError(
            f"no deployment spec at {spec_path!r}: {error}"
        ) from None
    host = spec.get("host", "127.0.0.1")
    stopped = 0
    for site_id, entry in spec.get("sites", {}).items():
        if request_shutdown(host, entry.get("port", 0), timeout_s=3.0):
            stopped += 1
            continue
        pid = entry.get("pid")
        if pid:
            try:
                os.kill(pid, signal.SIGTERM)
            except (OSError, ProcessLookupError):
                pass
    try:
        os.remove(spec_path)
    except OSError:
        pass
    return stopped
