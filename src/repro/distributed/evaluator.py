"""Alg. GMDJDistribEval: executing a plan on a simulated cluster.

This is the mediator of Fig. 1 in the paper. It drives the plan round by
round, moving every relation as encoded bytes over the per-site channels
(so traffic numbers are real wire sizes), timing site and coordinator
computation separately, and synchronizing via the coordinator.

Attribution rules for the measured times:

- a site is charged for decoding its incoming fragment, evaluating the
  GMDJ step(s), and encoding its sub-result;
- the coordinator is charged for producing/encoding the per-site
  fragments, decoding the sub-results, and the Theorem-1 merge;
- communication *time* is not measured (everything is in-process) — it
  is modeled from the measured bytes by the cost model in
  ``repro.distributed.stats``.

Tracing: pass a live :class:`~repro.obs.tracer.Tracer` to record the
span tree ``query → round → round.{encode,evaluate,decode,merge}``, and
a :class:`~repro.obs.metrics.MetricsRegistry` to capture the GMDJ
operator counters for the run. Both default to no-ops, so the untraced
hot path pays nothing beyond a handful of no-op calls per round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.coordinator import Coordinator
from repro.distributed.optimizer import OptimizationOptions, plan_query
from repro.distributed.plan import Plan
from repro.distributed.stats import ExecutionStats, check_theorem2
from repro.errors import PlanError
from repro.gmdj.expression import GMDJExpression, LiteralBase
from repro.net import message as msg
from repro.net.costmodel import CostModel, WAN
from repro.obs.metrics import MetricsRegistry, activate
from repro.obs.tracer import NULL_TRACER
from repro.relalg.relation import Relation


@dataclass(frozen=True)
class ExecutionConfig:
    """Runtime knobs of Alg. GMDJDistribEval.

    ``row_block_size`` enables *row blocking* (mentioned among the
    classical optimizations in Section 4): relations are shipped as a
    sequence of blocks of at most that many rows, each block its own
    message. More messages means more header bytes, but the coordinator
    synchronizes each arriving block immediately (Section 3.2's
    streaming merge), which in a real deployment overlaps transfer with
    merge work. ``0`` — the default and the *only* "unlimited" sentinel
    — ships each relation whole, one message per relation; ``None`` is
    rejected.
    """

    row_block_size: int = 0  # 0 = unlimited (one message per relation)

    def __post_init__(self):
        if self.row_block_size is None:
            raise PlanError(
                "row_block_size must be an int; use 0 (not None) to ship "
                "each relation whole"
            )
        if self.row_block_size < 0:
            raise PlanError(
                f"row_block_size must be >= 0, got {self.row_block_size}"
            )

    def blocks_of(self, relation: Relation):
        """Split a relation into shipping blocks per this config."""
        size = self.row_block_size
        if not size or len(relation) <= size:
            return [relation]
        return [
            Relation(relation.schema, relation.rows[start : start + size])
            for start in range(0, len(relation), size)
        ] or [relation]


@dataclass
class DistributedResult:
    """The answer relation plus everything measured while computing it."""

    relation: Relation
    stats: ExecutionStats
    plan: Plan

    def respects_theorem2(self) -> bool:
        """Check the Theorem 2 traffic bound against observed tuple counts."""
        base_sites, round_sites = self.plan.participating_site_counts()
        return check_theorem2(
            self.stats, len(self.relation), base_sites, round_sites
        )

    def response_time_s(self, model: CostModel = WAN) -> float:
        return self.stats.response_time_s(model)


def execute_plan(
    cluster: SimulatedCluster,
    plan: Plan,
    config: Optional[ExecutionConfig] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
) -> DistributedResult:
    """Run a plan over the cluster and return result + statistics.

    ``tracer`` (default: the shared no-op tracer) records the run's span
    tree; ``metrics`` (optional) becomes the active registry for the
    duration, so operator counters land next to the run's channel
    counters.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if metrics is not None:
        with activate(metrics):
            return _execute_plan_traced(cluster, plan, config, tracer)
    return _execute_plan_traced(cluster, plan, config, tracer)


def _execute_plan_traced(cluster, plan, config, tracer) -> DistributedResult:
    config = config or ExecutionConfig()
    stats = ExecutionStats()
    coordinator = Coordinator(plan.expression.key, tracer)
    previous_tracer = cluster.tracer
    cluster.tracer = tracer
    try:
        with tracer.span(
            "query", kind="query", rounds=len(plan.rounds), sites=cluster.site_count
        ):
            _evaluate_base(cluster, plan, coordinator, stats, tracer)
            for round_number, md_round in enumerate(plan.rounds, start=1):
                round_stats = stats.new_round(
                    "chain" if md_round.is_chain else "md",
                    f"steps={len(md_round.steps)} sites={len(md_round.sites)}",
                )
                with tracer.span(
                    "round",
                    kind="round",
                    index=round_stats.index,
                    round_kind=round_stats.kind,
                    sites=len(md_round.sites),
                ) as round_span:
                    _evaluate_round(
                        cluster,
                        plan,
                        coordinator,
                        config,
                        tracer,
                        md_round,
                        round_number,
                        round_stats,
                    )
                    round_span.set(
                        bytes_down=round_stats.bytes_down,
                        bytes_up=round_stats.bytes_up,
                        coordinator_compute_s=round_stats.coordinator_compute_s,
                    )
    finally:
        cluster.tracer = previous_tracer
    return DistributedResult(coordinator.x, stats, plan)


def _evaluate_round(
    cluster, plan, coordinator, config, tracer, md_round, round_number, round_stats
) -> None:
    """One MD/chain round: fan out, evaluate, stream sub-results back."""
    blocks = md_round.all_blocks()
    sub_results = []
    # Streaming synchronization (Section 3.2): for ordinary rounds the
    # coordinator absorbs each site's sub-result as it arrives instead
    # of assembling all of H first. Merged-base rounds must see all
    # fragments to discover the base, so they collect.
    session = None if md_round.merged_base else coordinator.begin_sync(blocks)

    for site_id in md_round.sites:
        channel = cluster.network.channel(site_id)
        site_stats = round_stats.site(site_id)

        if md_round.merged_base:
            # Proposition 2: no shipment down beyond the request header.
            request = msg.Message(
                msg.BASE_QUERY, "coordinator", site_id, round_number
            )
            channel.send_to_site(request)
            site_stats.bytes_down += request.size_bytes
            channel.receive_at_site()

            started = time.perf_counter()
            h_i = cluster.evaluate_merged_round_at(
                site_id, plan.base.source, md_round.steps, plan.expression.key
            )
            site_stats.compute_s += time.perf_counter() - started
        else:
            started = time.perf_counter()
            with tracer.span(
                "round.encode", kind="coordinator", site=site_id
            ) as encode_span:
                fragment = coordinator.fragment_for_site(
                    md_round.ship_filter(site_id)
                )
                down_blocks = [
                    msg.Message.with_relation(
                        msg.SHIP_BASE, "coordinator", site_id, round_number, block
                    )
                    for block in config.blocks_of(fragment)
                ]
                encode_span.set(
                    rows=len(fragment),
                    messages=len(down_blocks),
                    bytes=sum(shipment.size_bytes for shipment in down_blocks),
                )
            round_stats.coordinator_compute_s += time.perf_counter() - started
            for shipment in down_blocks:
                channel.send_to_site(shipment)
                site_stats.bytes_down += shipment.size_bytes
            site_stats.tuples_down += len(fragment)

            started = time.perf_counter()
            with tracer.span("round.decode", kind="site", site=site_id):
                base_fragment = channel.receive_at_site().relation()
                for _extra in down_blocks[1:]:
                    base_fragment = base_fragment.union_all(
                        channel.receive_at_site().relation()
                    )
            h_i = cluster.evaluate_round_at(
                site_id,
                base_fragment,
                md_round.steps,
                plan.expression.key,
                md_round.independent_reduction,
            )
            site_stats.compute_s += time.perf_counter() - started

        started = time.perf_counter()
        with tracer.span("round.encode", kind="site", site=site_id) as encode_span:
            up_blocks = [
                msg.Message.with_relation(
                    msg.SUB_RESULT, site_id, "coordinator", round_number, block
                )
                for block in config.blocks_of(h_i)
            ]
            encode_span.set(
                rows=len(h_i),
                messages=len(up_blocks),
                bytes=sum(reply.size_bytes for reply in up_blocks),
            )
        site_stats.compute_s += time.perf_counter() - started
        for reply in up_blocks:
            channel.send_to_coordinator(reply)
            site_stats.bytes_up += reply.size_bytes
        site_stats.tuples_up += len(h_i)

        started = time.perf_counter()
        with tracer.span("round.decode", kind="coordinator", site=site_id):
            collected = None
            for _reply in up_blocks:
                received_h = channel.receive_at_coordinator().relation()
                if session is None:
                    collected = (
                        received_h
                        if collected is None
                        else collected.union_all(received_h)
                    )
                else:
                    # Streaming merge: each block synchronizes on arrival.
                    session.absorb(received_h)
        if session is None:
            sub_results.append(collected)
        round_stats.coordinator_compute_s += time.perf_counter() - started

    started = time.perf_counter()
    if md_round.merged_base:
        coordinator.assemble_from_chain(sub_results, blocks)
    else:
        coordinator.commit_sync(session)
    round_stats.coordinator_compute_s += time.perf_counter() - started


def _evaluate_base(cluster, plan, coordinator, stats, tracer=NULL_TRACER) -> None:
    base = plan.base
    if base.merged_into_chain:
        return
    if not base.is_distributed:
        if not isinstance(base.source, LiteralBase):
            raise PlanError(
                f"non-distributed base must be literal, got {base.source!r}"
            )
        started = time.perf_counter()
        coordinator.set_base(base.source.relation)
        round_stats = stats.new_round("base", "literal base at coordinator")
        round_stats.coordinator_compute_s += time.perf_counter() - started
        return

    round_stats = stats.new_round("base", f"distributed over {len(base.sites)} sites")
    with tracer.span(
        "round", kind="round", index=round_stats.index, round_kind="base",
        sites=len(base.sites),
    ) as round_span:
        fragments = []
        for site_id in base.sites:
            channel = cluster.network.channel(site_id)
            site_stats = round_stats.site(site_id)

            request = msg.Message(msg.BASE_QUERY, "coordinator", site_id, 0)
            channel.send_to_site(request)
            site_stats.bytes_down += request.size_bytes
            channel.receive_at_site()

            started = time.perf_counter()
            b_i = cluster.compute_base_at(site_id, base.source)
            with tracer.span("round.encode", kind="site", site=site_id):
                reply = msg.Message.with_relation(
                    msg.BASE_RESULT, site_id, "coordinator", 0, b_i
                )
            site_stats.compute_s += time.perf_counter() - started
            channel.send_to_coordinator(reply)
            site_stats.bytes_up += reply.size_bytes
            site_stats.tuples_up += len(b_i)

            started = time.perf_counter()
            with tracer.span("round.decode", kind="coordinator", site=site_id):
                fragments.append(channel.receive_at_coordinator().relation())
            round_stats.coordinator_compute_s += time.perf_counter() - started

        started = time.perf_counter()
        coordinator.sync_base(fragments)
        round_stats.coordinator_compute_s += time.perf_counter() - started
        round_span.set(
            bytes_down=round_stats.bytes_down,
            bytes_up=round_stats.bytes_up,
            coordinator_compute_s=round_stats.coordinator_compute_s,
        )


def execute_query(
    cluster: SimulatedCluster,
    expression: GMDJExpression,
    options: Optional[OptimizationOptions] = None,
    config: Optional[ExecutionConfig] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
) -> DistributedResult:
    """Plan and execute a GMDJ expression in one call."""
    plan = plan_query(expression, cluster.catalog, options)
    return execute_plan(cluster, plan, config, tracer=tracer, metrics=metrics)
