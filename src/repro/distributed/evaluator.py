"""Alg. GMDJDistribEval: executing a plan on a simulated cluster.

This is the mediator of Fig. 1 in the paper. It drives the plan round by
round, moving every relation as encoded bytes over the per-site channels
(so traffic numbers are real wire sizes), timing site and coordinator
computation separately, and synchronizing via the coordinator.

Attribution rules for the measured times:

- a site is charged for decoding its incoming fragment, evaluating the
  GMDJ step(s), and encoding its sub-result;
- the coordinator is charged for producing/encoding the per-site
  fragments, decoding the sub-results, and the Theorem-1 merge;
- communication *time* is not measured (everything is in-process) — it
  is modeled from the measured bytes by the cost model in
  ``repro.distributed.stats``.

Tracing: pass a live :class:`~repro.obs.tracer.Tracer` to record the
span tree ``query → round → round.{encode,evaluate,decode,merge}``, and
a :class:`~repro.obs.metrics.MetricsRegistry` to capture the GMDJ
operator counters for the run. Both default to no-ops, so the untraced
hot path pays nothing beyond a handful of no-op calls per round.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.coordinator import Coordinator
from repro.distributed.executor import EXECUTORS, SiteRequest, create_engine
from repro.distributed.optimizer import OptimizationOptions, plan_query
from repro.distributed.plan import Plan
from repro.distributed.recovery import (
    EXCLUDED,
    FAIL_FAST,
    FAILURE_MODES,
    RetryPolicy,
    SpeculationController,
    guard_leg,
)
from repro.distributed.stats import ExecutionStats, check_theorem2
from repro.errors import PlanError, ReproError
from repro.gmdj.expression import GMDJExpression, LiteralBase
from repro.net import message as msg
from repro.net import serialize
from repro.net.costmodel import CostModel, WAN
from repro.obs.metrics import MetricsRegistry, activate
from repro.obs.tracer import NULL_TRACER
from repro.relalg.engine import ENGINES, use_engine
from repro.relalg.relation import Relation


@dataclass(frozen=True)
class ExecutionConfig:
    """Runtime knobs of Alg. GMDJDistribEval.

    ``row_block_size`` enables *row blocking* (mentioned among the
    classical optimizations in Section 4): relations are shipped as a
    sequence of blocks of at most that many rows, each block its own
    message. More messages means more header bytes, but the coordinator
    synchronizes each arriving block immediately (Section 3.2's
    streaming merge), which in a real deployment overlaps transfer with
    merge work. ``0`` — the default and the *only* "unlimited" sentinel
    — ships each relation whole, one message per relation; ``None`` is
    rejected.

    ``executor`` picks the site-execution engine
    (:mod:`repro.distributed.executor`): ``"serial"`` runs the per-site
    legs one after another, ``"threads"`` fans them out on a thread
    pool, ``"processes"`` additionally dispatches the site compute to
    forked workers (real multi-core parallelism). All three produce
    bit-identical results, byte counts and trace span sets.
    ``max_workers`` caps the pool size; ``0`` sizes it automatically
    (one thread per site; one process per CPU up to the site count).

    The ``executor`` default honours the ``REPRO_EXECUTOR`` environment
    variable (used by the CI executor matrix to run the whole test suite
    under each engine); an explicit value always wins.

    ``failure_mode`` selects how the coordinator reacts when a site leg
    fails with a transport/codec error (see
    :mod:`repro.distributed.recovery`): ``"fail_fast"`` propagates the
    first failure, ``"retry"`` re-runs the leg with exponential backoff
    (``retry_backoff_s`` base, doubling, capped) up to ``max_retries``
    re-runs and at most ``leg_timeout_s`` wall-clock per leg (0 = no
    clock budget), and ``"degrade"`` spends the same budget but then
    completes the round *without* the site, recording the exclusion in
    the run's :class:`~repro.distributed.stats.ExecutionStats`.
    """

    row_block_size: int = 0  # 0 = unlimited (one message per relation)
    executor: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXECUTOR", "serial")
    )
    max_workers: int = 0
    failure_mode: str = FAIL_FAST
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    leg_timeout_s: float = 0.0  # 0 = no per-leg wall-clock budget
    #: Evaluation engine (``row | columnar``): ``columnar`` runs GMDJ and
    #: relational kernels batch-at-a-time over column vectors, with the
    #: row engine as differential oracle (bit-identical results). Honours
    #: ``REPRO_ENGINE`` like ``executor`` honours ``REPRO_EXECUTOR``.
    engine: str = field(
        default_factory=lambda: os.environ.get("REPRO_ENGINE", "row")
    )
    #: Wire codec for shipped relations (``row | column``): ``column``
    #: ships dictionary/delta column blocks (smaller), and byte stats
    #: then carry the measured saving vs. the row codec. Honours
    #: ``REPRO_CODEC``.
    wire_codec: str = field(
        default_factory=lambda: os.environ.get("REPRO_CODEC", "row")
    )
    #: Speculative straggler re-execution. Once at least half a round's
    #: legs have completed, a deadline arms at ``median completion *
    #: speculation_factor + speculation_slack_s``; a leg still in flight
    #: past it is abandoned and re-run (first result wins), spending at
    #: most ``speculation_max_backups`` backups per round. Abandonment
    #: needs a transport that can give up mid-wait, so it only fires
    #: under the socket transport; the controller itself is harmless (and
    #: inert) elsewhere.
    speculation: bool = False
    speculation_factor: float = 3.0
    speculation_slack_s: float = 0.05
    speculation_max_backups: int = 1

    def __post_init__(self):
        if self.row_block_size is None:
            raise PlanError(
                "row_block_size must be an int; use 0 (not None) to ship "
                "each relation whole"
            )
        if self.row_block_size < 0:
            raise PlanError(
                f"row_block_size must be >= 0, got {self.row_block_size}"
            )
        if self.executor not in EXECUTORS:
            raise PlanError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {', '.join(EXECUTORS)}"
            )
        if self.max_workers < 0:
            raise PlanError(f"max_workers must be >= 0, got {self.max_workers}")
        if self.failure_mode not in FAILURE_MODES:
            raise PlanError(
                f"unknown failure mode {self.failure_mode!r}; "
                f"expected one of {', '.join(FAILURE_MODES)}"
            )
        if self.max_retries < 0:
            raise PlanError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s < 0:
            raise PlanError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.leg_timeout_s < 0:
            raise PlanError(
                f"leg_timeout_s must be >= 0, got {self.leg_timeout_s}"
            )
        if self.engine not in ENGINES:
            raise PlanError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {', '.join(ENGINES)}"
            )
        if self.wire_codec not in serialize.CODECS:
            raise PlanError(
                f"unknown wire codec {self.wire_codec!r}; "
                f"expected one of {', '.join(serialize.CODECS)}"
            )
        if self.speculation_factor < 1.0:
            raise PlanError(
                f"speculation_factor must be >= 1.0, got {self.speculation_factor}"
            )
        if self.speculation_slack_s < 0:
            raise PlanError(
                f"speculation_slack_s must be >= 0, got {self.speculation_slack_s}"
            )
        if self.speculation_max_backups < 0:
            raise PlanError(
                "speculation_max_backups must be >= 0, "
                f"got {self.speculation_max_backups}"
            )

    def speculation_controller(self, site_count: int):
        """A fresh per-round controller, or None when speculation is off."""
        if not self.speculation or site_count < 1:
            return None
        return SpeculationController(
            site_count,
            factor=self.speculation_factor,
            slack_s=self.speculation_slack_s,
            max_backups=self.speculation_max_backups,
        )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy.from_config(self)

    def blocks_of(self, relation: Relation):
        """Split a relation into shipping blocks per this config."""
        size = self.row_block_size
        if not size or len(relation) <= size:
            return [relation]
        return [
            Relation(relation.schema, relation.rows[start : start + size])
            for start in range(0, len(relation), size)
        ] or [relation]


@dataclass
class DistributedResult:
    """The answer relation plus everything measured while computing it."""

    relation: Relation
    stats: ExecutionStats
    plan: Plan
    #: Set by the topology scheduler
    #: (:func:`repro.distributed.scheduler.execute_plan_scheduled`): the
    #: :class:`~repro.distributed.scheduler.TopologyChoice` that picked
    #: this run's merge topology. None for directly-executed plans.
    topology_choice: object = None

    def respects_theorem2(self) -> bool:
        """Check the Theorem 2 traffic bound against observed tuple counts."""
        base_sites, round_sites = self.plan.participating_site_counts()
        return check_theorem2(
            self.stats, len(self.relation), base_sites, round_sites
        )

    def response_time_s(self, model: CostModel = WAN) -> float:
        return self.stats.response_time_s(model)


def execute_plan(
    cluster: SimulatedCluster,
    plan: Plan,
    config: Optional[ExecutionConfig] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    engine=None,
    network=None,
    query_id=None,
) -> DistributedResult:
    """Run a plan over the cluster and return result + statistics.

    ``tracer`` (default: the shared no-op tracer) records the run's span
    tree; ``metrics`` (optional) becomes the active registry for the
    duration, so operator counters land next to the run's channel
    counters.

    ``engine``/``network`` support concurrent callers (the query
    service): an externally supplied engine is shared across calls and
    *not* closed here, and a supplied network replaces ``cluster.network``
    for this run only — its channels carry this run's fragments, its
    fault events feed this run's stats, and the cluster's own
    tracer/network state is left untouched (two runs mutating
    ``cluster.tracer`` concurrently would cross their span trees).

    ``query_id`` (optional) tags the run for per-query trace filtering:
    it lands on the root ``query`` span, on every site-worker span, and
    on the returned :class:`~repro.distributed.stats.ExecutionStats`.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if metrics is not None:
        with activate(metrics):
            return _execute_plan_traced(
                cluster, plan, config, tracer, engine, network, query_id
            )
    return _execute_plan_traced(cluster, plan, config, tracer, engine, network, query_id)


def _execute_plan_traced(
    cluster, plan, config, tracer, external_engine=None, network=None, query_id=None
) -> DistributedResult:
    config = config or ExecutionConfig()
    policy = config.retry_policy()
    stats = ExecutionStats(
        executor=config.executor,
        failure_mode=config.failure_mode,
        query_id=query_id,
        wire_codec=config.wire_codec,
    )
    coordinator = Coordinator(plan.expression.key, tracer)
    owns_cluster_state = network is None
    if network is None:
        network = cluster.network
    if owns_cluster_state:
        previous_tracer = cluster.tracer
        previous_network_tracer = network.tracer
        cluster.tracer = tracer
    network.tracer = tracer
    # Socket transport: estimate per-site clock offsets up front (a few
    # PING exchanges per site) so shipped site spans replay onto this
    # process's clock. Memory-transport networks have no sync_clocks and
    # need none — everything already shares one clock.
    sync_clocks = getattr(network, "sync_clocks", None)
    if tracer.enabled and sync_clocks is not None:
        try:
            stats.record_clocks(sync_clocks())
        except ReproError:
            pass
    engine = external_engine
    try:
        if engine is None:
            engine = create_engine(
                config.executor, cluster.sites, tracer, config.max_workers,
                network=network,
            )
        query_attrs = {"rounds": len(plan.rounds), "sites": cluster.site_count}
        if query_id is not None:
            query_attrs["query_id"] = query_id
        # Coordinator-side relational work (fragment slicing, streaming
        # merges) honours the configured engine; sites receive the engine
        # name on their requests because context vars do not cross thread
        # pools or forked workers.
        with use_engine(config.engine), tracer.span(
            "query", kind="query", **query_attrs
        ):
            _evaluate_base(
                cluster, plan, coordinator, stats, config, tracer, engine,
                policy, network, query_id,
            )
            for round_number, md_round in enumerate(plan.rounds, start=1):
                round_stats = stats.new_round(
                    "chain" if md_round.is_chain else "md",
                    f"steps={len(md_round.steps)} sites={len(md_round.sites)}",
                )
                round_started = time.perf_counter()
                with tracer.span(
                    "round",
                    kind="round",
                    index=round_stats.index,
                    round_kind=round_stats.kind,
                    sites=len(md_round.sites),
                ) as round_span:
                    _evaluate_round(
                        cluster,
                        plan,
                        coordinator,
                        config,
                        tracer,
                        engine,
                        md_round,
                        round_number,
                        round_stats,
                        round_span,
                        policy,
                        network,
                        query_id,
                    )
                    round_span.set(
                        bytes_down=round_stats.bytes_down,
                        bytes_up=round_stats.bytes_up,
                        coordinator_compute_s=round_stats.coordinator_compute_s,
                    )
                    if round_stats.excluded:
                        round_span.set(excluded=",".join(round_stats.excluded))
                round_stats.wall_s = time.perf_counter() - round_started
    finally:
        if owns_cluster_state:
            cluster.tracer = previous_tracer
            network.tracer = previous_network_tracer
        stats.record_faults(network.fault_events())
        stats.record_transport(network)
        # Deployed clusters keep a coordinator-side flight recorder; a
        # crash after this point still has the query's spans in the ring.
        flight = getattr(cluster, "flight", None)
        if flight is not None:
            flight.record_event(
                "query",
                query_id=query_id,
                rounds=len(stats.rounds),
                bytes_total=stats.bytes_total,
                faults=len(stats.faults),
            )
            if tracer.enabled:
                flight.record_spans(tracer.finished())
        if engine is not None and engine is not external_engine:
            engine.close()
    return DistributedResult(coordinator.x, stats, plan)


def _evaluate_round(
    cluster,
    plan,
    coordinator,
    config,
    tracer,
    engine,
    md_round,
    round_number,
    round_stats,
    round_span=None,
    policy=None,
    network=None,
    query_id=None,
) -> None:
    """One MD/chain round: fan out, evaluate, stream sub-results back.

    The per-site work is expressed as one *leg* and handed to the
    engine, which runs legs inline, on threads, or with forked site
    workers. Streaming synchronization (Section 3.2): for ordinary
    rounds the coordinator absorbs each sub-result fragment as it
    arrives — under parallel engines that is completion order, which the
    session's per-source banks make order-insensitive. Merged-base
    rounds must see all fragments to discover the base, so they collect
    (reassembled in site order for determinism).
    """
    if network is None:
        network = cluster.network
    blocks = md_round.all_blocks()
    session = None if md_round.merged_base else coordinator.begin_sync(blocks)
    coordinator_lock = threading.Lock()
    # Pre-create per-site stats in site order so reporting order does not
    # depend on leg completion order.
    for site_id in md_round.sites:
        round_stats.site(site_id)

    def leg(site_id):
        channel = network.channel(site_id)
        site_stats = round_stats.site(site_id)
        # Consume any injected straggler delay for this attempt. The rule
        # budget ("times") is spent here, so a speculative backup re-run
        # of the same leg gets 0 and races the sleeping original.
        compute_delay_s = channel.next_straggle(round_number)

        if md_round.merged_base:
            # Proposition 2: no shipment down beyond the request header.
            request_message = msg.Message(
                msg.BASE_QUERY, "coordinator", site_id, round_number
            )
            channel.send_to_site(request_message)
            site_stats.bytes_down += request_message.size_bytes
            site_stats.row_equiv_bytes_down += request_message.size_bytes
            channel.receive_at_site()
            request = SiteRequest(
                kind="merged",
                site_id=site_id,
                round_number=round_number,
                steps=tuple(md_round.steps),
                key_attrs=tuple(plan.expression.key),
                source=plan.base.source,
                row_block_size=config.row_block_size,
                traced=tracer.enabled,
                query_id=query_id,
                engine=config.engine,
                wire_codec=config.wire_codec,
                compute_delay_s=compute_delay_s,
            )
        else:
            started = time.perf_counter()
            with tracer.span(
                "round.encode", kind="coordinator", site=site_id
            ) as encode_span:
                fragment = coordinator.fragment_for_site(
                    md_round.ship_filter(site_id)
                )
                fragment_blocks = list(config.blocks_of(fragment))
                down_blocks = [
                    msg.Message.with_relation(
                        msg.SHIP_BASE, "coordinator", site_id, round_number,
                        block, codec=config.wire_codec,
                    )
                    for block in fragment_blocks
                ]
                if config.wire_codec == "row":
                    row_equiv_down = sum(
                        shipment.size_bytes for shipment in down_blocks
                    )
                else:
                    # Measure (not estimate) what the row codec would have
                    # shipped for the same blocks, so codec savings in the
                    # stats are grounded in actual encodings.
                    row_equiv_down = sum(
                        serialize.wire_size(block) + msg.HEADER_BYTES
                        for block in fragment_blocks
                    )
                encode_span.set(
                    rows=len(fragment),
                    messages=len(down_blocks),
                    bytes=sum(shipment.size_bytes for shipment in down_blocks),
                )
            elapsed = time.perf_counter() - started
            with coordinator_lock:
                round_stats.coordinator_compute_s += elapsed
            for shipment in down_blocks:
                channel.send_to_site(shipment)
                site_stats.bytes_down += shipment.size_bytes
            site_stats.row_equiv_bytes_down += row_equiv_down
            site_stats.tuples_down += len(fragment)
            down_payloads = tuple(
                channel.receive_at_site().payload for _ in down_blocks
            )
            request = SiteRequest(
                kind="round",
                site_id=site_id,
                round_number=round_number,
                steps=tuple(md_round.steps),
                key_attrs=tuple(plan.expression.key),
                independent_reduction=md_round.independent_reduction,
                row_block_size=config.row_block_size,
                down_payloads=down_payloads,
                traced=tracer.enabled,
                query_id=query_id,
                engine=config.engine,
                wire_codec=config.wire_codec,
                compute_delay_s=compute_delay_s,
            )

        reply = engine.evaluate(request, channel=channel)
        site_stats.compute_s += reply.compute_s
        up_blocks = [
            msg.Message(msg.SUB_RESULT, site_id, "coordinator", round_number, payload)
            for payload in reply.payloads
        ]
        for reply_message in up_blocks:
            channel.send_to_coordinator(reply_message)
            site_stats.bytes_up += reply_message.size_bytes
        site_stats.row_equiv_bytes_up += (
            reply.row_codec_payload_bytes + msg.HEADER_BYTES * len(reply.payloads)
        )
        site_stats.tuples_up += reply.rows

        started = time.perf_counter()
        collected = None
        with tracer.span("round.decode", kind="coordinator", site=site_id):
            for _reply in up_blocks:
                received_h = channel.receive_at_coordinator().relation()
                if session is None:
                    collected = (
                        received_h
                        if collected is None
                        else collected.union_all(received_h)
                    )
                else:
                    # Streaming merge: each block synchronizes on arrival.
                    session.absorb(received_h, source=site_id)
        elapsed = time.perf_counter() - started
        with coordinator_lock:
            round_stats.coordinator_compute_s += elapsed
        return collected

    if policy is None:
        policy = RetryPolicy()
    guarded = guard_leg(
        leg,
        policy=policy,
        network=network,
        round_index=round_number,
        round_stats=round_stats,
        tracer=tracer,
        session=session,
        speculation=config.speculation_controller(len(md_round.sites)),
    )
    results = engine.run_legs(md_round.sites, guarded, round_span)
    results = [result for result in results if result is not EXCLUDED]
    if round_stats.excluded and len(round_stats.excluded) == len(md_round.sites):
        raise PlanError(
            f"round {round_number}: every participating site was excluded "
            f"({', '.join(round_stats.excluded)}); no sub-results to merge"
        )

    started = time.perf_counter()
    if md_round.merged_base:
        coordinator.assemble_from_chain(results, blocks)
    else:
        coordinator.commit_sync(session, excluded=tuple(round_stats.excluded))
    round_stats.coordinator_compute_s += time.perf_counter() - started


def _evaluate_base(
    cluster,
    plan,
    coordinator,
    stats,
    config=None,
    tracer=NULL_TRACER,
    engine=None,
    policy=None,
    network=None,
    query_id=None,
) -> None:
    if config is None:
        config = ExecutionConfig()
    if network is None:
        network = cluster.network
    base = plan.base
    if base.merged_into_chain:
        return
    if not base.is_distributed:
        if not isinstance(base.source, LiteralBase):
            raise PlanError(
                f"non-distributed base must be literal, got {base.source!r}"
            )
        started = time.perf_counter()
        coordinator.set_base(base.source.relation)
        round_stats = stats.new_round("base", "literal base at coordinator")
        round_stats.coordinator_compute_s += time.perf_counter() - started
        round_stats.wall_s = round_stats.coordinator_compute_s
        return

    if engine is None:
        engine = create_engine("serial", cluster.sites, tracer)
    round_stats = stats.new_round("base", f"distributed over {len(base.sites)} sites")
    round_started = time.perf_counter()
    coordinator_lock = threading.Lock()
    with tracer.span(
        "round", kind="round", index=round_stats.index, round_kind="base",
        sites=len(base.sites),
    ) as round_span:
        for site_id in base.sites:
            round_stats.site(site_id)

        def leg(site_id):
            channel = network.channel(site_id)
            site_stats = round_stats.site(site_id)
            compute_delay_s = channel.next_straggle(0)

            request_message = msg.Message(msg.BASE_QUERY, "coordinator", site_id, 0)
            channel.send_to_site(request_message)
            site_stats.bytes_down += request_message.size_bytes
            site_stats.row_equiv_bytes_down += request_message.size_bytes
            channel.receive_at_site()

            reply = engine.evaluate(
                SiteRequest(
                    kind="base",
                    site_id=site_id,
                    round_number=0,
                    source=base.source,
                    traced=tracer.enabled,
                    query_id=query_id,
                    engine=config.engine,
                    wire_codec=config.wire_codec,
                    compute_delay_s=compute_delay_s,
                ),
                channel=channel,
            )
            site_stats.compute_s += reply.compute_s
            reply_message = msg.Message(
                msg.BASE_RESULT, site_id, "coordinator", 0, reply.payloads[0]
            )
            channel.send_to_coordinator(reply_message)
            site_stats.bytes_up += reply_message.size_bytes
            site_stats.row_equiv_bytes_up += (
                reply.row_codec_payload_bytes + msg.HEADER_BYTES
            )
            site_stats.tuples_up += reply.rows

            started = time.perf_counter()
            with tracer.span("round.decode", kind="coordinator", site=site_id):
                fragment = channel.receive_at_coordinator().relation()
            elapsed = time.perf_counter() - started
            with coordinator_lock:
                round_stats.coordinator_compute_s += elapsed
            return fragment

        guarded = guard_leg(
            leg,
            policy=policy if policy is not None else RetryPolicy(),
            network=network,
            round_index=0,
            round_stats=round_stats,
            tracer=tracer,
            speculation=config.speculation_controller(len(base.sites)),
        )
        fragments = engine.run_legs(base.sites, guarded, round_span)
        fragments = [
            fragment for fragment in fragments if fragment is not EXCLUDED
        ]
        if not fragments:
            raise PlanError(
                "base round: every participating site was excluded; "
                "no base fragments to synchronize"
            )

        started = time.perf_counter()
        coordinator.sync_base(fragments)
        round_stats.coordinator_compute_s += time.perf_counter() - started
        if round_stats.excluded:
            round_span.set(excluded=",".join(round_stats.excluded))
        round_span.set(
            bytes_down=round_stats.bytes_down,
            bytes_up=round_stats.bytes_up,
            coordinator_compute_s=round_stats.coordinator_compute_s,
        )
    round_stats.wall_s = time.perf_counter() - round_started


def execute_query(
    cluster: SimulatedCluster,
    expression: GMDJExpression,
    options: Optional[OptimizationOptions] = None,
    config: Optional[ExecutionConfig] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    engine=None,
    network=None,
    query_id=None,
) -> DistributedResult:
    """Plan and execute a GMDJ expression in one call."""
    plan = plan_query(expression, cluster.catalog, options)
    return execute_plan(
        cluster, plan, config, tracer=tracer, metrics=metrics,
        engine=engine, network=network, query_id=query_id,
    )
