"""Site-execution engines: serial, thread-pool, and process-pool.

Alg. GMDJDistribEval's per-round site work — ship the fragment down,
evaluate the GMDJ step(s), ship H_i back — is independent across sites,
so a real deployment overlaps it perfectly (the paper's response-time
model in :mod:`repro.distributed.stats` already assumes max-over-sites).
This module makes the *simulated* evaluation actually run that way: the
evaluator expresses each round as one *leg* per site, and an engine
decides how legs run:

- ``serial`` — legs run inline, one site after another (the historic
  behaviour, and the differential baseline);
- ``threads`` — legs run on a thread pool. Channels, stats, metrics and
  tracer are all safe under concurrent writers, and the coordinator's
  :class:`~repro.gmdj.operator.SyncSession` absorbs fragments in
  completion order (Section 3.2's streaming merge) while staying
  bit-identical via per-source accumulator banks. Python's GIL still
  serializes the pure-Python compute, so threads mostly help overlap and
  prove out the concurrency story;
- ``processes`` — the site-attributed work (decode -> evaluate ->
  encode) is dispatched to forked worker processes, sidestepping the GIL
  for real multi-core speedups. Workers inherit the site warehouses at
  fork time (nothing is re-pickled per round); only the compact
  :class:`SiteRequest`/:class:`SiteReply` payloads cross the process
  boundary.

The split between a leg and :func:`perform_site_request` is exactly the
paper's attribution boundary: the leg (parent) does coordinator work —
fragmenting, message framing, channel accounting, decoding H_i,
synchronizing — while :func:`perform_site_request` does everything a
Skalla site would be charged for. All three engines therefore produce
identical byte counts, identical span *sets*, and (thanks to the
deterministic bank merge) bit-identical result relations.

Process-mode bookkeeping: a worker records spans into a private tracer
and metric increments into a private registry, and the reply carries
them back; the parent *replays* spans (fresh ids, parented under the
round span) and adds counter deltas to the active registry, so traces
and metrics look the same as a threaded run. Worker span timestamps come
from the worker's own monotonic clock and are not comparable with the
parent's — durations are, which is what the stats use.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import MultiLegError, PlanError
from repro.net import message as msg
from repro.net import serialize
from repro.obs.metrics import MetricsRegistry, activate, active_registry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relalg.engine import use_engine

EXECUTORS = ("serial", "threads", "processes", "sockets")


@dataclass(frozen=True)
class SiteRequest:
    """Everything a site needs to perform its round-leg work.

    ``kind`` selects the handler: ``"base"`` (compute the base-values
    query), ``"round"`` (evaluate shipped fragment against the local
    partition), ``"merged"`` (Proposition 2: derive the base locally).
    The payload is picklable — plan step objects contain no closures —
    so the same request drives inline, threaded and forked execution.
    """

    kind: str
    site_id: str
    round_number: int
    steps: tuple = ()
    key_attrs: tuple = ()
    source: object = None
    independent_reduction: bool = False
    row_block_size: int = 0
    down_payloads: tuple = ()
    traced: bool = False
    #: Service-assigned query identity; stamped on the site spans so a
    #: shared trace file can be filtered per query (schema v2).
    query_id: object = None
    #: Execution engine for the site-side evaluation (``row | columnar``).
    #: Carried on the request because context variables do not cross pool
    #: threads or forked workers.
    engine: str = "row"
    #: Wire codec for the encoded reply payloads (``row | column``).
    wire_codec: str = "row"
    #: Injected straggler delay: the site sleeps this long (real wall
    #: clock) before evaluating. Set from a ``straggle`` fault rule; the
    #: speculative backup attempt gets 0 once the rule's budget is spent.
    compute_delay_s: float = 0.0


@dataclass
class SiteReply:
    """The site-attributed outcome of one request.

    ``payloads`` are the encoded reply relation blocks (the leg frames
    them into messages, so byte accounting happens on the parent's
    channels); ``compute_s`` is the site compute charge measured inside
    the worker; ``spans``/``counters`` carry process-mode observability
    back for replay.
    """

    payloads: Tuple[bytes, ...]
    rows: int
    compute_s: float
    spans: tuple = ()
    counters: dict = field(default_factory=dict)
    #: What the same payloads would occupy under the row codec (equal to
    #: ``sum(len(p) for p in payloads)`` when the row codec is active) —
    #: the measured baseline for the column-block codec's byte saving.
    row_codec_payload_bytes: int = 0
    #: Small site-process health snapshot piggybacked on socket replies
    #: (pid, rss_bytes, uptime_s, requests_total); empty elsewhere.
    telemetry: dict = field(default_factory=dict)


def _blocks_of(relation, size: int):
    """Row blocking, mirroring ``ExecutionConfig.blocks_of``."""
    if not size or len(relation) <= size:
        return [relation]
    from repro.relalg.relation import Relation

    return [
        Relation(relation.schema, relation.rows[start : start + size])
        for start in range(0, len(relation), size)
    ] or [relation]


def perform_site_request(site, request: SiteRequest, tracer=NULL_TRACER) -> SiteReply:
    """Run the site-attributed body of one leg: decode, evaluate, encode.

    Emits the same ``round.decode`` / ``round.evaluate`` /
    ``round.encode`` site spans (same kinds, same attributes) the serial
    evaluator historically produced, so executor choice never changes
    the trace vocabulary.
    """
    started = time.perf_counter()
    if request.compute_delay_s > 0:
        # An injected straggler: the site really is this slow, so the
        # sleep is charged to compute_s like any other site work.
        time.sleep(request.compute_delay_s)
    site_id = request.site_id
    codec = request.wire_codec
    ids = {} if request.query_id is None else {"query_id": request.query_id}

    if request.kind == "base":
        with use_engine(request.engine):
            with tracer.span(
                "round.evaluate", kind="site", site=site_id, phase="base", **ids
            ) as span:
                result = site.compute_base(request.source)
                span.set(rows=len(result))
            with tracer.span("round.encode", kind="site", site=site_id, **ids):
                payloads = (serialize.encode_relation(result, codec),)
                row_codec_bytes = (
                    len(payloads[0])
                    if codec == "row"
                    else serialize.wire_size(result)
                )
        return SiteReply(
            payloads=payloads,
            rows=len(result),
            compute_s=time.perf_counter() - started,
            row_codec_payload_bytes=row_codec_bytes,
        )

    with use_engine(request.engine):
        if request.kind == "merged":
            with tracer.span(
                "round.evaluate", kind="site", site=site_id, merged_base=True, **ids
            ) as span:
                h_i = site.evaluate_merged_round(
                    request.source, request.steps, request.key_attrs
                )
                span.set(rows=len(h_i))
        elif request.kind == "round":
            with tracer.span("round.decode", kind="site", site=site_id, **ids):
                fragment = serialize.decode_relation(request.down_payloads[0])
                for extra in request.down_payloads[1:]:
                    fragment = fragment.union_all(serialize.decode_relation(extra))
            with tracer.span(
                "round.evaluate",
                kind="site",
                site=site_id,
                steps=len(request.steps),
                fragment_rows=len(fragment),
                **ids,
            ) as span:
                h_i = site.evaluate_round(
                    fragment,
                    request.steps,
                    request.key_attrs,
                    request.independent_reduction,
                )
                span.set(rows=len(h_i))
        else:
            raise PlanError(f"unknown site request kind {request.kind!r}")

        with tracer.span(
            "round.encode", kind="site", site=site_id, **ids
        ) as encode_span:
            blocks = _blocks_of(h_i, request.row_block_size)
            payloads = tuple(
                serialize.encode_relation(block, codec) for block in blocks
            )
            if codec == "row":
                row_codec_bytes = sum(len(payload) for payload in payloads)
            else:
                # Measured (not estimated) baseline: what the same blocks
                # cost under the row codec. Only charged when the column
                # codec is active, so the default path stays untouched.
                row_codec_bytes = sum(serialize.wire_size(block) for block in blocks)
            encode_span.set(
                rows=len(h_i),
                messages=len(payloads),
                bytes=sum(len(payload) + msg.HEADER_BYTES for payload in payloads),
            )
    return SiteReply(
        payloads=payloads,
        rows=len(h_i),
        compute_s=time.perf_counter() - started,
        row_codec_payload_bytes=row_codec_bytes,
    )


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------


def _raise_leg_failures(failures: dict, cancelled: Sequence[str]) -> None:
    """Raise the collected leg failures.

    A single failure with nothing cancelled re-raises the original
    exception unchanged (callers and tests match on the concrete type);
    anything more is a :class:`~repro.errors.MultiLegError` carrying
    *every* failed site id and cause.
    """
    if len(failures) == 1 and not cancelled:
        raise next(iter(failures.values()))
    raise MultiLegError(failures, cancelled)


def _collect_leg_results(site_ids: Sequence[str], futures) -> list:
    """Gather leg futures in site order without losing any failure.

    Waits for *every* future (cancelling the not-yet-started ones after
    the first failure is observed), so one failing leg can neither
    swallow a later leg's exception nor abandon in-flight work. Results
    come back in site order; on any failure raises via
    :func:`_raise_leg_failures`.
    """
    failures: dict = {}
    seen_failure = False
    results = []
    cancelled = []
    for site_id, future in zip(site_ids, futures):
        if seen_failure:
            # Legs that have not started yet are pointless once the
            # round is doomed; running ones are awaited below.
            future.cancel()
        try:
            results.append(future.result())
        except CancelledError:
            cancelled.append(site_id)
        except BaseException as error:  # noqa: BLE001 - reported, not hidden
            failures[site_id] = error
            seen_failure = True
    if failures:
        _raise_leg_failures(failures, cancelled)
    return results


class _EngineLifecycle:
    """Shared close-once semantics.

    Engines used to live for exactly one ``execute_plan`` call; the query
    service keeps one engine alive across many concurrent queries, which
    makes use-after-close a real hazard (a pool shutdown mid-round hangs
    or drops legs silently). Every engine now fails fast instead.
    """

    _closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise PlanError(f"{self.name} engine used after close()")

    def _mark_closed(self) -> None:
        self._closed = True


class SerialEngine(_EngineLifecycle):
    """Legs run inline on the calling thread — the differential baseline."""

    name = "serial"

    def __init__(self, sites, tracer):
        self._sites = sites
        self._tracer = tracer

    def run_legs(self, site_ids: Sequence[str], leg, parent_span=None) -> list:
        # Serially a failed leg aborts the round before later legs start,
        # so the first exception *is* the complete failure report and
        # propagates unchanged (parallel engines, where several legs can
        # fail concurrently, aggregate into MultiLegError instead).
        self._check_open()
        return [leg(site_id) for site_id in site_ids]

    def evaluate(self, request: SiteRequest, channel=None) -> SiteReply:
        self._check_open()
        return perform_site_request(
            self._sites[request.site_id], request, self._tracer
        )

    def close(self) -> None:
        self._mark_closed()


class ThreadEngine(_EngineLifecycle):
    """Legs fan out on a thread pool; site work stays in the leg's thread.

    Results come back in *site order* regardless of completion order.
    Failures are collected from *every* leg — a single failed leg
    re-raises its original exception, several raise
    :class:`~repro.errors.MultiLegError` with all failed site ids.
    """

    name = "threads"

    def __init__(self, sites, tracer, max_workers: int = 0):
        self._sites = sites
        self._tracer = tracer
        workers = max_workers or max(len(sites), 1)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="skalla-site"
        )

    def run_legs(self, site_ids: Sequence[str], leg, parent_span=None) -> list:
        self._check_open()
        tracer = self._tracer

        def attached(site_id):
            with tracer.attach(parent_span):
                return leg(site_id)

        futures = [self._pool.submit(attached, site_id) for site_id in site_ids]
        return _collect_leg_results(site_ids, futures)

    def evaluate(self, request: SiteRequest, channel=None) -> SiteReply:
        self._check_open()
        return perform_site_request(
            self._sites[request.site_id], request, self._tracer
        )

    def close(self) -> None:
        self._mark_closed()
        self._pool.shutdown(wait=True, cancel_futures=True)


#: Sites inherited by forked workers (set by ProcessEngine before the
#: fork, read by ``_fork_perform`` inside the children). One process-pool
#: engine at a time — engines are created per ``execute_plan`` call.
_FORK_SITES: Optional[dict] = None


def _fork_warmup(delay_s: float) -> int:
    time.sleep(delay_s)
    return os.getpid()


def perform_isolated_request(site, request: SiteRequest) -> SiteReply:
    """Run a request under a private tracer/registry and carry both back.

    The shared body for every out-of-process execution venue (forked
    pool workers, ``repro site-server`` processes): spans land on the
    reply as dicts for parent-side replay, counter deltas as a flat dict
    (unlabeled counters only — labeled ones are per-site bookkeeping the
    parent's channels already account for).
    """
    registry = MetricsRegistry()
    with activate(registry):
        if request.traced:
            tracer = Tracer()
            reply = perform_site_request(site, request, tracer)
            reply.spans = tuple(span.to_dict() for span in tracer.spans)
        else:
            reply = perform_site_request(site, request)
    counters = {
        key: snap["value"]
        for key, snap in registry.snapshot().items()
        if snap["type"] == "counter" and snap["value"] and "{" not in key
    }
    reply.counters = counters
    return reply


def _fork_perform(request: SiteRequest) -> SiteReply:
    """Worker-side entry: run the request against the inherited site."""
    return perform_isolated_request(_FORK_SITES[request.site_id], request)


class ProcessEngine(_EngineLifecycle):
    """Legs run on threads; site work is dispatched to forked workers.

    Fork (not spawn) so workers inherit the simulated warehouses without
    per-round pickling. All workers are warmed up *before* any leg
    threads exist — forking a multi-threaded parent risks inheriting
    held locks — and stay alive for the engine's lifetime.
    """

    name = "processes"

    def __init__(self, sites, tracer, max_workers: int = 0):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise PlanError(
                "executor 'processes' needs the fork start method, which this "
                "platform does not provide; use 'threads' or 'serial'"
            )
        global _FORK_SITES
        _FORK_SITES = sites
        self._sites = sites
        self._tracer = tracer
        workers = max_workers or min(max(len(sites), 1), os.cpu_count() or 1)
        self._pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("fork")
        )
        try:
            # Force every worker to fork now: each concurrent warm-up task
            # occupies one worker long enough that the pool spawns all of
            # them.
            list(self._pool.map(_fork_warmup, [0.02] * workers))
            self._legs = ThreadPoolExecutor(
                max_workers=max(len(sites), 1), thread_name_prefix="skalla-leg"
            )
        except BaseException:
            # Partial construction must not leak forked children.
            self._pool.shutdown(wait=False, cancel_futures=True)
            raise

    def run_legs(self, site_ids: Sequence[str], leg, parent_span=None) -> list:
        self._check_open()
        tracer = self._tracer

        def attached(site_id):
            with tracer.attach(parent_span):
                return leg(site_id)

        futures = [self._legs.submit(attached, site_id) for site_id in site_ids]
        return _collect_leg_results(site_ids, futures)

    def evaluate(self, request: SiteRequest, channel=None) -> SiteReply:
        self._check_open()
        reply = self._pool.submit(_fork_perform, request).result()
        self._replay_remote(reply, request.site_id)
        return reply

    def _replay_remote(self, reply: SiteReply, site_id=None) -> None:
        if reply.spans:
            # Forked workers share the machine's monotonic clock, so no
            # skew correction — provenance stamping only.
            self._tracer.replay(reply.spans, site_id=site_id, process="site")
        if reply.counters:
            registry = active_registry()
            for key, value in reply.counters.items():
                registry.counter(key).inc(value)

    def close(self) -> None:
        self._mark_closed()
        try:
            self._legs.shutdown(wait=True, cancel_futures=True)
        finally:
            self._pool.shutdown(wait=True, cancel_futures=True)


class SocketEngine(_EngineLifecycle):
    """Legs run on threads; site work runs in site-server *processes*
    reached over the leg's :class:`~repro.net.socket_channel.SocketChannel`.

    Unlike the other engines this one holds no site objects at all — the
    partitions live behind TCP in ``repro site-server`` processes, and
    each :meth:`evaluate` call is given the leg's channel, so one shared
    engine (the query service keeps a single engine for its lifetime)
    works with a fresh per-query network. Spans and counters come back on
    the reply and are replayed exactly as in process mode.
    """

    name = "sockets"

    def __init__(self, sites, tracer, max_workers: int = 0):
        self._tracer = tracer
        workers = max_workers or max(len(sites), 1)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="skalla-socket-leg"
        )

    def run_legs(self, site_ids: Sequence[str], leg, parent_span=None) -> list:
        self._check_open()
        tracer = self._tracer

        def attached(site_id):
            with tracer.attach(parent_span):
                return leg(site_id)

        futures = [self._pool.submit(attached, site_id) for site_id in site_ids]
        return _collect_leg_results(site_ids, futures)

    def evaluate(self, request: SiteRequest, channel=None) -> SiteReply:
        self._check_open()
        if channel is None or not hasattr(channel, "ask"):
            raise PlanError(
                "the sockets engine needs a SocketChannel per leg — run it "
                "against a deployed process cluster (repro cluster up / "
                "--executor sockets), not a simulated one"
            )
        reply = channel.ask(request)
        if reply.spans:
            # Site-server processes run their own monotonic clock; the
            # channel's PING-estimated offset (see repro.obs.skew) maps
            # the shipped timestamps into this process's domain.
            self._tracer.replay(
                reply.spans,
                clock_offset_s=getattr(channel, "clock_offset_s", 0.0),
                site_id=request.site_id,
                process="site",
            )
        if reply.counters:
            registry = active_registry()
            for key, value in reply.counters.items():
                registry.counter(key).inc(value)
        if reply.telemetry:
            registry = active_registry()
            for name, value in reply.telemetry.items():
                if name != "pid" and isinstance(value, (int, float)):
                    registry.gauge(
                        f"site.{name}", site=request.site_id
                    ).set(float(value))
        return reply

    def close(self) -> None:
        self._mark_closed()
        self._pool.shutdown(wait=True, cancel_futures=True)


def create_engine(
    executor: str, sites, tracer, max_workers: int = 0, network=None
):
    """Build the engine for an :class:`ExecutionConfig` executor name.

    ``network`` is advisory — only the sockets engine cares, and even it
    binds to a channel per :meth:`~SocketEngine.evaluate` call, so a
    shared engine survives per-query network replacement.
    """
    if executor == "serial":
        return SerialEngine(sites, tracer)
    if executor == "threads":
        return ThreadEngine(sites, tracer, max_workers)
    if executor == "processes":
        return ProcessEngine(sites, tracer, max_workers)
    if executor == "sockets":
        return SocketEngine(sites, tracer, max_workers)
    raise PlanError(
        f"unknown executor {executor!r}; expected one of {', '.join(EXECUTORS)}"
    )
