"""Multi-tier coordinator architecture (the paper's future work, Section 6).

The paper closes with: "Future research topics could include the
exploration of alternative architectures (e.g., a multi-tiered
coordinator architecture or spanning-tree networks)". This module builds
that architecture on top of the same sites, plans and optimizer:

- sites are grouped into *regions*, each with a regional coordinator;
- downstream, the root ships each region ONE copy of the base-result
  fragment its sites need (the union of the per-site aware-reduction
  fragments); the regional coordinator re-derives the per-site fragments
  locally and fans out;
- upstream, the regional coordinator *merges* its sites' sub-results by
  key before forwarding — sub-aggregate components combine associatively
  (:func:`repro.gmdj.operator.merge_sub_results`), so the root-link
  traffic per round drops from Σ|Hᵢ| to at most |X| per region.

The payoff mirrors the paper's group-reduction analysis: with r regions
of k sites each (n = r·k), the root link carries O(r·|Q|) instead of
O(n·|Q|) per round, while the region links carry what the star's
coordinator links carried. The hierarchical evaluation is
result-equivalent to the star for every plan the optimizer emits — the
tests check all optimization combinations.

Timing composition per round (``TreeStats``):

    max over regions [ root->region + max over region's sites
        (region->site + site compute + site->region)
        + region merge + region->root ] + root compute
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.coordinator import Coordinator
from repro.distributed.plan import Plan
from repro.errors import NetworkError, PlanError
from repro.gmdj.expression import LiteralBase
from repro.gmdj.operator import merge_sub_results
from repro.net import message as msg
from repro.net.channel import Network
from repro.net.costmodel import CostModel, WAN
from repro.obs.metrics import activate
from repro.obs.tracer import NULL_TRACER
from repro.relalg.expressions import BASE_VAR
from repro.relalg.relation import Relation


class TreeTopology:
    """A two-level grouping of sites into regions."""

    def __init__(self, regions: Mapping[str, Sequence[str]]):
        self.regions = {name: tuple(site_ids) for name, site_ids in regions.items()}
        if not self.regions:
            raise NetworkError("a tree topology needs at least one region")
        seen: set = set()
        for name, site_ids in self.regions.items():
            if not site_ids:
                raise NetworkError(f"region {name!r} has no sites")
            for site_id in site_ids:
                if site_id in seen:
                    raise NetworkError(f"site {site_id!r} in multiple regions")
                seen.add(site_id)
        self.all_sites = tuple(seen)

    @classmethod
    def balanced(cls, site_ids: Sequence[str], region_count: int) -> "TreeTopology":
        """Deal sites into ``region_count`` regions of near-equal size.

        ``region_count`` must lie in ``1..len(site_ids)`` — zero or
        negative counts would build no regions at all, and more regions
        than sites would leave empty regions; both raise ``ValueError``
        (a caller bug, not a network condition).
        """
        site_ids = tuple(site_ids)
        if not isinstance(region_count, int) or isinstance(region_count, bool):
            raise ValueError(
                f"region_count must be an int, got {region_count!r}"
            )
        if not 1 <= region_count <= len(site_ids):
            raise ValueError(
                f"region_count must be in 1..{len(site_ids)} "
                f"(one region per site at most), got {region_count}"
            )
        regions: dict = {f"region{index}": [] for index in range(region_count)}
        for index, site_id in enumerate(site_ids):
            regions[f"region{index % region_count}"].append(site_id)
        return cls(regions)

    def region_of(self, site_id: str) -> str:
        for name, site_ids in self.regions.items():
            if site_id in site_ids:
                return name
        raise NetworkError(f"site {site_id!r} not in any region")


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@dataclass
class TreeLinkStats:
    bytes_down: int = 0
    bytes_up: int = 0
    tuples_down: int = 0
    tuples_up: int = 0
    compute_s: float = 0.0  # attached endpoint's compute this round


@dataclass
class TreeRoundStats:
    """One round over the tree: per-region and per-site link activity."""

    index: int
    kind: str
    region_links: dict = field(default_factory=dict)  # region -> TreeLinkStats
    site_links: dict = field(default_factory=dict)  # (region, site) -> TreeLinkStats
    root_compute_s: float = 0.0

    def region(self, name: str) -> TreeLinkStats:
        return self.region_links.setdefault(name, TreeLinkStats())

    def site(self, region: str, site_id: str) -> TreeLinkStats:
        return self.site_links.setdefault((region, site_id), TreeLinkStats())

    @property
    def root_link_bytes(self) -> int:
        return sum(link.bytes_down + link.bytes_up for link in self.region_links.values())

    @property
    def site_link_bytes(self) -> int:
        return sum(link.bytes_down + link.bytes_up for link in self.site_links.values())

    def response_time_s(
        self, model: CostModel, site_model: Optional[CostModel] = None
    ) -> float:
        """Round critical path through the tree.

        ``model`` prices the root<->region links; ``site_model`` (default:
        same) prices region<->site links. Separate models capture the
        deployment the tree targets: regional sites on a fast local
        network behind one expensive wide-area link to the root.
        """
        site_model = site_model or model
        slowest_region = 0.0
        for region_name, region_link in self.region_links.items():
            down = model.transfer_time(region_link.bytes_down) if region_link.bytes_down else 0.0
            up = model.transfer_time(region_link.bytes_up) if region_link.bytes_up else 0.0
            slowest_site = 0.0
            for (region, _site_id), link in self.site_links.items():
                if region != region_name:
                    continue
                site_down = (
                    site_model.transfer_time(link.bytes_down) if link.bytes_down else 0.0
                )
                site_up = site_model.transfer_time(link.bytes_up) if link.bytes_up else 0.0
                slowest_site = max(slowest_site, site_down + link.compute_s + site_up)
            slowest_region = max(
                slowest_region, down + slowest_site + region_link.compute_s + up
            )
        return slowest_region + self.root_compute_s


@dataclass
class TreeStats:
    rounds: list = field(default_factory=list)
    #: The cost model the run was planned/executed under; recorded by
    #: ``execute_plan_hierarchical`` so no-argument ``response_time_s``
    #: reports with the same model the planner priced with.
    model: Optional[CostModel] = None

    def new_round(self, kind: str) -> TreeRoundStats:
        stats = TreeRoundStats(index=len(self.rounds), kind=kind)
        self.rounds.append(stats)
        return stats

    @property
    def root_link_bytes(self) -> int:
        return sum(stats.root_link_bytes for stats in self.rounds)

    @property
    def site_link_bytes(self) -> int:
        return sum(stats.site_link_bytes for stats in self.rounds)

    @property
    def bytes_total(self) -> int:
        return self.root_link_bytes + self.site_link_bytes

    def response_time_s(
        self, model: Optional[CostModel] = None,
        site_model: Optional[CostModel] = None,
    ) -> float:
        """Sum-over-rounds critical path.

        ``model`` defaults to the model the execution recorded (WAN if
        none was), so plan-time and report-time pricing agree without
        every caller re-threading the model.
        """
        model = model or self.model or WAN
        return sum(stats.response_time_s(model, site_model) for stats in self.rounds)


@dataclass
class HierarchicalResult:
    relation: Relation
    stats: TreeStats
    plan: Plan
    topology: TreeTopology


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class _Region:
    """A regional coordinator: channels to its sites plus merge logic."""

    def __init__(self, name: str, site_ids: Sequence[str], metrics=None):
        self.name = name
        self.site_ids = tuple(site_ids)
        self.network = Network(self.site_ids, metrics=metrics)


def execute_plan_hierarchical(
    cluster: SimulatedCluster,
    topology: TreeTopology,
    plan: Plan,
    wire_codec: Optional[str] = None,
    tracer=None,
    metrics=None,
    query_id=None,
    model: Optional[CostModel] = None,
) -> HierarchicalResult:
    """Run a plan over a two-level coordinator tree.

    ``cluster`` supplies the sites and catalog (its flat star network is
    not used); the topology must cover every site any plan round needs.
    ``wire_codec`` selects the relation encoding on every tree link
    (default ``$REPRO_CODEC`` or the row codec, matching the star
    evaluator so cross-topology byte comparisons stay apples-to-apples).

    ``tracer``/``metrics`` integrate the run with :mod:`repro.obs` the
    same way the star evaluator does: the span tree is ``query → round →
    combiner.hop`` (one hop per region per round, tagged with
    ``query_id`` like every other record), and ``metrics`` becomes the
    active registry for the duration. ``model`` is recorded on the
    returned :class:`TreeStats` so its no-argument ``response_time_s``
    prices with the model the run was planned under.
    """
    import os

    from repro.net import serialize

    if tracer is None:
        tracer = NULL_TRACER
    if wire_codec is None:
        wire_codec = os.environ.get("REPRO_CODEC", "row")
    serialize.validate_codec(wire_codec)
    covered = set(topology.all_sites)
    for md_round in plan.rounds:
        missing = set(md_round.sites) - covered
        if missing:
            raise PlanError(f"topology does not cover sites {sorted(missing)}")
    if metrics is not None:
        with activate(metrics):
            return _execute_hierarchical_traced(
                cluster, topology, plan, wire_codec, tracer, metrics, query_id,
                model,
            )
    return _execute_hierarchical_traced(
        cluster, topology, plan, wire_codec, tracer, metrics, query_id, model
    )


def _execute_hierarchical_traced(
    cluster, topology, plan, wire_codec, tracer, metrics, query_id, model
) -> HierarchicalResult:
    regions = {
        name: _Region(name, site_ids, metrics)
        for name, site_ids in topology.regions.items()
    }
    root_network = Network(tuple(regions), metrics=metrics)
    root_network.tracer = tracer
    stats = TreeStats(model=model)
    coordinator = Coordinator(plan.expression.key, tracer)

    query_attrs = {
        "rounds": len(plan.rounds),
        "sites": len(topology.all_sites),
        "topology": f"hierarchical:{len(regions)}",
    }
    if query_id is not None:
        query_attrs["query_id"] = query_id
    with tracer.span("query", kind="query", **query_attrs):
        with tracer.span(
            "round", kind="round", index=0, round_kind="base",
            sites=len(topology.all_sites),
        ):
            _tree_base(
                cluster, plan, coordinator, regions, root_network, stats,
                topology, wire_codec, tracer, query_id,
            )

        for round_number, md_round in enumerate(plan.rounds, start=1):
            round_stats = stats.new_round("chain" if md_round.is_chain else "md")
            with tracer.span(
                "round",
                kind="round",
                index=round_stats.index,
                round_kind=round_stats.kind,
                sites=len(md_round.sites),
            ):
                _hierarchical_round(
                    cluster, plan, coordinator, regions, root_network,
                    round_stats, md_round, round_number, wire_codec, tracer,
                    query_id,
                )

    return HierarchicalResult(coordinator.x, stats, plan, topology)


def _hierarchical_round(
    cluster, plan, coordinator, regions, root_network, round_stats, md_round,
    round_number, wire_codec, tracer, query_id,
) -> None:
    blocks = md_round.all_blocks()
    region_results = []

    for region_name, region in regions.items():
        region_sites = [
            site_id for site_id in md_round.sites if site_id in region.site_ids
        ]
        if not region_sites:
            continue
        hop_attrs = {
            "node": region_name,
            "round": round_stats.index,
            "sites": len(region_sites),
        }
        if query_id is not None:
            hop_attrs["query_id"] = query_id
        with tracer.span("combiner.hop", kind="relay", **hop_attrs):
            region_results.append(
                _hierarchical_region_leg(
                    cluster, plan, coordinator, region, root_network,
                    round_stats, md_round, round_number, wire_codec,
                    region_name, region_sites, blocks,
                )
            )

    started = time.perf_counter()
    if md_round.merged_base:
        coordinator.assemble_from_chain(region_results, blocks)
    else:
        coordinator.synchronize(region_results, blocks)
    round_stats.root_compute_s += time.perf_counter() - started


def _hierarchical_region_leg(
    cluster, plan, coordinator, region, root_network, round_stats, md_round,
    round_number, wire_codec, region_name, region_sites, blocks,
):
    region_link = round_stats.region(region_name)
    root_channel = root_network.channel(region_name)

    if md_round.merged_base:
        request = msg.Message(msg.BASE_QUERY, "root", region_name, round_number)
        root_channel.send_to_site(request)
        region_link.bytes_down += request.size_bytes
        root_channel.receive_at_site()
        region_fragment = None
    else:
        started = time.perf_counter()
        region_fragment = _region_fragment(coordinator, md_round, region_sites)
        shipment = msg.Message.with_relation(
            msg.SHIP_BASE, "root", region_name, round_number, region_fragment,
            codec=wire_codec,
        )
        round_stats.root_compute_s += time.perf_counter() - started
        root_channel.send_to_site(shipment)
        region_link.bytes_down += shipment.size_bytes
        region_link.tuples_down += len(region_fragment)
        started = time.perf_counter()
        region_fragment = root_channel.receive_at_site().relation()
        region_link.compute_s += time.perf_counter() - started

    # Region fans out to its sites and collects their H_i.
    site_results = []
    for site_id in region_sites:
        channel = region.network.channel(site_id)
        site = cluster.site(site_id)
        link = round_stats.site(region_name, site_id)

        if md_round.merged_base:
            request = msg.Message(msg.BASE_QUERY, region_name, site_id, round_number)
            channel.send_to_site(request)
            link.bytes_down += request.size_bytes
            channel.receive_at_site()
            started = time.perf_counter()
            h_i = site.evaluate_merged_round(
                plan.base.source, md_round.steps, plan.expression.key
            )
            reply = msg.Message.with_relation(
                msg.SUB_RESULT, site_id, region_name, round_number, h_i,
                codec=wire_codec,
            )
            link.compute_s += time.perf_counter() - started
        else:
            started = time.perf_counter()
            ship_filter = md_round.ship_filter(site_id)
            if ship_filter is None:
                fragment = region_fragment
            else:
                predicate = ship_filter.compile(
                    {BASE_VAR: region_fragment.schema}
                )
                fragment = region_fragment.select_fn(
                    lambda row, _predicate=predicate: _predicate({BASE_VAR: row})
                )
            shipment = msg.Message.with_relation(
                msg.SHIP_BASE, region_name, site_id, round_number, fragment,
                codec=wire_codec,
            )
            region_link.compute_s += time.perf_counter() - started
            channel.send_to_site(shipment)
            link.bytes_down += shipment.size_bytes
            link.tuples_down += len(fragment)

            received = channel.receive_at_site()
            started = time.perf_counter()
            h_i = site.evaluate_round(
                received.relation(),
                md_round.steps,
                plan.expression.key,
                md_round.independent_reduction,
            )
            reply = msg.Message.with_relation(
                msg.SUB_RESULT, site_id, region_name, round_number, h_i,
                codec=wire_codec,
            )
            link.compute_s += time.perf_counter() - started

        channel.send_to_coordinator(reply)
        link.bytes_up += reply.size_bytes
        link.tuples_up += len(h_i)
        started = time.perf_counter()
        site_results.append(channel.receive_at_coordinator().relation())
        region_link.compute_s += time.perf_counter() - started

    # Regional merge: combine sub-results by key before forwarding.
    started = time.perf_counter()
    combined = site_results[0]
    for fragment in site_results[1:]:
        combined = combined.union_all(fragment)
    merged = merge_sub_results(combined, plan.expression.key, blocks)
    reply = msg.Message.with_relation(
        msg.SUB_RESULT, region_name, "root", round_number, merged,
        codec=wire_codec,
    )
    region_link.compute_s += time.perf_counter() - started
    root_channel.send_to_coordinator(reply)
    region_link.bytes_up += reply.size_bytes
    region_link.tuples_up += len(merged)

    started = time.perf_counter()
    received = root_channel.receive_at_coordinator().relation()
    round_stats.root_compute_s += time.perf_counter() - started
    return received


def _region_fragment(coordinator, md_round, region_sites) -> Relation:
    """The X fragment a region needs: union of its sites' fragments."""
    filters = [md_round.ship_filter(site_id) for site_id in region_sites]
    if any(ship_filter is None for ship_filter in filters):
        return coordinator.x
    x = coordinator.x
    predicates = [
        ship_filter.compile({BASE_VAR: x.schema}) for ship_filter in filters
    ]
    return x.select_fn(
        lambda row: any(predicate({BASE_VAR: row}) for predicate in predicates)
    )


def _tree_base(
    cluster, plan, coordinator, regions, root_network, stats, topology,
    wire_codec="row", tracer=NULL_TRACER, query_id=None,
):
    base = plan.base
    if base.merged_into_chain:
        return
    if not base.is_distributed:
        if not isinstance(base.source, LiteralBase):
            raise PlanError("non-distributed base must be literal")
        round_stats = stats.new_round("base")
        started = time.perf_counter()
        coordinator.set_base(base.source.relation)
        round_stats.root_compute_s += time.perf_counter() - started
        return

    round_stats = stats.new_round("base")
    fragments = []
    for region_name, region in regions.items():
        region_sites = [
            site_id for site_id in base.sites if site_id in region.site_ids
        ]
        if not region_sites:
            continue
        region_link = round_stats.region(region_name)
        root_channel = root_network.channel(region_name)
        request = msg.Message(msg.BASE_QUERY, "root", region_name, 0)
        root_channel.send_to_site(request)
        region_link.bytes_down += request.size_bytes
        root_channel.receive_at_site()

        pieces = []
        for site_id in region_sites:
            channel = region.network.channel(site_id)
            site = cluster.site(site_id)
            link = round_stats.site(region_name, site_id)
            request = msg.Message(msg.BASE_QUERY, region_name, site_id, 0)
            channel.send_to_site(request)
            link.bytes_down += request.size_bytes
            channel.receive_at_site()

            started = time.perf_counter()
            b_i = site.compute_base(base.source)
            reply = msg.Message.with_relation(
                msg.BASE_RESULT, site_id, region_name, 0, b_i,
                codec=wire_codec,
            )
            link.compute_s += time.perf_counter() - started
            channel.send_to_coordinator(reply)
            link.bytes_up += reply.size_bytes
            link.tuples_up += len(b_i)
            started = time.perf_counter()
            pieces.append(channel.receive_at_coordinator().relation())
            region_link.compute_s += time.perf_counter() - started

        # Regional dedup before forwarding to the root.
        started = time.perf_counter()
        combined = pieces[0]
        for piece in pieces[1:]:
            combined = combined.union_all(piece)
        combined = combined.distinct()
        reply = msg.Message.with_relation(
            msg.BASE_RESULT, region_name, "root", 0, combined,
            codec=wire_codec,
        )
        region_link.compute_s += time.perf_counter() - started
        root_channel.send_to_coordinator(reply)
        region_link.bytes_up += reply.size_bytes
        region_link.tuples_up += len(combined)

        started = time.perf_counter()
        fragments.append(root_channel.receive_at_coordinator().relation())
        round_stats.root_compute_s += time.perf_counter() - started
        hop_attrs = {
            "node": region_name,
            "round": round_stats.index,
            "sites": len(region_sites),
            "bytes_up": region_link.bytes_up,
        }
        if query_id is not None:
            hop_attrs["query_id"] = query_id
        with tracer.span("combiner.hop", kind="relay", **hop_attrs):
            pass

    started = time.perf_counter()
    coordinator.sync_base(fragments)
    round_stats.root_compute_s += time.perf_counter() - started


def execute_query_hierarchical(
    cluster: SimulatedCluster,
    topology: TreeTopology,
    expression,
    options=None,
    wire_codec: Optional[str] = None,
    tracer=None,
    metrics=None,
    query_id=None,
    model: Optional[CostModel] = None,
) -> HierarchicalResult:
    """Plan with Egil, then execute over the coordinator tree."""
    from repro.distributed.optimizer import plan_query

    plan = plan_query(expression, cluster.catalog, options)
    return execute_plan_hierarchical(
        cluster, topology, plan, wire_codec,
        tracer=tracer, metrics=metrics, query_id=query_id, model=model,
    )
