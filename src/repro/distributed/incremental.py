"""Incremental refresh of distributed query results (append-only).

The motivating deployment (Section 1) collects flow records continuously
at each router; analysts keep standing OLAP results that must follow the
data. Because Skalla's aggregates ship as *mergeable sub-aggregates*
(Theorem 1), an already-computed result can absorb new detail tuples
without recomputation over the old data.

:class:`IncrementalView` keeps the global state in **sub-aggregate form**
(one merged row of component values per group — the same shape a
regional coordinator forwards in the tree topology) and finalizes on
read. A refresh with per-site deltas Δᵢ ships:

1. the current group list down to each site, which evaluates the blocks
   over **Δᵢ only** and returns the touched groups' delta sub-aggregates;
2. for *new* groups appearing only in the delta (possible when the base
   is a distinct projection), the new group keys down, which each site
   evaluates against its **full** (post-append) partition — necessary
   because with general GMDJ conditions old detail rows can contribute
   to a brand-new group.

Both contributions merge into the state with
:func:`repro.gmdj.operator.merge_sub_results`; the refreshed result is
exactly what full re-evaluation over old+new data returns (tested,
including randomized delta splits).

Scope: append-only (no retractions), single-GMDJ queries (possibly
multi-block, i.e. coalesced) with distributive/algebraic aggregates.
Correlated chains are rejected — a later stage's condition reads earlier
aggregates whose values change with the delta, so those queries must
re-run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.stats import ExecutionStats
from repro.errors import PlanError, SchemaError
from repro.gmdj import operator
from repro.gmdj.expression import DistinctBase, GMDJExpression, LiteralBase
from repro.net import message as msg
from repro.relalg.relation import Relation


@dataclass
class RefreshResult:
    """The refreshed (finalized) relation plus accounting."""

    relation: Relation
    stats: ExecutionStats
    new_groups: int


class IncrementalView:
    """A standing single-GMDJ distributed query result.

    ``source_stats`` — when the view's base state comes from a prior
    distributed run (the query service caches sub-aggregates this way),
    pass that run's :class:`ExecutionStats`. A run that ended in
    ``degrade`` mode *excluded* sites: their detail tuples were never
    captured in the state, so refreshing would silently merge deltas
    onto an under-approximation and present it as exact. Such stats are
    rejected loudly here instead.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        expression: GMDJExpression,
        source_stats: ExecutionStats = None,
    ):
        if source_stats is not None and source_stats.degraded:
            excluded = sorted({site for _round, site in source_stats.excluded_sites})
            raise PlanError(
                "cannot build an incremental view from a degraded run: "
                f"site(s) {', '.join(excluded)} were excluded, so their "
                "detail tuples are missing from the base state; re-run the "
                "query without degradation (or re-seed from the warehouses) "
                "before refreshing"
            )
        if len(expression.steps) != 1:
            raise PlanError(
                "incremental refresh supports single-GMDJ queries only: a "
                "correlated chain's later conditions read earlier aggregates, "
                "which a delta changes — re-run such queries instead"
            )
        step = expression.steps[0]
        if step.has_holistic:
            raise PlanError("holistic aggregates cannot be refreshed incrementally")
        self.cluster = cluster
        self.expression = expression
        self.step = step
        self.key_attrs = list(expression.key)
        #: Global state: one merged sub-aggregate row per group.
        self._h: Relation = self._initial_state()

    # -- construction -------------------------------------------------------------

    def _initial_state(self) -> Relation:
        base = self._current_base_relation(initial=True)
        pieces = []
        for site_id in self.cluster.site_ids:
            site = self.cluster.site(site_id)
            if not site.warehouse.has_table(self.step.detail):
                continue
            detail = site.warehouse.table(self.step.detail)
            h_i, _touched = operator.evaluate_sub(base, detail, self.step.blocks)
            pieces.append(h_i)
        combined = pieces[0]
        for piece in pieces[1:]:
            combined = combined.union_all(piece)
        return operator.merge_sub_results(combined, self.key_attrs, self.step.blocks)

    def _current_base_relation(self, initial: bool = False) -> Relation:
        source = self.expression.base_source
        if isinstance(source, LiteralBase):
            return source.relation
        if isinstance(source, DistinctBase):
            if initial:
                conceptual = self.cluster.conceptual_table(source.table)
                return conceptual.distinct_project(list(source.attrs))
            return self._h.distinct_project(list(source.attrs))
        raise PlanError(f"unsupported base source {source!r}")

    # -- reads ---------------------------------------------------------------------

    def relation(self) -> Relation:
        """The finalized result, computed from the sub-aggregate state."""
        base = self._current_base_relation()
        return operator.super_aggregate(base, self._h, self.key_attrs, self.step.blocks)

    @property
    def group_count(self) -> int:
        return len(self._h)

    # -- maintenance -----------------------------------------------------------------

    def refresh(
        self,
        deltas: Mapping[str, Relation],
        *,
        apply_appends: bool = True,
        network=None,
    ) -> RefreshResult:
        """Absorb per-site appended rows and return the refreshed result.

        By default the deltas are also appended to the site warehouses,
        keeping the cluster consistent for later full queries. Pass
        ``apply_appends=False`` when the caller already applied them (the
        query service appends once, then upgrades every affected cached
        view) — the warehouses must then hold the post-append partitions
        before this call. ``network`` substitutes a private channel set
        (per-query isolation under the concurrent service); default is
        the cluster's shared network.
        """
        detail_name = self.step.detail
        if network is None:
            network = self.cluster.network
        stats = ExecutionStats()
        round_stats = stats.new_round("md", "incremental refresh")

        old_base = self._current_base_relation()
        new_base = self._new_groups_base(deltas)
        fragments = [self._h]

        for site_id, delta in deltas.items():
            site = self.cluster.site(site_id)
            site_schema = site.warehouse.schema(detail_name)
            if delta.schema != site_schema:
                raise SchemaError(
                    f"delta for {site_id!r} has schema {delta.schema!r}, "
                    f"table has {site_schema!r}"
                )
            channel = network.channel(site_id)
            site_stats = round_stats.site(site_id)

            shipment = msg.Message.with_relation(
                msg.SHIP_BASE, "coordinator", site_id, 0, old_base
            )
            channel.send_to_site(shipment)
            site_stats.bytes_down += shipment.size_bytes
            site_stats.tuples_down += len(old_base)
            received_base = channel.receive_at_site().relation()

            started = time.perf_counter()
            if apply_appends:
                site.warehouse.append(detail_name, delta)
            h_delta, touched = operator.evaluate_sub(
                received_base, delta, self.step.blocks
            )
            reduced = Relation(
                h_delta.schema,
                [row for row, touch in zip(h_delta.rows, touched) if touch],
            )
            reply = msg.Message.with_relation(
                msg.SUB_RESULT, site_id, "coordinator", 0, reduced
            )
            site_stats.compute_s += time.perf_counter() - started
            channel.send_to_coordinator(reply)
            site_stats.bytes_up += reply.size_bytes
            site_stats.tuples_up += len(reduced)
            started = time.perf_counter()
            fragments.append(channel.receive_at_coordinator().relation())
            round_stats.coordinator_compute_s += time.perf_counter() - started

        # New groups must see every site's FULL data, old rows included.
        if len(new_base):
            for site_id in self.cluster.site_ids:
                site = self.cluster.site(site_id)
                if not site.warehouse.has_table(detail_name):
                    continue
                channel = network.channel(site_id)
                site_stats = round_stats.site(site_id)
                shipment = msg.Message.with_relation(
                    msg.SHIP_BASE, "coordinator", site_id, 1, new_base
                )
                channel.send_to_site(shipment)
                site_stats.bytes_down += shipment.size_bytes
                site_stats.tuples_down += len(new_base)
                received_base = channel.receive_at_site().relation()

                started = time.perf_counter()
                h_new, _touched = operator.evaluate_sub(
                    received_base,
                    site.warehouse.table(detail_name),
                    self.step.blocks,
                )
                reply = msg.Message.with_relation(
                    msg.SUB_RESULT, site_id, "coordinator", 1, h_new
                )
                site_stats.compute_s += time.perf_counter() - started
                channel.send_to_coordinator(reply)
                site_stats.bytes_up += reply.size_bytes
                site_stats.tuples_up += len(h_new)
                started = time.perf_counter()
                fragments.append(channel.receive_at_coordinator().relation())
                round_stats.coordinator_compute_s += time.perf_counter() - started

        started = time.perf_counter()
        combined = fragments[0]
        for fragment in fragments[1:]:
            combined = combined.union_all(fragment)
        self._h = operator.merge_sub_results(
            combined, self.key_attrs, self.step.blocks
        )
        round_stats.coordinator_compute_s += time.perf_counter() - started
        return RefreshResult(self.relation(), stats, len(new_base))

    def _new_groups_base(self, deltas: Mapping[str, Relation]) -> Relation:
        """Groups appearing in the delta but not in the current state."""
        source = self.expression.base_source
        if not isinstance(source, DistinctBase):
            schema = self._h.schema.project(self.key_attrs)
            return Relation.empty(schema)
        key_attrs = list(source.attrs)
        known = {
            tuple(row[position] for position in self._h.schema.positions(key_attrs))
            for row in self._h.rows
        }
        fresh = []
        seen = set(known)
        for delta in deltas.values():
            positions = delta.schema.positions(key_attrs)
            for row in delta.rows:
                key = tuple(row[position] for position in positions)
                if key not in seen:
                    seen.add(key)
                    fresh.append(key)
        schema = self._h.schema.project(key_attrs)
        return Relation(schema, fresh)
