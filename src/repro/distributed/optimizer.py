"""Egil — the GMDJ distributed-plan optimizer (Section 4 of the paper).

Egil turns a :class:`~repro.gmdj.expression.GMDJExpression` into a
:class:`~repro.distributed.plan.Plan`, applying whichever of the four
optimizations its toggles enable *and* whose correctness preconditions
can be proved from the distribution catalog:

1. **Coalescing** — adjacent steps over the same detail table merge when
   the outer conditions do not reference inner outputs (Section 4.3).
2. **Synchronization reduction** — consecutive steps whose conditions all
   entail equality on a common partition attribute chain locally without
   intermediate synchronization (Theorem 5 / Corollary 1); if
   additionally the base is a distinct-projection of the same detail
   table and every condition entails key equality, the base round merges
   into the first chain round (Proposition 2, Example 4).
3. **Distribution-aware group reduction** — per-site ship filters ¬ψᵢ
   derived from site predicates φᵢ (Theorem 4).
4. **Distribution-independent group reduction** — sites drop untouched
   groups from their sub-results (Proposition 1); needs no catalog
   knowledge at all.

Every optimization degrades gracefully: when a precondition cannot be
proved, the affected rewrite is skipped and the plan stays correct.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import HolisticAggregateError, PlanError
from repro.gmdj.analysis import (
    derive_ship_filter,
    entailed_partition_attribute,
    site_can_match,
    theta_entails_key,
)
from repro.gmdj.coalesce import coalesce
from repro.gmdj.expression import DistinctBase, GMDJExpression
from repro.distributed.plan import BaseRound, MDRound, Plan
from repro.warehouse.catalog import DistributionCatalog


@dataclass(frozen=True)
class OptimizationOptions:
    """Independent toggles for the four optimizations (for ablations)."""

    coalescing: bool = True
    sync_reduction: bool = True
    aware_group_reduction: bool = True
    independent_group_reduction: bool = True
    #: Skip sites whose φᵢ makes every condition unsatisfiable.
    site_pruning: bool = True

    @classmethod
    def none(cls) -> "OptimizationOptions":
        return cls(False, False, False, False, False)

    @classmethod
    def all(cls) -> "OptimizationOptions":
        return cls()


def plan_query_cost_based(
    expression: GMDJExpression,
    catalog: DistributionCatalog,
    statistics,
    candidates: Optional[dict] = None,
) -> Plan:
    """Choose among candidate option sets by estimated traffic.

    The paper's optimizations are individually never harmful in tuple
    traffic, so the all-on plan should always win — but a cost-based
    chooser keeps the optimizer honest when future rewrites with real
    trade-offs (e.g. replication-aware routing) are added, and it gives
    operators a predicted cost before running anything.

    ``statistics`` is a :class:`~repro.distributed.costing.StatisticsStore`;
    ``candidates`` maps names to :class:`OptimizationOptions` (defaults to
    all-on vs all-off).
    """
    from repro.distributed.costing import compare_plans

    candidates = candidates or {
        "all": OptimizationOptions.all(),
        "none": OptimizationOptions.none(),
    }
    plans = {
        name: plan_query(expression, catalog, options)
        for name, options in candidates.items()
    }
    ranked = compare_plans(plans, statistics, catalog)
    best_name, _estimate = ranked[0]
    return plans[best_name]


def plan_query_scheduled(
    expression: GMDJExpression,
    catalog: DistributionCatalog,
    statistics,
    options: Optional[OptimizationOptions] = None,
    model=None,
):
    """Plan a query and choose its merge topology in one step.

    Runs the standard rewrite pipeline, then prices flat-star,
    hierarchical-combiner, and chain-relay merge topologies against the
    statistics store and returns ``(plan, TopologyChoice)``.  The choice
    carries every priced candidate so callers (``repro explain
    --analyze``) can report the estimated saving, and feeds straight
    into :func:`repro.distributed.scheduler.execute_plan_scheduled`.
    """
    from repro.distributed.scheduler import choose_topology
    from repro.net.costmodel import WAN

    plan = plan_query(expression, catalog, options)
    choice = choose_topology(plan, statistics, catalog, model=model or WAN)
    return plan, choice


def plan_query(
    expression: GMDJExpression,
    catalog: DistributionCatalog,
    options: Optional[OptimizationOptions] = None,
) -> Plan:
    """Build a distributed evaluation plan for ``expression``."""
    options = options or OptimizationOptions()
    if expression.has_holistic:
        raise HolisticAggregateError(
            "expression uses a holistic aggregate; only distributive and "
            "algebraic aggregates can be evaluated distributively "
            "(evaluate centrally instead)"
        )
    notes = []

    if options.coalescing:
        coalesced = coalesce(expression)
        if coalesced is not expression:
            saved = len(expression.steps) - len(coalesced.steps)
            notes.append(f"coalescing merged {saved + len(coalesced.steps)} steps "
                         f"into {len(coalesced.steps)} (saved {saved} rounds)")
            expression = coalesced
        else:
            notes.append("coalescing skipped: no adjacent mergeable steps")

    rounds = _group_into_rounds(expression, catalog, options, notes)
    base_round = _plan_base(expression, catalog, options, rounds, notes)
    if base_round.merged_into_chain:
        rounds[0] = replace(rounds[0], merged_base=True)

    if options.aware_group_reduction:
        rounds = [_attach_ship_filters(md_round, catalog, notes) for md_round in rounds]
        if not any(
            ship_filter is not None
            for md_round in rounds
            for ship_filter in md_round.ship_filters.values()
        ):
            notes.append(
                "aware group reduction skipped: no ship filter derivable "
                "from the registered site predicates"
            )
    if options.independent_group_reduction:
        rounds = [replace(md_round, independent_reduction=True) for md_round in rounds]
        notes.append("independent group reduction enabled on all rounds")

    return Plan(expression, base_round, tuple(rounds), tuple(notes))


# ---------------------------------------------------------------------------
# Round formation (synchronization reduction)
# ---------------------------------------------------------------------------


def _group_into_rounds(expression, catalog, options, notes) -> list:
    """Partition the step chain into rounds, chaining under Corollary 1."""
    rounds: list = []
    pending: list = []
    pending_attr: Optional[str] = None

    def flush():
        nonlocal pending, pending_attr
        if pending:
            rounds.append(_make_round(pending, catalog, options))
            pending = []
            pending_attr = None

    for step in expression.steps:
        if not options.sync_reduction:
            rounds.append(_make_round([step], catalog, options))
            continue
        partition_attrs = (
            catalog.partition_attributes(step.detail)
            if catalog.is_registered(step.detail)
            else ()
        )
        conditions = [block.condition for block in step.blocks]
        step_attr = entailed_partition_attribute(conditions, partition_attrs)
        if not pending:
            pending = [step]
            pending_attr = step_attr
            continue
        same_table = pending[-1].detail == step.detail
        if same_table and pending_attr is not None and step_attr == pending_attr:
            pending.append(step)
        else:
            flush()
            pending = [step]
            pending_attr = step_attr
    flush()

    chained = sum(1 for md_round in rounds if md_round.is_chain)
    if chained:
        notes.append(
            f"synchronization reduction chained steps in {chained} round(s) "
            f"(Corollary 1)"
        )
    elif options.sync_reduction and len(expression.steps) > 1:
        notes.append(
            "synchronization reduction skipped: no adjacent steps share an "
            "entailed partition attribute"
        )
    return rounds


def _make_round(steps, catalog, options) -> MDRound:
    detail = steps[0].detail
    if not catalog.is_registered(detail):
        raise PlanError(
            f"detail table {detail!r} has no registered distribution; "
            "register it in the DistributionCatalog first"
        )
    if catalog.is_replicated(detail):
        # Every replica holds the full relation: one site answers, and
        # its sub-aggregates ARE the global sub-aggregates. Running more
        # sites would multiply every contribution.
        return MDRound(steps=tuple(steps), sites=(catalog.sites(detail)[0],))
    sites = list(catalog.sites(detail))
    if options.site_pruning and catalog.has_site_predicates(detail):
        conditions = [block.condition for step in steps for block in step.blocks]
        kept = []
        for site_id in sites:
            phi = catalog.phi(detail, site_id)
            if phi is None or site_can_match(conditions, phi):
                kept.append(site_id)
        sites = kept or sites
    return MDRound(steps=tuple(steps), sites=tuple(sites))


# ---------------------------------------------------------------------------
# Base planning (Proposition 2)
# ---------------------------------------------------------------------------


def _plan_base(expression, catalog, options, rounds, notes) -> BaseRound:
    source = expression.base_source
    if not isinstance(source, DistinctBase):
        return BaseRound(source=source, sites=())
    if not catalog.is_registered(source.table):
        raise PlanError(
            f"base table {source.table!r} has no registered distribution"
        )
    if catalog.is_replicated(source.table):
        # One replica computes B0 for everyone; Proposition 2 is moot
        # (B = B_i at the single participating site, so the merge below
        # would be correct, but a single distinct projection is cheaper
        # and keeps the plan uniform).
        return BaseRound(source=source, sites=(catalog.sites(source.table)[0],))
    base_sites = catalog.sites(source.table)

    if options.sync_reduction and rounds:
        first = rounds[0]
        same_table = all(step.detail == source.table for step in first.steps)
        key_entailed = theta_entails_key(
            [block.condition for block in first.all_blocks()], source.key
        )
        if same_table and key_entailed:
            notes.append(
                "base-values synchronization eliminated (Proposition 2): "
                "sites derive B0 locally inside round 1"
            )
            return BaseRound(source=source, sites=base_sites, merged_into_chain=True)

    return BaseRound(source=source, sites=base_sites)


# ---------------------------------------------------------------------------
# Distribution-aware group reduction (Theorem 4)
# ---------------------------------------------------------------------------


def _attach_ship_filters(md_round: MDRound, catalog, notes) -> MDRound:
    detail = md_round.steps[0].detail
    if not catalog.has_site_predicates(detail):
        return md_round
    conditions = list(md_round.conditions())
    filters = {}
    derived = 0
    for site_id in md_round.sites:
        phi = catalog.phi(detail, site_id)
        if phi is None:
            filters[site_id] = None
            continue
        ship_filter = derive_ship_filter(conditions, phi)
        filters[site_id] = ship_filter
        if ship_filter is not None:
            derived += 1
    if derived:
        notes.append(
            f"aware group reduction: ship filters derived for {derived}/"
            f"{len(md_round.sites)} sites (Theorem 4)"
        )
    return replace(md_round, ship_filters=filters)
