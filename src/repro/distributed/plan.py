"""Distributed evaluation plans.

A plan is "a sequence of rounds, where a round consists of: (i) each
Skalla site performing some computation and communicating the results to
the coordinator, and (ii) the coordinator synchronizing the local results
into a global result, and (possibly) communicating the global result back
to the sites" (Section 3.1).

Two round shapes cover the whole design space of the paper:

- :class:`BaseRound` — compute B₀. Either the coordinator already holds
  it (literal base), or the sites each compute the base query over their
  partition and ship the pieces up (one round of traffic). Under
  Proposition 2 the base round disappears entirely — it is *merged* into
  the first MD round (``merged_into_chain``).
- :class:`MDRound` — one or more GMDJ steps. A round with a single step
  is the vanilla Alg. GMDJDistribEval round: ship X down (unless the
  sites already hold their fragment), evaluate sub-aggregates, ship Hᵢ
  up, synchronize. A round with *several* steps is a
  synchronization-reduced local chain (Theorem 5 / Corollary 1): the
  sites evaluate the whole sub-chain locally and ship the concatenated
  sub-aggregates once.

Per-round optimization annotations:

- ``ship_filters`` — per-site base filters ¬ψᵢ (Theorem 4,
  distribution-aware group reduction);
- ``independent_reduction`` — drop untouched base tuples from Hᵢ
  (Proposition 1);
- ``merged_base`` on the first MD round — Proposition 2 applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlanError
from repro.gmdj.expression import BaseSource, GMDJExpression
from repro.relalg.expressions import Expr


@dataclass(frozen=True)
class BaseRound:
    """Computation of the base-values relation B₀."""

    source: BaseSource
    #: Sites that evaluate the base query (S_B); empty for a literal base
    #: already held by the coordinator.
    sites: tuple = ()
    #: When True, B₀ is never synchronized on its own: the base query is
    #: evaluated by the sites inside the first MD round (Proposition 2).
    merged_into_chain: bool = False

    @property
    def is_distributed(self) -> bool:
        return bool(self.sites)


@dataclass(frozen=True)
class MDRound:
    """One synchronization round covering one or more GMDJ steps."""

    steps: tuple
    #: Participating sites (S_MD); may be a strict subset of all sites.
    sites: tuple
    #: Per-site ship filter ¬ψᵢ over base fields, or None = ship all.
    ship_filters: dict = field(default_factory=dict)
    #: Proposition 1: sites drop base tuples with |RNG| = 0 from Hᵢ.
    independent_reduction: bool = False
    #: Proposition 2: this round also computes B₀ locally at the sites
    #: (no base shipment down, base attrs come back inside Hᵢ).
    merged_base: bool = False

    def __post_init__(self):
        if not self.steps:
            raise PlanError("an MDRound needs at least one step")
        if not self.sites:
            raise PlanError("an MDRound needs at least one site")
        details = {step.detail for step in self.steps}
        if len(details) > 1 and len(self.steps) > 1:
            raise PlanError(
                "a multi-step (sync-reduced) round must use a single detail table"
            )

    @property
    def is_chain(self) -> bool:
        return len(self.steps) > 1

    def all_blocks(self) -> tuple:
        blocks: list = []
        for step in self.steps:
            blocks.extend(step.blocks)
        return tuple(blocks)

    def conditions(self) -> tuple:
        return tuple(block.condition for block in self.all_blocks())

    def ship_filter(self, site_id: str) -> Optional[Expr]:
        return self.ship_filters.get(site_id)


@dataclass
class Plan:
    """A full distributed evaluation plan for a GMDJ expression."""

    expression: GMDJExpression
    base: BaseRound
    rounds: tuple
    #: Human-readable record of which optimizations fired (for tests,
    #: EXPERIMENTS.md and ablation benchmarks).
    notes: tuple = ()

    def __post_init__(self):
        planned_steps = [step for md_round in self.rounds for step in md_round.steps]
        if len(planned_steps) != len(self.expression.steps):
            raise PlanError(
                f"plan covers {len(planned_steps)} steps, expression has "
                f"{len(self.expression.steps)}"
            )
        if self.base.merged_into_chain:
            if not self.rounds or not self.rounds[0].merged_base:
                raise PlanError(
                    "base merged into chain but first MD round lacks merged_base"
                )

    @property
    def synchronization_count(self) -> int:
        """Number of synchronizations (the paper's m + 1 for the naive plan)."""
        count = len(self.rounds)
        if self.base.is_distributed and not self.base.merged_into_chain:
            count += 1
        return count

    def participating_site_counts(self) -> tuple:
        """``(s_0, [s_1..s_m])`` for Theorem 2's bound."""
        base_sites = (
            0
            if self.base.merged_into_chain or not self.base.is_distributed
            else len(self.base.sites)
        )
        return base_sites, [len(md_round.sites) for md_round in self.rounds]

    def applied_optimizations(self) -> tuple:
        """``(name, description)`` pairs for every optimization this plan uses.

        Derived from the plan *shape* (not the notes, which are prose):
        the names match :class:`~repro.distributed.optimizer.\
OptimizationOptions` fields so cost ablation can toggle each one off —
        ``merged_base`` is the exception, riding on ``sync_reduction``.
        """
        applied = []
        coalescing_notes = [
            note for note in self.notes if note.startswith("coalescing merged")
        ]
        if coalescing_notes:
            applied.append(("coalescing", "; ".join(coalescing_notes)))
        chained = sum(1 for md_round in self.rounds if md_round.is_chain)
        if chained:
            applied.append((
                "sync_reduction",
                f"local chains in {chained} round(s) (Theorem 5 / Corollary 1)",
            ))
        if self.base.merged_into_chain:
            applied.append((
                "merged_base",
                "base synchronization merged into round 1 (Proposition 2)",
            ))
        filtered_legs = sum(
            1
            for md_round in self.rounds
            for site in md_round.sites
            if md_round.ship_filters.get(site) is not None
        )
        if filtered_legs:
            applied.append((
                "aware_group_reduction",
                f"ship filters on {filtered_legs} site leg(s) (Theorem 4)",
            ))
        if any(md_round.independent_reduction for md_round in self.rounds):
            applied.append((
                "independent_group_reduction",
                "sites drop |RNG|=0 groups from H_i (Proposition 1)",
            ))
        return tuple(applied)

    def describe(self) -> str:
        lines = []
        if self.base.merged_into_chain:
            lines.append("base: merged into first MD round (Proposition 2)")
        elif self.base.is_distributed:
            lines.append(f"base: distributed over {len(self.base.sites)} sites")
        else:
            lines.append("base: literal at coordinator")
        for index, md_round in enumerate(self.rounds, start=1):
            flags = []
            if md_round.is_chain:
                flags.append(f"chain of {len(md_round.steps)} steps (sync reduction)")
            if md_round.independent_reduction:
                flags.append("independent group reduction")
            if any(
                md_round.ship_filters.get(site) is not None for site in md_round.sites
            ):
                flags.append("aware group reduction")
            if md_round.merged_base:
                flags.append("merged base")
            suffix = f" [{'; '.join(flags)}]" if flags else ""
            lines.append(
                f"round {index}: {len(md_round.steps)} step(s) on "
                f"{len(md_round.sites)} site(s){suffix}"
            )
        if self.notes:
            lines.append("notes: " + "; ".join(self.notes))
        return "\n".join(lines)
