"""Coordinator-side leg recovery: retry policy and degradation.

Alg. GMDJDistribEval's round barrier (Theorem 1 synchronization) needs an
answer from every participating site. When a leg fails — an injected
fault from :mod:`repro.net.faults`, or any transport/codec error — the
coordinator has three choices, selected by ``ExecutionConfig.failure_mode``:

- ``fail_fast`` — propagate the first failure (historic behaviour);
- ``retry`` — re-run the failed leg with exponential backoff until it
  succeeds or the budget (``max_retries`` attempts and the
  ``leg_timeout_s`` wall clock) is spent, then raise
  :class:`~repro.errors.RetryExhaustedError`;
- ``degrade`` — after the same budget, *exclude* the site and let the
  round complete without it. The result is then an under-approximation
  (the excluded site's detail tuples are missing from the aggregates),
  which is recorded loudly in ``ExecutionStats`` rather than hidden.

Only transport-level errors (:class:`~repro.errors.NetworkError`,
:class:`~repro.errors.SerializationError`) are retried; anything else is
a genuine bug and propagates immediately regardless of mode.

A re-run leg must be a clean slate. Between attempts the guard drains the
site's channel queues (a half-delivered fragment must not be consumed by
the next attempt) and discards the sync session's per-source accumulator
bank for the site (an exact undo of any partially absorbed sub-result —
see ``SyncSession.reset_source``). Bytes already charged by failed
attempts stay charged in *both* bookkeepers (channel counters and
``RoundStats``), so ``verify_against_network`` holds under retries: the
traffic really crossed the wire.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import (
    LegDeadlineExceeded,
    NetworkError,
    RetryExhaustedError,
    SerializationError,
)

FAIL_FAST = "fail_fast"
RETRY = "retry"
DEGRADE = "degrade"

FAILURE_MODES = (FAIL_FAST, RETRY, DEGRADE)

#: Error families the retry layer treats as transient. Everything else
#: (schema errors, plan bugs, assertion failures) propagates untouched.
TRANSIENT_ERRORS = (NetworkError, SerializationError)

#: Backoff growth is capped at base * 32 so a long retry budget does not
#: explode into multi-minute sleeps.
_BACKOFF_CAP = 32


class _Excluded:
    """Sentinel a degraded leg returns instead of a result.

    Distinct from ``None`` because streaming (non-merged-base) legs
    legitimately return ``None``.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "EXCLUDED"


EXCLUDED = _Excluded()


class SpeculationController:
    """Per-round deadline arming for speculative straggler re-execution.

    Legs report their completion times; once at least half the round's
    legs have finished, a deadline arms at ``median * factor + slack_s``
    (elapsed from round start). A leg still in flight past the deadline
    may be *abandoned* for a fresh backup attempt — ``try_abandon`` is
    the predicate transports poll mid-wait — provided the round's backup
    budget (``max_backups``) is not spent. First result wins: the guard
    simply re-runs the leg, and the abandoned attempt's traffic is
    re-accounted into the speculative buckets so byte parity with the
    wire holds exactly.

    Thread-safe: legs run on engine worker threads, so completion
    recording and the abandon decision are serialized under one lock.
    """

    def __init__(
        self,
        site_count: int,
        *,
        factor: float = 3.0,
        slack_s: float = 0.05,
        max_backups: int = 1,
        clock=time.perf_counter,
    ):
        if site_count < 1:
            raise ValueError(f"site_count must be >= 1, got {site_count}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1.0, got {factor}")
        if slack_s < 0:
            raise ValueError(f"slack_s must be >= 0, got {slack_s}")
        if max_backups < 0:
            raise ValueError(f"max_backups must be >= 0, got {max_backups}")
        self.site_count = site_count
        self.factor = factor
        self.slack_s = slack_s
        self.max_backups = max_backups
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._completions: list = []
        self._deadline_s = None
        self._backups_used = 0

    @property
    def deadline_s(self):
        """The armed deadline (elapsed seconds), or None while unarmed."""
        with self._lock:
            return self._deadline_s

    @property
    def backups_used(self) -> int:
        with self._lock:
            return self._backups_used

    def record_completion(self) -> None:
        """A leg finished; arm the deadline once a quorum has reported."""
        elapsed = self._clock() - self._started
        with self._lock:
            self._completions.append(elapsed)
            quorum = (self.site_count + 1) // 2
            if self._deadline_s is None and len(self._completions) >= quorum:
                ordered = sorted(self._completions)
                median = ordered[len(ordered) // 2]
                self._deadline_s = median * self.factor + self.slack_s

    def try_abandon(self):
        """Abandon verdict for an in-flight leg.

        Returns the armed deadline (a truthy float) when the leg should
        give up — consuming one unit of backup budget — else ``0.0``.
        Called from transport polling loops, possibly many times per
        second, so it must stay cheap.
        """
        elapsed = self._clock() - self._started
        with self._lock:
            if self._deadline_s is None or elapsed < self._deadline_s:
                return 0.0
            if self._backups_used >= self.max_backups:
                return 0.0
            self._backups_used += 1
            return self._deadline_s


@dataclass(frozen=True)
class RetryPolicy:
    """How the coordinator reacts to a failing site leg."""

    mode: str = FAIL_FAST
    max_retries: int = 2
    backoff_s: float = 0.05
    leg_timeout_s: float = 0.0  # 0 = no wall-clock budget

    def __post_init__(self):
        if self.mode not in FAILURE_MODES:
            raise ValueError(
                f"unknown failure mode {self.mode!r}; "
                f"expected one of {', '.join(FAILURE_MODES)}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.leg_timeout_s < 0:
            raise ValueError(
                f"leg_timeout_s must be >= 0, got {self.leg_timeout_s}"
            )

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        return cls(
            mode=config.failure_mode,
            max_retries=config.max_retries,
            backoff_s=config.retry_backoff_s,
            leg_timeout_s=config.leg_timeout_s,
        )

    @property
    def attempts(self) -> int:
        """Total leg attempts: the first try plus the retries."""
        return 1 if self.mode == FAIL_FAST else self.max_retries + 1

    def backoff_for(self, retry_number: int) -> float:
        """Sleep before retry ``retry_number`` (0-based): exponential, capped."""
        if self.backoff_s <= 0:
            return 0.0
        return self.backoff_s * min(2 ** retry_number, _BACKOFF_CAP)


def guard_leg(
    leg,
    *,
    policy: RetryPolicy,
    network,
    round_index: int,
    round_stats,
    tracer,
    session=None,
    speculation=None,
    sleep=time.sleep,
    clock=time.perf_counter,
):
    """Wrap a per-site leg callable with the retry/degrade policy.

    Returns a callable with the same ``leg(site_id)`` signature for the
    execution engine. The wrapper re-runs the leg on transient errors per
    ``policy``; in ``degrade`` mode an exhausted site yields the
    :data:`EXCLUDED` sentinel instead of raising, and the exclusion is
    recorded on ``round_stats``. Each attempt begins with
    ``channel.begin_attempt`` so injected crash schedules advance
    deterministically no matter which engine runs the leg.

    Budget discipline: the exhaustion decision (attempts *and* wall
    clock) is made before any backoff sleep, so a leg never sleeps after
    its final attempt's failure; and each sleep is capped by the leg's
    remaining ``leg_timeout_s`` budget, so the total slept time can never
    push the leg past its configured timeout — the remaining slice is
    still spent on one last (shorter-backoff) attempt rather than
    forfeited. ``sleep``/``clock`` are injectable so tests can drive the
    schedule deterministically; both must tell the same time story.

    With a :class:`SpeculationController` (``speculation``), each attempt
    is armed with the controller's abandon predicate. An attempt the
    transport abandons (:class:`~repro.errors.LegDeadlineExceeded`) is
    *not* a failure: its byte charges move to the speculative buckets,
    the slate is cleaned exactly as for a retry, and the leg re-runs
    immediately without consuming retry budget — first result wins.
    ``LegDeadlineExceeded`` subclasses ``NetworkError``, so the abandon
    branch must (and does) come before the transient-retry branch.
    """
    metrics = network.metrics

    def guarded(site_id):
        channel = network.channel(site_id)
        if speculation is not None:
            channel.arm_speculation(speculation.try_abandon)
        try:
            return _run_attempts(site_id, channel)
        finally:
            if speculation is not None:
                channel.arm_speculation(None)

    def _run_attempts(site_id, channel):
        started = clock()
        retry_number = 0
        abandoned = 0
        while True:
            site_stats = round_stats.site(site_id)
            # Snapshot the down-side charges so an abandoned attempt's
            # contribution can be moved to the speculative buckets.
            snap_bytes_down = site_stats.bytes_down
            snap_tuples_down = site_stats.tuples_down
            snap_row_equiv_down = site_stats.row_equiv_bytes_down
            # Mark where this attempt's spans begin so an abandoned
            # attempt's spans can be tagged speculative (they describe
            # work the backup re-does — profiles must not double-count).
            span_mark = len(tracer.spans)
            channel.begin_attempt(round_index)
            try:
                result = leg(site_id)
            except LegDeadlineExceeded as error:
                # The speculative deadline fired mid-flight. The
                # attempt's traffic really crossed the wire, so its byte
                # charges move (not vanish): down-side to the
                # speculative bucket, partial up-frames (already counted
                # by the channel oracle) likewise. Tuple and row-equiv
                # charges are rolled back — the backup re-ships them.
                site_stats.speculative_bytes_down += (
                    site_stats.bytes_down - snap_bytes_down
                )
                site_stats.bytes_down = snap_bytes_down
                site_stats.tuples_down = snap_tuples_down
                site_stats.row_equiv_bytes_down = snap_row_equiv_down
                site_stats.speculative_bytes_up += error.partial_up_bytes
                site_stats.speculative_attempts += 1
                abandoned += 1
                channel.drain_pending()
                if session is not None:
                    session.reset_source(site_id)
                # Tag the abandoned attempt's spans so profiles exclude
                # them: the backup attempt re-records the same work, and
                # counting both would double-charge the stage totals.
                # The site filter keeps interleaved spans from other
                # legs (threads engine) untouched.
                for span in list(tracer.spans)[span_mark:]:
                    if span.attributes.get("site") == site_id:
                        span.set(speculative=True)
                metrics.counter("net.speculation.abandoned", site=site_id).inc()
                with tracer.span(
                    "leg.speculate",
                    kind="recovery",
                    site=site_id,
                    round=round_index,
                    deadline_s=error.deadline_s,
                ):
                    pass
                continue
            except TRANSIENT_ERRORS as error:
                if policy.mode == FAIL_FAST:
                    raise
                attempts_made = retry_number + 1
                # Clean slate for the next attempt (or for the round's
                # merge if this site ends up excluded): no stale queued
                # messages, no partially absorbed sub-result fragments.
                channel.drain_pending()
                if session is not None:
                    session.reset_source(site_id)
                if policy.leg_timeout_s > 0:
                    remaining = policy.leg_timeout_s - (clock() - started)
                else:
                    remaining = None
                exhausted = attempts_made >= policy.attempts or (
                    remaining is not None and remaining <= 0
                )
                if exhausted:
                    # No trailing sleep: nothing runs after this point,
                    # so backing off would only delay the raise/exclude.
                    metrics.counter(
                        "net.retry.exhausted", site=site_id, mode=policy.mode
                    ).inc()
                    if policy.mode == RETRY:
                        raise RetryExhaustedError(
                            site_id, attempts_made, cause=error
                        ) from error
                    # DEGRADE: complete the round without this site.
                    round_stats.exclude(site_id)
                    metrics.counter("net.degrade.excluded", site=site_id).inc()
                    with tracer.span(
                        "leg.degrade",
                        kind="recovery",
                        site=site_id,
                        round=round_index,
                        attempts=attempts_made,
                        cause=type(error).__name__,
                    ):
                        pass
                    return EXCLUDED
                backoff = policy.backoff_for(retry_number)
                if remaining is not None:
                    # Cap by the remaining wall-clock budget: the leg may
                    # retry once more inside its timeout, never beyond it.
                    backoff = min(backoff, remaining)
                retry_number += 1
                round_stats.site(site_id).retries += 1
                metrics.counter("net.retry.attempts", site=site_id).inc()
                with tracer.span(
                    "leg.retry",
                    kind="recovery",
                    site=site_id,
                    round=round_index,
                    attempt=retry_number,
                    cause=type(error).__name__,
                ):
                    pass
                if backoff > 0:
                    sleep(backoff)
            else:
                if speculation is not None:
                    speculation.record_completion()
                    if abandoned:
                        site_stats.speculation_won = True
                return result

    return guarded
