"""Cost-driven merge-topology scheduling.

The paper's Section 6 names alternative architectures — multi-tiered
coordinators and spanning-tree networks — as future work; this repo
implements both (:mod:`repro.distributed.hierarchy`,
:mod:`repro.distributed.spanning`) next to the flat star evaluator. This
module closes the loop: instead of the *caller* hard-coding a topology,
the scheduler prices every candidate with the plan's traffic estimate
(:func:`repro.distributed.costing.estimate_topology_costs`) and executes
the cheapest one, so ``execute_plan_scheduled`` is the single entry
point and the topology becomes a planner decision like any other.

Decision inputs, per query:

- the plan's estimated per-round tuple volumes (|Q|, per-site down/up);
- the cost model (latency/bandwidth of the coordinator's links);
- the candidate shapes: flat star, two-level hierarchies (region
  counts), and deeper chain/relay trees (fanouts).

Objective: minimum estimated response time, ties broken by root-link
bytes (the scarce resource), then by simplicity (flat wins exact ties).

Every topology is result-equivalent for every plan the optimizer emits —
the hierarchy/spanning tests prove bit-identical relations — so the
choice is purely a performance decision and can never change an answer.

Non-flat execution runs in-process against local sites, so the scheduler
only considers non-flat candidates for simulated clusters on clean runs:
socket deployments, fault plans, and speculative re-execution all pin
the topology to flat (where the recovery and transport layers live).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costing import (
    StatisticsStore,
    TopologyEstimate,
    estimate_topology_costs,
)
from repro.distributed.evaluator import (
    DistributedResult,
    ExecutionConfig,
    execute_plan,
)
from repro.distributed.hierarchy import TreeTopology, execute_plan_hierarchical
from repro.distributed.plan import Plan
from repro.distributed.spanning import chain_tree, execute_plan_spanning
from repro.distributed.stats import ExecutionStats
from repro.errors import PlanError
from repro.net.costmodel import CostModel, WAN

#: Candidate shape parameters the scheduler prices by default.
DEFAULT_REGION_COUNTS = (2, 4)
DEFAULT_FANOUTS = (2, 3)


@dataclass
class TopologyChoice:
    """The scheduler's decision for one query, with its evidence.

    ``chosen``/``candidates`` carry the estimates the decision was made
    on; ``measured_response_time_s`` and ``measured_root_link_bytes``
    are filled in after execution so ``repro explain --analyze`` can
    report the measured-vs-estimated saving honestly.
    """

    chosen: TopologyEstimate
    candidates: tuple = ()
    reason: str = ""
    model: CostModel = field(default_factory=lambda: WAN)
    measured_response_time_s: Optional[float] = None
    measured_root_link_bytes: Optional[int] = None

    @property
    def topology(self) -> str:
        return self.chosen.label

    @property
    def flat(self) -> TopologyEstimate:
        for candidate in self.candidates:
            if candidate.kind == "flat":
                return candidate
        return self.chosen

    @property
    def estimated_saving_s(self) -> float:
        """Predicted response-time saving vs the flat star."""
        return self.flat.response_time_s - self.chosen.response_time_s

    @property
    def measured_saving_s(self) -> Optional[float]:
        """Measured response time vs the flat *estimate* (None pre-run)."""
        if self.measured_response_time_s is None:
            return None
        return self.flat.response_time_s - self.measured_response_time_s

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "reason": self.reason,
            "chosen": self.chosen.to_dict(),
            "candidates": [candidate.to_dict() for candidate in self.candidates],
            "estimated_saving_s": self.estimated_saving_s,
            "measured_response_time_s": self.measured_response_time_s,
            "measured_saving_s": self.measured_saving_s,
            "measured_root_link_bytes": self.measured_root_link_bytes,
        }


def choose_topology(
    plan: Plan,
    statistics: StatisticsStore,
    catalog=None,
    model: CostModel = WAN,
    allow_non_flat: bool = True,
    region_counts=DEFAULT_REGION_COUNTS,
    fanouts=DEFAULT_FANOUTS,
) -> TopologyChoice:
    """Pick the cheapest merge topology for one plan.

    Ranking key: estimated response time, then root-link bytes, then
    flat-first (an exact tie never buys complexity). With
    ``allow_non_flat=False`` only the flat candidate is priced — used
    when the execution context (sockets, faults, speculation) pins the
    topology.
    """
    candidates = estimate_topology_costs(
        plan, statistics, catalog, model=model,
        region_counts=region_counts if allow_non_flat else (),
        fanouts=fanouts if allow_non_flat else (),
    )
    ranked = sorted(
        candidates,
        key=lambda candidate: (
            candidate.response_time_s,
            candidate.root_link_bytes,
            0 if candidate.kind == "flat" else 1,
            candidate.label,
        ),
    )
    chosen = ranked[0]
    flat = next(c for c in candidates if c.kind == "flat")
    if chosen.kind == "flat":
        reason = (
            f"flat star is cheapest ({chosen.response_time_s:.4f}s estimated); "
            f"{len(candidates) - 1} alternative(s) priced"
        )
    else:
        reason = (
            f"{chosen.label} saves {flat.response_time_s - chosen.response_time_s:.4f}s "
            f"({flat.response_time_s:.4f}s flat -> {chosen.response_time_s:.4f}s) "
            f"and cuts root-link bytes {flat.root_link_bytes:.0f} -> "
            f"{chosen.root_link_bytes:.0f}"
        )
    return TopologyChoice(
        chosen=chosen, candidates=candidates, reason=reason, model=model
    )


# ---------------------------------------------------------------------------
# TreeStats / SpanningStats -> ExecutionStats views
# ---------------------------------------------------------------------------

#: Pseudo-site prefix for region-combiner links in converted stats.
COMBINER_PREFIX = "combiner:"
#: Pseudo-site prefix for relay-node edges in converted stats.
RELAY_PREFIX = "relay:"


def execution_stats_from_tree(
    tree_stats, topology_label: str, wire_codec: str = "row", query_id=None
) -> ExecutionStats:
    """View a hierarchical run's TreeStats as flat-shaped ExecutionStats.

    Site links keep their site ids; root→region links appear as
    ``combiner:<region>`` pseudo-sites, so byte totals equal
    ``TreeStats.bytes_total`` (every link's traffic counted once) and
    the profile/explain pipeline renders hierarchical runs without a
    second code path. Response-time math should use the native
    ``TreeStats`` (the flat max-over-sites formula cannot see the
    root→region serialization); the scheduler records the native number
    on its :class:`TopologyChoice`.
    """
    stats = ExecutionStats(
        executor="serial", topology=topology_label,
        wire_codec=wire_codec, query_id=query_id,
    )
    for tree_round in tree_stats.rounds:
        round_stats = stats.new_round(
            tree_round.kind,
            f"regions={len(tree_round.region_links)} "
            f"sites={len(tree_round.site_links)}",
        )
        for (region, site_id), link in tree_round.site_links.items():
            site = round_stats.site(site_id)
            site.bytes_down += link.bytes_down
            site.bytes_up += link.bytes_up
            site.tuples_down += link.tuples_down
            site.tuples_up += link.tuples_up
            site.compute_s += link.compute_s
            site.row_equiv_bytes_down += link.bytes_down
            site.row_equiv_bytes_up += link.bytes_up
        for region, link in tree_round.region_links.items():
            pseudo = round_stats.site(f"{COMBINER_PREFIX}{region}")
            pseudo.bytes_down += link.bytes_down
            pseudo.bytes_up += link.bytes_up
            pseudo.tuples_down += link.tuples_down
            pseudo.tuples_up += link.tuples_up
            pseudo.compute_s += link.compute_s
            pseudo.row_equiv_bytes_down += link.bytes_down
            pseudo.row_equiv_bytes_up += link.bytes_up
        round_stats.coordinator_compute_s += tree_round.root_compute_s
    return stats


def execution_stats_from_spanning(
    spanning_stats, tree, query_id=None
) -> ExecutionStats:
    """View a spanning-tree run's stats as flat-shaped ExecutionStats.

    Leaf edges keep their site ids; relay edges appear as
    ``relay:<node>`` pseudo-sites. Byte totals equal
    ``SpanningStats.bytes_total``; see
    :func:`execution_stats_from_tree` for the response-time caveat.
    """
    leaves = set(tree.leaves())
    depth = tree.depth()
    stats = ExecutionStats(
        executor="serial", topology=f"chain:{depth}", query_id=query_id,
    )
    for spanning_round in spanning_stats.rounds:
        round_stats = stats.new_round(
            spanning_round.kind, f"edges={len(spanning_round.edges)}"
        )
        for name, edge in spanning_round.edges.items():
            label = name if name in leaves else f"{RELAY_PREFIX}{name}"
            site = round_stats.site(label)
            site.bytes_down += edge.bytes_down
            site.bytes_up += edge.bytes_up
            site.compute_s += edge.compute_s
            site.row_equiv_bytes_down += edge.bytes_down
            site.row_equiv_bytes_up += edge.bytes_up
        round_stats.coordinator_compute_s += spanning_round.root_compute_s
    return stats


# ---------------------------------------------------------------------------
# Scheduled execution
# ---------------------------------------------------------------------------


def _parse_topology_label(label: str):
    """``"flat" | "hierarchical:R" | "chain:F"`` -> (kind, parameter)."""
    if label == "flat":
        return "flat", 0
    kind, _, raw = label.partition(":")
    if kind in ("hierarchical", "chain") and raw.isdigit() and int(raw) > 0:
        return kind, int(raw)
    raise PlanError(
        f"unknown topology {label!r}; expected 'auto', 'flat', "
        "'hierarchical:<regions>' or 'chain:<fanout>'"
    )


def execute_plan_scheduled(
    cluster,
    plan: Plan,
    config: Optional[ExecutionConfig] = None,
    tracer=None,
    metrics=None,
    query_id=None,
    statistics: Optional[StatisticsStore] = None,
    model: CostModel = WAN,
    topology: str = "auto",
) -> DistributedResult:
    """Execute a plan under the scheduler-selected merge topology.

    The drop-in, planner-driven replacement for calling
    ``execute_plan`` / ``execute_plan_hierarchical`` /
    ``execute_plan_spanning`` directly: the topology becomes an output
    of cost-based planning rather than a caller decision. Returns a
    :class:`~repro.distributed.evaluator.DistributedResult` whose
    ``stats.topology`` names the executed shape and whose
    ``topology_choice`` carries the full decision (candidates, reason,
    measured-vs-estimated numbers).

    ``topology`` forces a shape (``"flat"``, ``"hierarchical:2"``,
    ``"chain:2"``) or lets the cost model decide (``"auto"``). Non-flat
    shapes need in-process sites and a clean run: socket transports,
    fault plans and speculation pin the choice to flat (those layers
    live in the star evaluator), recorded in the choice's reason.
    """
    config = config or ExecutionConfig()
    pinned_reason = _pinned_to_flat_reason(cluster, config)
    allow_non_flat = pinned_reason is None

    if statistics is None and isinstance(cluster, SimulatedCluster):
        statistics = StatisticsStore.from_cluster(cluster)

    if topology == "auto":
        if statistics is None:
            choice = _flat_only_choice(
                plan, model, "no statistics available for costing"
            )
        else:
            choice = choose_topology(
                plan, statistics, cluster.catalog, model=model,
                allow_non_flat=allow_non_flat,
            )
            if pinned_reason is not None:
                choice.reason = f"pinned to flat: {pinned_reason}"
    else:
        kind, parameter = _parse_topology_label(topology)
        if kind != "flat" and pinned_reason is not None:
            raise PlanError(
                f"topology {topology!r} unavailable: {pinned_reason}"
            )
        if statistics is not None:
            priced = choose_topology(
                plan, statistics, cluster.catalog, model=model,
                allow_non_flat=True,
                region_counts=(parameter,) if kind == "hierarchical" else (),
                fanouts=(parameter,) if kind == "chain" else (),
            )
            candidates = priced.candidates
        else:
            candidates = (TopologyEstimate("flat", "flat"),)
        chosen = next(
            (c for c in candidates if c.kind == kind and c.parameter == parameter),
            TopologyEstimate(topology, kind, parameter),
        )
        choice = TopologyChoice(
            chosen=chosen, candidates=candidates,
            reason=f"topology {topology!r} forced by caller", model=model,
        )

    kind = choice.chosen.kind
    parameter = choice.chosen.parameter
    if kind == "hierarchical":
        tree_topology = TreeTopology.balanced(cluster.site_ids, parameter)
        outcome = execute_plan_hierarchical(
            cluster, tree_topology, plan, wire_codec=config.wire_codec,
            tracer=tracer, metrics=metrics, query_id=query_id, model=model,
        )
        stats = execution_stats_from_tree(
            outcome.stats, choice.chosen.label, config.wire_codec, query_id
        )
        choice.measured_response_time_s = outcome.stats.response_time_s()
        choice.measured_root_link_bytes = outcome.stats.root_link_bytes
        result = DistributedResult(outcome.relation, stats, plan)
    elif kind == "chain":
        tree = chain_tree(list(cluster.site_ids), parameter)
        outcome = execute_plan_spanning(
            cluster, tree, plan,
            tracer=tracer, metrics=metrics, query_id=query_id, model=model,
        )
        stats = execution_stats_from_spanning(outcome.stats, tree, query_id)
        stats.topology = choice.chosen.label
        choice.measured_response_time_s = outcome.stats.response_time_s()
        choice.measured_root_link_bytes = outcome.stats.root_edge_bytes(tree)
        result = DistributedResult(outcome.relation, stats, plan)
    else:
        result = execute_plan(
            cluster, plan, config, tracer=tracer, metrics=metrics,
            query_id=query_id,
        )
        result.stats.topology = "flat"
        choice.measured_response_time_s = result.stats.response_time_s(model)
        choice.measured_root_link_bytes = result.stats.bytes_total
    result.topology_choice = choice
    return result


def execute_query_scheduled(
    cluster,
    expression,
    options=None,
    config: Optional[ExecutionConfig] = None,
    tracer=None,
    metrics=None,
    query_id=None,
    statistics: Optional[StatisticsStore] = None,
    model: CostModel = WAN,
    topology: str = "auto",
) -> DistributedResult:
    """Plan with Egil, then execute under the scheduled topology."""
    from repro.distributed.optimizer import plan_query

    plan = plan_query(expression, cluster.catalog, options)
    return execute_plan_scheduled(
        cluster, plan, config, tracer=tracer, metrics=metrics,
        query_id=query_id, statistics=statistics, model=model,
        topology=topology,
    )


def _pinned_to_flat_reason(cluster, config: ExecutionConfig) -> Optional[str]:
    """Why this execution context cannot run a non-flat topology."""
    if not isinstance(cluster, SimulatedCluster):
        return "non-flat merging needs in-process sites (simulated cluster)"
    if config.executor == "sockets":
        return "socket transport runs the flat star protocol"
    if getattr(cluster.network, "faults", None) is not None:
        return "fault injection targets the flat star's channels"
    if config.speculation:
        return "speculative re-execution lives in the flat star's recovery layer"
    return None


def _flat_only_choice(plan: Plan, model: CostModel, reason: str) -> TopologyChoice:
    flat = TopologyEstimate("flat", "flat")
    return TopologyChoice(
        chosen=flat, candidates=(flat,),
        reason=f"pinned to flat: {reason}", model=model,
    )
