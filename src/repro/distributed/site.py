"""Skalla sites: the local-warehouse side of Alg. GMDJDistribEval.

A site owns its partition of every fact relation and performs all
detail-data processing — detail tuples never leave the site (Section 3).
Per round, a site:

1. receives its (possibly group-reduced) fragment of the base-result
   structure X — or derives the base locally under Proposition 2;
2. evaluates the round's GMDJ step(s) against its local detail partition,
   producing the sub-aggregate relation Hᵢ; multi-step rounds chain
   locally without synchronization (Theorem 5 / Corollary 1);
3. optionally applies distribution-independent group reduction
   (Proposition 1): rows with |RNG| = 0 across all of the round's
   conditions are dropped from Hᵢ;
4. ships Hᵢ — projected to the key attributes plus sub-aggregate columns
   — back to the coordinator.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import WarehouseError
from repro.gmdj import operator
from repro.gmdj.expression import BaseSource, MDStep
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema
from repro.warehouse.storage import LocalWarehouse


class SkallaSite:
    """One local data warehouse plus its query-evaluation logic."""

    def __init__(self, site_id: str, warehouse: LocalWarehouse):
        self.site_id = site_id
        self.warehouse = warehouse

    # -- round handlers ----------------------------------------------------------

    def compute_base(self, source: BaseSource) -> Relation:
        """Evaluate the base-values query over the local partition."""
        return source.evaluate(self.warehouse.tables())

    def evaluate_round(
        self,
        base_fragment: Relation,
        steps: Sequence[MDStep],
        key_attrs: Sequence[str],
        independent_reduction: bool,
    ) -> Relation:
        """Evaluate one round's steps locally; return the shipped Hᵢ.

        ``base_fragment`` is this site's fragment of X (already decoded
        from the wire). For multi-step rounds the steps chain locally:
        each step's *finalized* output becomes the next step's base —
        correct precisely under the optimizer-verified Corollary 1
        precondition that every group's detail data is site-local.
        """
        detail = self.warehouse.table(steps[0].detail)
        current_base = base_fragment
        sub_columns: list = []  # row-aligned sub-value tuples per step
        touched_any = [False] * len(base_fragment.rows)

        for index, step in enumerate(steps):
            if step.detail != steps[0].detail:
                raise WarehouseError(
                    "chained steps must share one detail table"
                )
            is_last = index == len(steps) - 1
            if is_last:
                sub, touched = operator.evaluate_sub(current_base, detail, step.blocks)
                full = None
            else:
                full, sub, touched = operator.evaluate_both(
                    current_base, detail, step.blocks
                )
            base_width = len(current_base.schema)
            sub_columns.append(
                [row[base_width:] for row in sub.rows]
            )
            touched_any = [a or b for a, b in zip(touched_any, touched)]
            if not is_last:
                current_base = full

        # Assemble H_i: key attributes + concatenated sub columns.
        key_positions = base_fragment.schema.positions(key_attrs)
        rows = []
        for row_index, base_row in enumerate(base_fragment.rows):
            if independent_reduction and not touched_any[row_index]:
                continue
            key = tuple(base_row[position] for position in key_positions)
            subs: tuple = ()
            for per_step in sub_columns:
                subs += per_step[row_index]
            rows.append(key + subs)

        attributes = list(base_fragment.schema.project(key_attrs).attributes)
        for step in steps:
            for block in step.blocks:
                attributes.extend(block.sub_attributes())
        return Relation(Schema(attributes), rows)

    def evaluate_merged_round(
        self,
        source: BaseSource,
        steps: Sequence[MDStep],
        key_attrs: Sequence[str],
    ) -> Relation:
        """Proposition 2 round: derive Bᵢ locally, then evaluate the steps.

        Every row of the local base is a locally generated group, so
        independent group reduction has nothing to drop here.
        """
        local_base = self.compute_base(source)
        return self.evaluate_round(
            local_base, steps, key_attrs, independent_reduction=False
        )
