"""The ``repro site-server`` process: one Skalla site behind TCP.

A site server owns one on-disk partition store directory, loads its
site's tables into a :class:`~repro.warehouse.storage.LocalWarehouse` at
startup, and then serves the frame protocol of
:mod:`repro.net.socket_channel` forever: buffering shipped-down
``SHIP_BASE`` payloads per connection, running
:func:`~repro.distributed.executor.perform_isolated_request` on REQ, and
streaming the reply payloads back as MSG frames before the REPLY.

Because the partition lives on disk, a killed site process can be
restarted and *rejoin* the cluster serving exactly the data it held
before — the restart/rejoin half of the deployment mode's recovery
story (the retry half is the coordinator's ``guard_leg``, which treats a
dead connection like a crashed leg).

Store layout under ``root``::

    cluster.json                 {"version": 1, "site_ids": [...]}
    catalog.pickle               the pickled DistributionCatalog
    sites/<site_id>/manifest.json
    sites/<site_id>/<nnn>.skrl   row-codec encoded partition relations
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import sys
import threading
import time
from typing import Optional, Tuple

from repro.distributed.executor import SiteRequest, perform_isolated_request
from repro.distributed.site import SkallaSite
from repro.errors import DeploymentError, NetworkError, ReproError
from repro.net import serialize
from repro.net.message import BASE_RESULT, SHIP_BASE, SUB_RESULT
from repro.net.socket_channel import (
    FLAG_DROPPED,
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_MSG,
    FRAME_PING,
    FRAME_REPLY,
    FRAME_REQ,
    FRAME_RESET,
    FRAME_SHUTDOWN,
    FRAME_TELEMETRY,
    FRAME_WELCOME,
    decode_wire_message,
    encode_wire_message,
    read_frame,
    write_frame,
)
from repro.obs.flightrec import DEFAULT_CAPACITY, FlightRecorder, flight_path
from repro.obs.metrics import BYTES_BUCKETS, SECONDS_BUCKETS, MetricsRegistry
from repro.warehouse.storage import LocalWarehouse

CLUSTER_SPEC = "cluster.json"
CATALOG_PICKLE = "catalog.pickle"
MANIFEST = "manifest.json"

#: Environment knob injecting an artificial clock offset (seconds) into
#: everything the site reports on its own clock — PING samples and
#: shipped span timestamps — for skew-correction tests and demos.
CLOCK_OFFSET_ENV = "REPRO_SITE_CLOCK_OFFSET_S"


def _rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    return int(usage.ru_maxrss) * scale


# -- partition store ---------------------------------------------------------------


def write_partition_store(cluster, root: str) -> None:
    """Persist a simulated cluster's placement so site servers can serve it.

    Every site partition is written with the row codec (the reference
    codec — decoding it is the loudest-failing path), plus a manifest
    carrying row counts and data versions, the pickled distribution
    catalog, and the cluster spec listing the member sites.
    """
    os.makedirs(root, exist_ok=True)
    with open(os.path.join(root, CLUSTER_SPEC), "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "site_ids": list(cluster.site_ids)}, handle)
    with open(os.path.join(root, CATALOG_PICKLE), "wb") as handle:
        pickle.dump(cluster.catalog, handle)
    for site_id in cluster.site_ids:
        warehouse = cluster.sites[site_id].warehouse
        site_dir = os.path.join(root, "sites", site_id)
        os.makedirs(site_dir, exist_ok=True)
        tables = {}
        for index, table_name in enumerate(warehouse.table_names()):
            relation = warehouse.table(table_name)
            file_name = f"{index:03d}.skrl"
            with open(os.path.join(site_dir, file_name), "wb") as handle:
                handle.write(serialize.encode_relation(relation, "row"))
            tables[table_name] = {
                "rows": len(relation),
                "version": warehouse.version(table_name),
                "file": file_name,
            }
        with open(os.path.join(site_dir, MANIFEST), "w", encoding="utf-8") as handle:
            json.dump({"site_id": site_id, "tables": tables}, handle)


def read_cluster_spec(root: str) -> dict:
    path = os.path.join(root, CLUSTER_SPEC)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise DeploymentError(f"cannot read cluster spec {path!r}: {error}") from None
    if not isinstance(spec.get("site_ids"), list) or not spec["site_ids"]:
        raise DeploymentError(f"cluster spec {path!r} lists no sites")
    return spec


def read_manifest(root: str, site_id: str) -> dict:
    path = os.path.join(root, "sites", site_id, MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise DeploymentError(
            f"cannot read site manifest {path!r}: {error}"
        ) from None


def load_catalog(root: str):
    path = os.path.join(root, CATALOG_PICKLE)
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.PickleError) as error:
        raise DeploymentError(f"cannot load catalog {path!r}: {error}") from None


def load_site_relation(root: str, site_id: str, entry: dict):
    path = os.path.join(root, "sites", site_id, entry["file"])
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as error:
        raise DeploymentError(f"cannot read partition {path!r}: {error}") from None
    return serialize.decode_relation(payload)


def load_site(root: str, site_id: str) -> SkallaSite:
    """Rebuild one site from its on-disk partition."""
    manifest = read_manifest(root, site_id)
    warehouse = LocalWarehouse(site_id)
    for table_name, entry in manifest.get("tables", {}).items():
        relation = load_site_relation(root, site_id, entry)
        if len(relation) != entry.get("rows", len(relation)):
            raise DeploymentError(
                f"partition {table_name!r} at site {site_id!r} decoded "
                f"{len(relation)} rows, manifest says {entry.get('rows')}"
            )
        warehouse.register(table_name, relation)
    return SkallaSite(site_id, warehouse)


# -- the server --------------------------------------------------------------------


class SiteServer:
    """Serves one site's frame protocol on a listening TCP socket.

    One thread per accepted connection; per-connection state is just the
    buffer of shipped-down payloads (cleared by RESET, and implicitly by
    a reconnect, which by definition starts a fresh connection).
    """

    def __init__(
        self,
        site: SkallaSite,
        host: str = "127.0.0.1",
        port: int = 0,
        clock_offset_s: float = 0.0,
        flight_dir: Optional[str] = None,
        flight_capacity: int = DEFAULT_CAPACITY,
    ):
        self.site = site
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.5)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._threads: list = []
        #: Artificial skew added to every externally visible timestamp
        #: (PING samples, shipped spans) — the site's "wrong clock".
        self.clock_offset_s = float(clock_offset_s)
        self._started = time.perf_counter()
        # Long-lived site-side telemetry, separate from the per-request
        # registry perform_isolated_request ships back on replies.
        self.registry = MetricsRegistry()
        self.registry.counter("site.requests")
        self.registry.counter("site.errors")
        self.registry.gauge("site.queue.depth")
        self.registry.gauge("site.connections")
        self.flight = FlightRecorder(
            capacity=flight_capacity,
            process="site",
            site_id=site.site_id,
            clock=self._clock,
        )
        self._flight_path = (
            flight_path(flight_dir, "site", site.site_id)
            if flight_dir is not None
            else None
        )
        self.flight.record_event(
            "boot", site=site.site_id, pid=os.getpid(), port=self.port
        )
        self._dump_flight()

    def _clock(self) -> float:
        """The site's externally visible clock: monotonic plus skew."""
        return time.perf_counter() + self.clock_offset_s

    def _dump_flight(self) -> None:
        if self._flight_path is not None:
            try:
                self.flight.dump(self._flight_path)
            except OSError:
                pass

    def telemetry_snapshot(self, want=("metrics",)) -> dict:
        """The TELEMETRY-frame body: health plus the requested sections."""
        self.registry.gauge("site.rss.bytes").set(float(_rss_bytes()))
        self.registry.gauge("site.uptime.seconds").set(
            time.perf_counter() - self._started
        )
        snapshot = {
            "site_id": self.site.site_id,
            "pid": os.getpid(),
            "uptime_s": time.perf_counter() - self._started,
        }
        if "metrics" in want:
            snapshot["metrics"] = self.registry.snapshot()
        if "flight" in want:
            header = self.flight.header()
            header.pop("record", None)
            snapshot["flight"] = dict(header, records=self.flight.snapshot())
        return snapshot

    def serve_forever(self) -> None:
        try:
            while not self._stop.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    daemon=True,
                    name=f"site-conn-{self.site.site_id}",
                )
                self._threads.append(thread)
                thread.start()
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def shutdown(self) -> None:
        self._stop.set()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        pending: list = []
        self.registry.gauge("site.connections").add(1)
        try:
            while True:
                try:
                    frame_type, body = read_frame(conn)
                except OSError:
                    return
                if frame_type == FRAME_PING:
                    # NTP-style exchange: t1 = receive, t2 = send, both
                    # on this site's (possibly skewed) clock.
                    t1 = self._clock()
                    pong = json.dumps(
                        {
                            "site_id": self.site.site_id,
                            "t1": t1,
                            "t2": self._clock(),
                        }
                    ).encode("utf-8")
                    try:
                        write_frame(conn, FRAME_PING, pong)
                    except OSError:
                        return
                elif frame_type == FRAME_TELEMETRY:
                    try:
                        want = tuple(
                            json.loads(body.decode("utf-8")).get(
                                "want", ["metrics"]
                            )
                        )
                    except (ValueError, AttributeError):
                        want = ("metrics",)
                    try:
                        write_frame(
                            conn,
                            FRAME_TELEMETRY,
                            json.dumps(
                                self.telemetry_snapshot(want), sort_keys=True
                            ).encode("utf-8"),
                        )
                    except OSError:
                        return
                elif frame_type == FRAME_HELLO:
                    info = json.loads(body.decode("utf-8"))
                    wanted = info.get("site_id")
                    if wanted not in (None, self.site.site_id):
                        self._send_error(
                            conn,
                            NetworkError(
                                f"this server is site {self.site.site_id!r}, "
                                f"not {wanted!r}"
                            ),
                        )
                        return
                    welcome = json.dumps(
                        {
                            "site_id": self.site.site_id,
                            "tables": list(self.site.warehouse.table_names()),
                        }
                    ).encode("utf-8")
                    write_frame(conn, FRAME_WELCOME, welcome)
                elif frame_type == FRAME_MSG:
                    kind, _round, flags, payload = decode_wire_message(body)
                    if flags & FLAG_DROPPED:
                        continue  # lost in (simulated) flight: bytes only
                    if kind == SHIP_BASE:
                        pending.append(payload)
                        self.registry.gauge("site.queue.depth").set(
                            float(len(pending))
                        )
                    # BASE_QUERY and friends are header-only prompts; the
                    # REQ frame carries the actual work description.
                elif frame_type == FRAME_RESET:
                    pending.clear()
                    self.registry.gauge("site.queue.depth").set(0.0)
                elif frame_type == FRAME_REQ:
                    self._handle_request(conn, body, pending)
                    pending.clear()
                    self.registry.gauge("site.queue.depth").set(0.0)
                elif frame_type == FRAME_SHUTDOWN:
                    try:
                        write_frame(conn, FRAME_BYE)
                    except OSError:
                        pass
                    self.flight.record_event("shutdown", graceful=True)
                    self._dump_flight()
                    self.shutdown()
                    return
                else:
                    self._send_error(
                        conn, NetworkError(f"unexpected frame type {frame_type}")
                    )
        finally:
            self.registry.gauge("site.connections").add(-1)
            try:
                conn.close()
            except OSError:
                pass

    def _handle_request(self, conn, body: bytes, pending: list) -> None:
        started = time.perf_counter()
        request = None
        try:
            control = pickle.loads(body)
            expected = control.pop("expected_payloads", 0)
            if control.get("site_id") != self.site.site_id:
                raise NetworkError(
                    f"request for site {control.get('site_id')!r} reached "
                    f"site {self.site.site_id!r}"
                )
            if expected != len(pending):
                # A partial prior attempt left the buffer out of step —
                # transient, so the coordinator drains and retries.
                raise NetworkError(
                    f"payload desync at site {self.site.site_id!r}: "
                    f"expected {expected} shipped blocks, have {len(pending)}"
                )
            request = SiteRequest(
                kind=control["kind"],
                site_id=control["site_id"],
                round_number=control["round_number"],
                steps=tuple(control.get("steps") or ()),
                key_attrs=tuple(control.get("key_attrs") or ()),
                source=control.get("source"),
                independent_reduction=control.get("independent_reduction", False),
                row_block_size=control.get("row_block_size", 0),
                down_payloads=tuple(pending),
                traced=control.get("traced", False),
                query_id=control.get("query_id"),
                engine=control.get("engine", "row"),
                wire_codec=control.get("wire_codec", "row"),
                compute_delay_s=control.get("compute_delay_s", 0.0),
            )
            reply = perform_isolated_request(self.site, request)
        except Exception as error:  # noqa: BLE001 - shipped to the coordinator
            self.registry.counter("site.errors").inc()
            self.flight.record_fault(
                error=type(error).__name__,
                message=str(error),
                kind=getattr(request, "kind", None),
                round=getattr(request, "round_number", None),
            )
            self._dump_flight()
            self._send_error(conn, error)
            return
        elapsed = time.perf_counter() - started
        bytes_down = sum(len(payload) for payload in pending)
        bytes_up = sum(len(payload) for payload in reply.payloads)
        self.registry.counter("site.requests").inc()
        self.registry.counter("site.requests.by_kind", kind=request.kind).inc()
        self.registry.counter("site.rows").inc(reply.rows)
        self.registry.counter("site.bytes", direction="down").inc(bytes_down)
        self.registry.counter("site.bytes", direction="up").inc(bytes_up)
        self.registry.histogram(
            "site.request.seconds", SECONDS_BUCKETS
        ).observe(elapsed)
        self.registry.histogram(
            "site.request.bytes", BYTES_BUCKETS
        ).observe(float(bytes_up))
        spans = tuple(
            self._skewed_span(dict(span)) for span in reply.spans
        )
        self.flight.record_event(
            "request",
            kind=request.kind,
            round=request.round_number,
            rows=reply.rows,
            bytes_down=bytes_down,
            bytes_up=bytes_up,
            elapsed_s=elapsed,
            query_id=request.query_id,
        )
        for span in spans:
            self.flight.record("span", **span)
        # Persist after every request: SIGKILL runs no handlers, so the
        # on-disk ring is the only telemetry a killed site leaves.
        self._dump_flight()
        up_kind = BASE_RESULT if request.kind == "base" else SUB_RESULT
        try:
            for payload in reply.payloads:
                write_frame(
                    conn,
                    FRAME_MSG,
                    encode_wire_message(up_kind, request.round_number, payload),
                )
            meta = {
                "rows": reply.rows,
                "compute_s": reply.compute_s,
                "spans": spans,
                "counters": dict(reply.counters),
                "row_codec_payload_bytes": reply.row_codec_payload_bytes,
                "telemetry": {
                    "pid": os.getpid(),
                    "rss_bytes": _rss_bytes(),
                    "uptime_s": time.perf_counter() - self._started,
                    "requests_total": self.registry.value_of("site.requests"),
                },
            }
            write_frame(conn, FRAME_REPLY, pickle.dumps(meta))
        except OSError:
            # Client went away mid-reply; its reconnect starts clean.
            raise

    def _skewed_span(self, span: dict) -> dict:
        """Shift a shipped span's timestamps onto the site's skewed clock.

        ``perform_isolated_request`` stamps spans with the raw monotonic
        clock; re-basing them here keeps every externally visible site
        timestamp — PING samples and spans alike — in one (possibly
        artificially offset) clock domain, which is exactly what the
        coordinator's skew correction assumes.
        """
        if self.clock_offset_s:
            span["start_s"] = span["start_s"] + self.clock_offset_s
            if span.get("end_s") is not None:
                span["end_s"] = span["end_s"] + self.clock_offset_s
        return span

    def _send_error(self, conn, error: Exception) -> None:
        name = type(error).__name__
        if not isinstance(error, ReproError):
            name = "RemoteSiteError"
        detail = {"error": name, "message": str(error)}
        try:
            write_frame(conn, FRAME_ERROR, pickle.dumps(detail))
        except OSError:
            pass


def request_shutdown(
    host: str, port: int, timeout_s: float = 5.0
) -> bool:
    """Ask a site server to stop; True if it acknowledged with BYE."""
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.settimeout(timeout_s)
            write_frame(sock, FRAME_SHUTDOWN)
            frame_type, _body = read_frame(sock)
            return frame_type == FRAME_BYE
    except OSError:
        return False


def run_site_server(
    store: str,
    site_id: str,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_stream=None,
) -> None:
    """CLI body of ``repro site-server``: load the partition and serve.

    Prints ``READY site=<id> port=<port>`` once listening — the
    deployment layer launches with ``--port 0`` and parses this line to
    learn the ephemeral port.
    """
    spec = read_cluster_spec(store)
    if site_id not in spec["site_ids"]:
        raise DeploymentError(
            f"site {site_id!r} is not in cluster {spec['site_ids']}"
        )
    site = load_site(store, site_id)
    try:
        clock_offset_s = float(os.environ.get(CLOCK_OFFSET_ENV, "0") or 0)
    except ValueError:
        raise DeploymentError(
            f"{CLOCK_OFFSET_ENV} must be a number, got "
            f"{os.environ.get(CLOCK_OFFSET_ENV)!r}"
        ) from None
    server = SiteServer(
        site, host, port, clock_offset_s=clock_offset_s, flight_dir=store
    )
    if threading.current_thread() is threading.main_thread():
        server.flight.install_signal_handler(
            flight_path(store, "site", site_id)
        )
    stream = ready_stream if ready_stream is not None else sys.stdout
    print(f"READY site={site_id} port={server.port}", file=stream, flush=True)
    try:
        server.serve_forever()
    finally:
        server.flight.record_event("exit")
        server._dump_flight()
