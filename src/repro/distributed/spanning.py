"""Spanning-tree networks of arbitrary depth (paper future work, §6).

Where :mod:`repro.distributed.hierarchy` implements the two-level
"multi-tiered coordinator" variant with full per-link statistics, this
module implements the general "spanning-tree networks" variant: an
arbitrary-depth tree whose leaves are Skalla sites and whose internal
nodes are relay coordinators. Every internal node:

- forwards the round's base-result fragment to each child (one copy per
  subtree, filtered to what that subtree's sites can use);
- collects the children's sub-results and *merges them by key*
  (:func:`repro.gmdj.operator.merge_sub_results`) before answering its
  parent — so every edge of the tree carries at most |X| rows per round
  regardless of how many sites sit below it.

The root is the query coordinator: it runs Theorem-1 synchronization on
the merged stream exactly as in the star topology, which is why results
are identical for every plan the optimizer emits.

Statistics are per-edge byte counts plus a recursive critical-path time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.coordinator import Coordinator
from repro.distributed.plan import Plan
from repro.errors import NetworkError, PlanError
from repro.gmdj.expression import LiteralBase
from repro.gmdj.operator import merge_sub_results
from repro.net import message as msg
from repro.net.costmodel import CostModel, WAN
from repro.net.serialize import wire_size
from repro.obs.metrics import activate
from repro.obs.tracer import NULL_TRACER
from repro.relalg.expressions import BASE_VAR
from repro.relalg.relation import Relation


@dataclass(frozen=True)
class TreeNode:
    """A node of the spanning tree: a site (leaf) or a relay (internal)."""

    name: str
    children: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "children", tuple(self.children))

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> tuple:
        if self.is_leaf:
            return (self.name,)
        collected: list = []
        for child in self.children:
            collected.extend(child.leaves())
        return tuple(collected)

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def validate(self) -> None:
        seen: set = set()

        def visit(node: "TreeNode") -> None:
            if node.name in seen:
                raise NetworkError(f"duplicate node name {node.name!r} in tree")
            seen.add(node.name)
            for child in node.children:
                visit(child)

        visit(self)


def chain_tree(site_ids: Sequence[str], fanout: int, prefix: str = "relay") -> TreeNode:
    """Build a balanced tree over ``site_ids`` with the given fanout.

    Leaves are grouped ``fanout`` at a time under relay nodes, then the
    relays are grouped again, until a single root remains. ``fanout``
    must be an integer >= 2: a fanout of 1 (or less) can never shrink a
    level, so the grouping loop would spin forever — that is a caller
    bug and raises ``ValueError``, not a network condition.
    """
    if not isinstance(fanout, int) or isinstance(fanout, bool):
        raise ValueError(f"fanout must be an int, got {fanout!r}")
    if fanout < 2:
        raise ValueError(
            f"fanout must be at least 2 (a fanout of {fanout} cannot reduce "
            "a level, so the tree would never converge)"
        )
    level: list = [TreeNode(site_id) for site_id in site_ids]
    if not level:
        raise NetworkError("a spanning tree needs at least one site")
    counter = 0
    while len(level) > 1:
        grouped: list = []
        for start in range(0, len(level), fanout):
            group = level[start : start + fanout]
            if len(group) == 1:
                grouped.append(group[0])
            else:
                grouped.append(TreeNode(f"{prefix}{counter}", tuple(group)))
                counter += 1
        level = grouped
    root = level[0]
    if root.is_leaf:
        root = TreeNode(f"{prefix}{counter}", (root,))
    root.validate()
    return root


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@dataclass
class EdgeStats:
    """Traffic on the edge between a node and its parent, one round."""

    bytes_down: int = 0
    bytes_up: int = 0
    compute_s: float = 0.0  # the child-side compute (site eval or merge)


@dataclass
class SpanningRoundStats:
    index: int
    kind: str
    edges: dict = field(default_factory=dict)  # node name -> EdgeStats
    #: Child names per internal node, for critical-path recursion.
    children: dict = field(default_factory=dict)
    root_name: str = ""
    root_compute_s: float = 0.0

    def edge(self, name: str) -> EdgeStats:
        return self.edges.setdefault(name, EdgeStats())

    @property
    def bytes_total(self) -> int:
        return sum(edge.bytes_down + edge.bytes_up for edge in self.edges.values())

    def bytes_at_depth(self, names: Sequence[str]) -> int:
        return sum(
            self.edges[name].bytes_down + self.edges[name].bytes_up
            for name in names
            if name in self.edges
        )

    def response_time_s(self, model: CostModel) -> float:
        def node_time(name: str) -> float:
            edge = self.edges.get(name, EdgeStats())
            down = model.transfer_time(edge.bytes_down) if edge.bytes_down else 0.0
            up = model.transfer_time(edge.bytes_up) if edge.bytes_up else 0.0
            subtree = 0.0
            for child in self.children.get(name, ()):
                subtree = max(subtree, node_time(child))
            return down + subtree + edge.compute_s + up

        slowest = 0.0
        for child in self.children.get(self.root_name, ()):
            slowest = max(slowest, node_time(child))
        return slowest + self.root_compute_s


@dataclass
class SpanningStats:
    rounds: list = field(default_factory=list)
    #: The cost model the run was planned/executed under; recorded by
    #: ``execute_plan_spanning`` so no-argument ``response_time_s``
    #: prices with the planning model instead of silently assuming WAN.
    model: Optional[CostModel] = None

    def new_round(self, kind: str, root_name: str) -> SpanningRoundStats:
        stats = SpanningRoundStats(index=len(self.rounds), kind=kind, root_name=root_name)
        self.rounds.append(stats)
        return stats

    @property
    def bytes_total(self) -> int:
        return sum(stats.bytes_total for stats in self.rounds)

    def root_edge_bytes(self, root: TreeNode) -> int:
        """Traffic on the edges directly below the root."""
        names = [child.name for child in root.children]
        return sum(stats.bytes_at_depth(names) for stats in self.rounds)

    def response_time_s(self, model: Optional[CostModel] = None) -> float:
        """Sum-over-rounds critical path.

        ``model`` defaults to the model recorded at execution time (WAN
        when none was), so plan-time and report-time pricing agree.
        """
        model = model or self.model or WAN
        return sum(stats.response_time_s(model) for stats in self.rounds)


@dataclass
class SpanningResult:
    relation: Relation
    stats: SpanningStats
    plan: Plan
    tree: TreeNode


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute_plan_spanning(
    cluster: SimulatedCluster,
    tree: TreeNode,
    plan: Plan,
    tracer=None,
    metrics=None,
    query_id=None,
    model: Optional[CostModel] = None,
) -> SpanningResult:
    """Run a plan over a spanning tree of relays rooted at ``tree``.

    ``tracer``/``metrics`` integrate the run with :mod:`repro.obs` like
    the star evaluator: spans are ``query → round → relay.hop`` (one hop
    per relay node per round, tagged with ``query_id`` like every other
    record), and ``metrics`` becomes the active registry for the
    duration. ``model`` is recorded on the returned
    :class:`SpanningStats` so its no-argument ``response_time_s`` prices
    with the model the run was planned under.
    """
    if tracer is None:
        tracer = NULL_TRACER
    tree.validate()
    if tree.is_leaf:
        raise NetworkError("the root must be a relay, not a site")
    leaves = set(tree.leaves())
    for md_round in plan.rounds:
        missing = set(md_round.sites) - leaves
        if missing:
            raise PlanError(f"tree does not cover sites {sorted(missing)}")
    if metrics is not None:
        with activate(metrics):
            return _execute_spanning_traced(
                cluster, tree, plan, tracer, query_id, model
            )
    return _execute_spanning_traced(cluster, tree, plan, tracer, query_id, model)


def _execute_spanning_traced(
    cluster, tree, plan, tracer, query_id, model
) -> SpanningResult:
    stats = SpanningStats(model=model)
    coordinator = Coordinator(plan.expression.key, tracer)

    query_attrs = {
        "rounds": len(plan.rounds),
        "sites": len(tree.leaves()),
        "topology": f"spanning:{tree.depth()}",
    }
    if query_id is not None:
        query_attrs["query_id"] = query_id
    with tracer.span("query", kind="query", **query_attrs):
        with tracer.span(
            "round", kind="round", index=0, round_kind="base",
            sites=len(tree.leaves()),
        ):
            _spanning_base(cluster, tree, plan, coordinator, stats)

        for md_round in plan.rounds:
            round_stats = stats.new_round(
                "chain" if md_round.is_chain else "md", tree.name
            )
            _register_children(tree, round_stats)
            blocks = md_round.all_blocks()
            participating = set(md_round.sites)

            with tracer.span(
                "round",
                kind="round",
                index=round_stats.index,
                round_kind=round_stats.kind,
                sites=len(md_round.sites),
            ):
                collected = []
                for child in tree.children:
                    result = _descend_md(
                        cluster,
                        child,
                        plan,
                        md_round,
                        blocks,
                        participating,
                        coordinator if not md_round.merged_base else None,
                        round_stats,
                        tracer=tracer,
                        query_id=query_id,
                    )
                    if result is not None:
                        collected.append(result)

                started = time.perf_counter()
                if md_round.merged_base:
                    coordinator.assemble_from_chain(collected, blocks)
                else:
                    coordinator.synchronize(collected, blocks)
                round_stats.root_compute_s += time.perf_counter() - started

    return SpanningResult(coordinator.x, stats, plan, tree)


def _register_children(node: TreeNode, round_stats: SpanningRoundStats) -> None:
    round_stats.children[node.name] = tuple(child.name for child in node.children)
    for child in node.children:
        if not child.is_leaf:
            _register_children(child, round_stats)


def _subtree_fragment(x: Relation, node: TreeNode, md_round, participating) -> Relation:
    """The fragment a subtree needs: union of its sites' ship filters."""
    filters = []
    for site_id in node.leaves():
        if site_id not in participating:
            continue
        ship_filter = md_round.ship_filter(site_id)
        if ship_filter is None:
            return x
        filters.append(ship_filter)
    predicates = [
        ship_filter.compile({BASE_VAR: x.schema}) for ship_filter in filters
    ]
    return x.select_fn(
        lambda row: any(predicate({BASE_VAR: row}) for predicate in predicates)
    )


def _descend_md(
    cluster,
    node: TreeNode,
    plan,
    md_round,
    blocks,
    participating,
    coordinator: Optional[Coordinator],
    round_stats: SpanningRoundStats,
    fragment: Optional[Relation] = None,
    tracer=NULL_TRACER,
    query_id=None,
):
    """Evaluate the round in ``node``'s subtree; return its merged H.

    ``coordinator`` is non-None only for non-merged rounds at the top
    call, where the fragment comes from the global X; deeper levels
    receive the parent's (already filtered) fragment.
    """
    subtree_sites = [site_id for site_id in node.leaves() if site_id in participating]
    if not subtree_sites:
        return None
    edge = round_stats.edge(node.name)

    if md_round.merged_base:
        edge.bytes_down += msg.HEADER_BYTES  # request only
        node_fragment = None
    else:
        if coordinator is not None:
            node_fragment = _subtree_fragment(
                coordinator.x, node, md_round, participating
            )
        else:
            node_fragment = _subtree_fragment(fragment, node, md_round, participating)
        edge.bytes_down += msg.HEADER_BYTES + wire_size(node_fragment)

    if node.is_leaf:
        site = cluster.site(node.name)
        started = time.perf_counter()
        if md_round.merged_base:
            h = site.evaluate_merged_round(
                plan.base.source, md_round.steps, plan.expression.key
            )
        else:
            ship_filter = md_round.ship_filter(node.name)
            site_fragment = node_fragment
            if ship_filter is not None:
                predicate = ship_filter.compile({BASE_VAR: node_fragment.schema})
                site_fragment = node_fragment.select_fn(
                    lambda row: predicate({BASE_VAR: row})
                )
            h = site.evaluate_round(
                site_fragment,
                md_round.steps,
                plan.expression.key,
                md_round.independent_reduction,
            )
        edge.compute_s += time.perf_counter() - started
        edge.bytes_up += msg.HEADER_BYTES + wire_size(h)
        return h

    collected = []
    for child in node.children:
        result = _descend_md(
            cluster,
            child,
            plan,
            md_round,
            blocks,
            participating,
            None,
            round_stats,
            fragment=node_fragment,
            tracer=tracer,
            query_id=query_id,
        )
        if result is not None:
            collected.append(result)
    started = time.perf_counter()
    combined = collected[0]
    for piece in collected[1:]:
        combined = combined.union_all(piece)
    merged = merge_sub_results(combined, plan.expression.key, blocks)
    edge.compute_s += time.perf_counter() - started
    edge.bytes_up += msg.HEADER_BYTES + wire_size(merged)
    hop_attrs = {
        "node": node.name,
        "round": round_stats.index,
        "children": len(node.children),
        "bytes_up": edge.bytes_up,
    }
    if query_id is not None:
        hop_attrs["query_id"] = query_id
    with tracer.span("relay.hop", kind="relay", **hop_attrs):
        pass
    return merged


def _spanning_base(cluster, tree, plan, coordinator, stats) -> None:
    base = plan.base
    if base.merged_into_chain:
        return
    if not base.is_distributed:
        if not isinstance(base.source, LiteralBase):
            raise PlanError("non-distributed base must be literal")
        round_stats = stats.new_round("base", tree.name)
        started = time.perf_counter()
        coordinator.set_base(base.source.relation)
        round_stats.root_compute_s += time.perf_counter() - started
        return

    round_stats = stats.new_round("base", tree.name)
    _register_children(tree, round_stats)
    participating = set(base.sites)

    def descend_base(node: TreeNode) -> Optional[Relation]:
        subtree_sites = [
            site_id for site_id in node.leaves() if site_id in participating
        ]
        if not subtree_sites:
            return None
        edge = round_stats.edge(node.name)
        edge.bytes_down += msg.HEADER_BYTES
        if node.is_leaf:
            site = cluster.site(node.name)
            started = time.perf_counter()
            b_i = site.compute_base(base.source)
            edge.compute_s += time.perf_counter() - started
            edge.bytes_up += msg.HEADER_BYTES + wire_size(b_i)
            return b_i
        pieces = [
            piece
            for piece in (descend_base(child) for child in node.children)
            if piece is not None
        ]
        started = time.perf_counter()
        combined = pieces[0]
        for piece in pieces[1:]:
            combined = combined.union_all(piece)
        combined = combined.distinct()
        edge.compute_s += time.perf_counter() - started
        edge.bytes_up += msg.HEADER_BYTES + wire_size(combined)
        return combined

    fragments = [
        fragment
        for fragment in (descend_base(child) for child in tree.children)
        if fragment is not None
    ]
    started = time.perf_counter()
    coordinator.sync_base(fragments)
    round_stats.root_compute_s += time.perf_counter() - started


def execute_query_spanning(
    cluster: SimulatedCluster,
    tree: TreeNode,
    expression,
    options=None,
    tracer=None,
    metrics=None,
    query_id=None,
    model: Optional[CostModel] = None,
) -> SpanningResult:
    """Plan with Egil, then execute over the spanning tree."""
    from repro.distributed.optimizer import plan_query

    plan = plan_query(expression, cluster.catalog, options)
    return execute_plan_spanning(
        cluster, tree, plan,
        tracer=tracer, metrics=metrics, query_id=query_id, model=model,
    )
