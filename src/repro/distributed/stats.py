"""Execution statistics for distributed GMDJ evaluation.

The paper reports, per experiment: query evaluation time, bytes
transferred, and (Figure 5) a breakdown into site computation time,
coordinator computation time, and communication overhead. This module
collects exactly those quantities:

- bytes and tuples are recorded per round, per site, per direction,
  straight from the channel traffic (real encoded sizes);
- site and coordinator computation are measured CPU seconds of the actual
  local evaluation work;
- communication *time* is modeled from measured bytes with a
  :class:`~repro.net.costmodel.CostModel`.

Response-time composition: within a round, the coordinator fans out to
sites over independent channels, sites compute in parallel, and the
round ends when the slowest site's reply has been synchronized. So

    round_time = max over sites (down_xfer + site_compute + up_xfer)
                 + coordinator_compute

and the query evaluation time is the sum over rounds. The Figure-5-style
breakdown attributes ``max(down + up)`` to communication and the
parallel-critical-path site compute to site computation; the breakdown is
additive and differs from the exact critical path by at most the
round-internal overlap, which we accept for reporting simplicity (both
are exposed).

:func:`theorem2_bound` implements the paper's Theorem 2 traffic bound,
checked by tests and benchmarks on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.net.costmodel import CostModel


@dataclass
class SiteRoundStats:
    """One site's activity within one round."""

    bytes_down: int = 0  # coordinator -> site
    bytes_up: int = 0  # site -> coordinator
    tuples_down: int = 0
    tuples_up: int = 0
    compute_s: float = 0.0
    #: Leg re-runs the recovery layer performed for this site this round.
    retries: int = 0
    #: Bytes charged by leg attempts that a speculative deadline
    #: abandoned. They crossed the wire (the simulated oracle and the
    #: socket transport both counted them) but did not contribute to the
    #: result — the winning attempt's traffic stays in ``bytes_down`` /
    #: ``bytes_up``, the loser's moves here, so
    #: ``bytes + speculative_bytes`` reconciles with both bookkeepers.
    speculative_bytes_down: int = 0
    speculative_bytes_up: int = 0
    #: Attempts abandoned by the speculative deadline this round.
    speculative_attempts: int = 0
    #: True when a backup attempt (raced after an abandonment) produced
    #: this site's result for the round.
    speculation_won: bool = False
    #: What the same shipments would have cost under the row wire codec
    #: (measured by actually row-encoding each block). Equal to
    #: ``bytes_down``/``bytes_up`` when the row codec is active; the gap
    #: is the column-block codec's measured byte saving.
    row_equiv_bytes_down: int = 0
    row_equiv_bytes_up: int = 0


@dataclass
class RoundStats:
    """One round of Alg. GMDJDistribEval."""

    index: int
    kind: str  # "base", "md", "chain"
    description: str = ""
    sites: dict = field(default_factory=dict)  # site_id -> SiteRoundStats
    coordinator_compute_s: float = 0.0
    #: Measured wall-clock of the whole round (set by the evaluator).
    #: Under a parallel executor this is what actually elapsed, to be
    #: compared against the modeled max-over-sites critical path.
    wall_s: float = 0.0
    #: Sites excluded from this round by ``degrade`` mode (the round
    #: completed *without* their sub-results — a correctness caveat).
    excluded: list = field(default_factory=list)

    def exclude(self, site_id: str) -> None:
        """Record a degrade-mode exclusion (idempotent, thread-safe via GIL)."""
        if site_id not in self.excluded:
            self.excluded.append(site_id)

    def site(self, site_id: str) -> SiteRoundStats:
        stats = self.sites.get(site_id)
        if stats is None:
            stats = SiteRoundStats()
            self.sites[site_id] = stats
        return stats

    # -- per-round aggregates ------------------------------------------------

    @property
    def bytes_down(self) -> int:
        return sum(stats.bytes_down for stats in self.sites.values())

    @property
    def bytes_up(self) -> int:
        return sum(stats.bytes_up for stats in self.sites.values())

    @property
    def bytes_total(self) -> int:
        return self.bytes_down + self.bytes_up

    @property
    def tuples_down(self) -> int:
        return sum(stats.tuples_down for stats in self.sites.values())

    @property
    def tuples_up(self) -> int:
        return sum(stats.tuples_up for stats in self.sites.values())

    @property
    def tuples_total(self) -> int:
        return self.tuples_down + self.tuples_up

    @property
    def retries(self) -> int:
        return sum(stats.retries for stats in self.sites.values())

    @property
    def speculative_bytes_down(self) -> int:
        return sum(stats.speculative_bytes_down for stats in self.sites.values())

    @property
    def speculative_bytes_up(self) -> int:
        return sum(stats.speculative_bytes_up for stats in self.sites.values())

    @property
    def speculative_attempts(self) -> int:
        return sum(stats.speculative_attempts for stats in self.sites.values())

    @property
    def row_equiv_bytes_total(self) -> int:
        return sum(
            stats.row_equiv_bytes_down + stats.row_equiv_bytes_up
            for stats in self.sites.values()
        )

    @property
    def codec_saved_bytes(self) -> int:
        """Measured bytes the active wire codec saved vs. the row codec."""
        return self.row_equiv_bytes_total - self.bytes_total

    def site_compute_critical_s(self) -> float:
        """Critical-path site compute: the slowest site (parallel sites)."""
        if not self.sites:
            return 0.0
        return max(stats.compute_s for stats in self.sites.values())

    def communication_s(self, model: CostModel) -> float:
        """Modeled communication time of the round (slowest channel)."""
        if not self.sites:
            return 0.0
        times = []
        for stats in self.sites.values():
            down = model.transfer_time(stats.bytes_down) if stats.bytes_down else 0.0
            up = model.transfer_time(stats.bytes_up) if stats.bytes_up else 0.0
            times.append(down + up)
        return max(times)

    def response_time_s(self, model: CostModel) -> float:
        """Exact round critical path (overlapping compute and transfers)."""
        slowest = 0.0
        for stats in self.sites.values():
            down = model.transfer_time(stats.bytes_down) if stats.bytes_down else 0.0
            up = model.transfer_time(stats.bytes_up) if stats.bytes_up else 0.0
            slowest = max(slowest, down + stats.compute_s + up)
        return slowest + self.coordinator_compute_s


@dataclass
class ExecutionStats:
    """Statistics of one distributed query evaluation."""

    rounds: list = field(default_factory=list)
    #: Which site-execution engine produced these numbers.
    executor: str = "serial"
    #: Which merge topology moved the bytes: ``"flat"`` (coordinator
    #: star), ``"hierarchical:R"`` (R two-level regions) or ``"chain:F"``
    #: (fanout-F relay tree). Set by the topology scheduler; plain
    #: ``execute_plan`` runs are always flat.
    topology: str = "flat"
    #: Which failure mode governed the run (``fail_fast | retry | degrade``).
    failure_mode: str = "fail_fast"
    #: Injected faults observed on the wire, as
    #: :class:`~repro.net.faults.FaultEvent` entries (recorded by the
    #: evaluator from ``Network.fault_events()`` after the run).
    faults: list = field(default_factory=list)
    #: Service-assigned query identity (threaded from
    #: :meth:`~repro.service.service.QueryService.submit`); None for
    #: standalone runs.
    query_id: object = None
    #: Which wire codec encoded the shipped relations (``row | column``).
    wire_codec: str = "row"
    #: How the bytes actually moved: ``"memory"`` (simulated in-process
    #: queues) or ``"sockets"`` (real TCP to site-server processes).
    transport: str = "memory"
    #: Measured MSG-body bytes on the real wire per direction (equal to
    #: the modeled ``DirectionStats`` bytes on a clean run — the byte
    #: parity this repo's deployment mode is built around).
    socket_bytes_down: int = 0
    socket_bytes_up: int = 0
    #: Transport overhead the simulation does not model: frame prefixes
    #: plus whole control frames (handshakes, requests, replies).
    socket_framing_bytes: int = 0
    socket_frames: int = 0
    socket_reconnects: int = 0
    #: Per-site clock estimates from the pre-query PING sync (socket
    #: transport only): ``{site_id: {"offset_s": ..., "rtt_s": ...}}``.
    clock_offsets: dict = field(default_factory=dict)

    def new_round(self, kind: str, description: str = "") -> RoundStats:
        stats = RoundStats(index=len(self.rounds), kind=kind, description=description)
        self.rounds.append(stats)
        return stats

    def record_faults(self, events) -> None:
        """Attach the network's injected-fault log to these stats."""
        self.faults = list(events)

    def record_clocks(self, clock_map) -> None:
        """Attach a :class:`~repro.obs.skew.ClockMap`'s estimates."""
        if clock_map is not None and len(clock_map):
            self.clock_offsets = clock_map.to_dict()

    def record_transport(self, network) -> None:
        """Attach the network's measured wire accounting, if it has any.

        Duck-typed on ``socket_totals`` so simulated networks (no real
        wire) leave the defaults — ``transport`` stays ``"memory"``.
        """
        totals = getattr(network, "socket_totals", None)
        if totals is None:
            return
        snapshot = totals()
        self.transport = getattr(network, "transport", "sockets")
        self.socket_bytes_down = snapshot.get("payload_down", 0)
        self.socket_bytes_up = snapshot.get("payload_up", 0)
        self.socket_framing_bytes = snapshot.get("framing", 0)
        self.socket_frames = snapshot.get("frames", 0)
        self.socket_reconnects = snapshot.get("reconnects", 0)

    @property
    def socket_bytes_total(self) -> int:
        return self.socket_bytes_down + self.socket_bytes_up

    def socket_parity(self) -> bool:
        """Measured socket payload bytes == modeled DirectionStats bytes.

        Only meaningful for socket runs; always True in memory transport.
        Abandoned speculative attempts still crossed the wire, so the
        modeled side is ``bytes + speculative_bytes`` per direction.
        On a faulted run that lost a connection mid-transmit the measured
        side may fall short of the modeled side (partial frames are not
        counted), so callers gate hard assertions on clean runs.
        """
        if self.transport != "sockets":
            return True
        return (
            self.socket_bytes_down
            == self.bytes_down + self.speculative_bytes_down
            and self.socket_bytes_up
            == self.bytes_up + self.speculative_bytes_up
        )

    def transport_summary(self) -> str:
        """Human-readable byte-reconciliation lines for socket runs."""
        parity = (
            "matches modeled DirectionStats exactly"
            if self.socket_parity()
            else (
                f"modeled down={self.bytes_down + self.speculative_bytes_down}B "
                f"up={self.bytes_up + self.speculative_bytes_up}B "
                "(divergence: partial transmit or mid-run attach)"
            )
        )
        lines = [
            f"transport [sockets]: measured payload "
            f"down={self.socket_bytes_down}B up={self.socket_bytes_up}B "
            f"— {parity}",
            f"framing overhead: +{self.socket_framing_bytes}B "
            f"({self.socket_frames} frames, "
            f"{self.socket_reconnects} reconnects) — "
            "excluded from modeled bytes",
        ]
        return "\n".join(lines)

    # -- recovery ----------------------------------------------------------------

    @property
    def retries(self) -> int:
        """Leg re-runs performed across all rounds."""
        return sum(stats.retries for stats in self.rounds)

    @property
    def speculative_bytes_down(self) -> int:
        """Down-bytes of abandoned speculative attempts, all rounds."""
        return sum(stats.speculative_bytes_down for stats in self.rounds)

    @property
    def speculative_bytes_up(self) -> int:
        """Up-bytes of abandoned speculative attempts, all rounds."""
        return sum(stats.speculative_bytes_up for stats in self.rounds)

    @property
    def speculative_legs(self) -> int:
        """(round, site) legs where the speculative deadline fired."""
        return sum(
            1
            for round_stats in self.rounds
            for site in round_stats.sites.values()
            if site.speculative_attempts > 0
        )

    @property
    def speculation_wins(self) -> int:
        """(round, site) legs whose result came from a backup attempt."""
        return sum(
            1
            for round_stats in self.rounds
            for site in round_stats.sites.values()
            if site.speculation_won
        )

    @property
    def excluded_sites(self) -> tuple:
        """Every (round index, site id) excluded by ``degrade`` mode."""
        return tuple(
            (stats.index, site_id)
            for stats in self.rounds
            for site_id in stats.excluded
        )

    @property
    def degraded(self) -> bool:
        """True when any round completed without one of its sites —
        i.e. the result is an under-approximation, not the exact answer."""
        return any(stats.excluded for stats in self.rounds)

    @property
    def fault_count(self) -> int:
        return len(self.faults)

    # -- totals -------------------------------------------------------------------

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def bytes_total(self) -> int:
        return sum(stats.bytes_total for stats in self.rounds)

    @property
    def bytes_down(self) -> int:
        return sum(stats.bytes_down for stats in self.rounds)

    @property
    def bytes_up(self) -> int:
        return sum(stats.bytes_up for stats in self.rounds)

    @property
    def tuples_total(self) -> int:
        return sum(stats.tuples_total for stats in self.rounds)

    @property
    def tuples_down(self) -> int:
        return sum(stats.tuples_down for stats in self.rounds)

    @property
    def tuples_up(self) -> int:
        return sum(stats.tuples_up for stats in self.rounds)

    @property
    def row_equiv_bytes_total(self) -> int:
        return sum(stats.row_equiv_bytes_total for stats in self.rounds)

    @property
    def codec_saved_bytes(self) -> int:
        """Measured byte saving of the active wire codec vs. the row codec."""
        return sum(stats.codec_saved_bytes for stats in self.rounds)

    def tuples_up_md(self) -> int:
        """Up-shipped tuples in MD/chain rounds only (base round excluded)."""
        return sum(stats.tuples_up for stats in self.rounds if stats.kind != "base")

    def md_round_count(self) -> int:
        return sum(1 for stats in self.rounds if stats.kind != "base")

    def site_compute_s(self) -> float:
        """Critical-path site computation summed over rounds."""
        return sum(stats.site_compute_critical_s() for stats in self.rounds)

    def site_compute_total_s(self) -> float:
        """Total site CPU (all sites, all rounds) — the cluster-wide work."""
        return sum(
            site.compute_s
            for round_stats in self.rounds
            for site in round_stats.sites.values()
        )

    def coordinator_compute_s(self) -> float:
        return sum(stats.coordinator_compute_s for stats in self.rounds)

    def wall_time_s(self) -> float:
        """Measured wall-clock summed over rounds (0.0 if never measured).

        With ``executor="serial"`` this tracks ``site_compute_total_s()
        + coordinator_compute_s()``; with a parallel executor it should
        approach ``site_compute_s() + coordinator_compute_s()`` — the
        modeled max-over-sites critical path — as cores allow.
        """
        return sum(stats.wall_s for stats in self.rounds)

    def communication_s(self, model: CostModel) -> float:
        return sum(stats.communication_s(model) for stats in self.rounds)

    def response_time_s(self, model: CostModel) -> float:
        """Exact per-round critical path, summed over rounds."""
        return sum(stats.response_time_s(model) for stats in self.rounds)

    def breakdown(self, model: CostModel) -> dict:
        """Additive Figure-5-style breakdown of evaluation time."""
        site = self.site_compute_s()
        coordinator = self.coordinator_compute_s()
        communication = self.communication_s(model)
        return {
            "site_compute_s": site,
            "site_compute_total_s": self.site_compute_total_s(),
            "coordinator_compute_s": coordinator,
            "communication_s": communication,
            "wall_s": self.wall_time_s(),
            "executor": self.executor,
            "total_s": site + coordinator + communication,
        }

    def overlap_tolerance_s(self, model: CostModel) -> float:
        """The documented bound on breakdown-vs-critical-path divergence.

        Per round the additive breakdown charges ``max_i(down_i + up_i)
        + max_i(compute_i)`` where the exact critical path takes
        ``max_i(down_i + compute_i + up_i)``; the exact path is at least
        the larger of the two maxima, so the additive total exceeds it by
        at most the *smaller* — the round-internal overlap. Summed over
        rounds this bounds ``breakdown(model)["total_s"] -
        response_time_s(model)`` from above (and 0 bounds it from below).
        """
        return sum(
            min(stats.communication_s(model), stats.site_compute_critical_s())
            for stats in self.rounds
        )

    def to_dict(self, model: CostModel = None) -> dict:
        """A JSON-serializable snapshot for dashboards and tooling.

        Includes the time breakdown when a cost model is given.
        """
        snapshot = {
            "executor": self.executor,
            "topology": self.topology,
            "failure_mode": self.failure_mode,
            "wire_codec": self.wire_codec,
            "rounds": [
                {
                    "index": round_stats.index,
                    "kind": round_stats.kind,
                    "description": round_stats.description,
                    "coordinator_compute_s": round_stats.coordinator_compute_s,
                    "wall_s": round_stats.wall_s,
                    "excluded": list(round_stats.excluded),
                    **(
                        {
                            "codec": {
                                "wire_codec": self.wire_codec,
                                "bytes": round_stats.bytes_total,
                                "row_equiv_bytes": round_stats.row_equiv_bytes_total,
                                "saved_bytes": round_stats.codec_saved_bytes,
                                "saving_fraction": (
                                    round_stats.codec_saved_bytes
                                    / round_stats.row_equiv_bytes_total
                                    if round_stats.row_equiv_bytes_total
                                    else 0.0
                                ),
                            }
                        }
                        if self.wire_codec != "row"
                        else {}
                    ),
                    "sites": {
                        site_id: {
                            "bytes_down": site.bytes_down,
                            "bytes_up": site.bytes_up,
                            "tuples_down": site.tuples_down,
                            "tuples_up": site.tuples_up,
                            "compute_s": site.compute_s,
                            "retries": site.retries,
                            **(
                                {
                                    "speculative_bytes_down": site.speculative_bytes_down,
                                    "speculative_bytes_up": site.speculative_bytes_up,
                                    "speculative_attempts": site.speculative_attempts,
                                    "speculation_won": site.speculation_won,
                                }
                                if site.speculative_attempts
                                else {}
                            ),
                        }
                        for site_id, site in round_stats.sites.items()
                    },
                }
                for round_stats in self.rounds
            ],
            "retries": self.retries,
            "speculative_legs": self.speculative_legs,
            "speculation_wins": self.speculation_wins,
            "speculative_bytes_down": self.speculative_bytes_down,
            "speculative_bytes_up": self.speculative_bytes_up,
            "excluded_sites": [list(entry) for entry in self.excluded_sites],
            "faults": [
                {
                    "kind": event.kind,
                    "site": event.site,
                    "round": event.round_index,
                    "direction": event.direction,
                }
                for event in self.faults
            ],
            "bytes_total": self.bytes_total,
            "bytes_down": self.bytes_down,
            "bytes_up": self.bytes_up,
            "tuples_total": self.tuples_total,
            "site_compute_s": self.site_compute_s(),
            "site_compute_total_s": self.site_compute_total_s(),
            "coordinator_compute_s": self.coordinator_compute_s(),
            "wall_s": self.wall_time_s(),
        }
        if self.wire_codec != "row":
            snapshot["row_equiv_bytes_total"] = self.row_equiv_bytes_total
            snapshot["codec_saved_bytes"] = self.codec_saved_bytes
        snapshot["transport"] = self.transport
        if self.transport == "sockets":
            snapshot["socket"] = {
                "bytes_down": self.socket_bytes_down,
                "bytes_up": self.socket_bytes_up,
                "framing_bytes": self.socket_framing_bytes,
                "frames": self.socket_frames,
                "reconnects": self.socket_reconnects,
                "parity": self.socket_parity(),
            }
        if self.clock_offsets:
            snapshot["clock_offsets"] = dict(self.clock_offsets)
        if self.query_id is not None:
            snapshot["query_id"] = self.query_id
        if model is not None:
            snapshot["breakdown"] = self.breakdown(model)
        return snapshot

    def summary(self) -> str:
        lines = [
            f"rounds: {self.round_count} (executor: {self.executor}, "
            f"topology: {self.topology})",
            f"bytes: total={self.bytes_total} down={self.bytes_down} up={self.bytes_up}",
        ]
        if self.speculative_legs:
            lines.append(
                f"speculation: legs={self.speculative_legs} "
                f"wins={self.speculation_wins} "
                f"abandoned bytes down={self.speculative_bytes_down} "
                f"up={self.speculative_bytes_up}"
            )
        if self.wire_codec != "row":
            row_equiv = self.row_equiv_bytes_total
            fraction = self.codec_saved_bytes / row_equiv if row_equiv else 0.0
            lines.append(
                f"wire codec [{self.wire_codec}]: saved {self.codec_saved_bytes}B "
                f"vs row codec ({fraction:.1%} of {row_equiv}B)"
            )
        if self.transport == "sockets":
            lines.extend(self.transport_summary().splitlines())
        if self.clock_offsets:
            worst = max(
                abs(sample["offset_s"]) for sample in self.clock_offsets.values()
            )
            lines.append(
                f"clock sync: {len(self.clock_offsets)} site(s), "
                f"max |offset|={worst * 1000:.3f}ms — site spans skew-corrected"
            )
        lines += [
            f"tuples shipped: {self.tuples_total}",
            f"site compute (critical path): {self.site_compute_s():.4f}s",
            f"site compute (all sites): {self.site_compute_total_s():.4f}s",
            f"coordinator compute: {self.coordinator_compute_s():.4f}s",
            f"wall clock: {self.wall_time_s():.4f}s",
        ]
        if self.faults or self.retries or self.degraded:
            lines.append(
                f"recovery [{self.failure_mode}]: faults={self.fault_count} "
                f"retries={self.retries} "
                f"excluded={len(self.excluded_sites)}"
            )
        for round_stats in self.rounds:
            line = (
                f"  round {round_stats.index} [{round_stats.kind}] "
                f"{round_stats.description}: "
                f"down={round_stats.bytes_down}B up={round_stats.bytes_up}B "
                f"sites={len(round_stats.sites)}"
            )
            if round_stats.excluded:
                line += f" EXCLUDED={','.join(round_stats.excluded)}"
            lines.append(line)
        return "\n".join(lines)


def verify_against_network(stats: ExecutionStats, network) -> list:
    """Cross-check measured stats against the channels' own accounting.

    The evaluator attributes bytes to rounds/sites as it sends; the
    channels count the same traffic independently (per direction, via
    :meth:`~repro.net.channel.DirectionStats.bytes_in_round`). Returns a
    list of human-readable mismatch descriptions — empty when the two
    bookkeepers agree, which the ``repro trace`` timeline relies on.
    """
    problems = []
    down = sum(
        network.channel(site_id).downstream.bytes for site_id in network.site_ids
    )
    up = sum(
        network.channel(site_id).upstream.bytes for site_id in network.site_ids
    )
    # The channels count abandoned speculative attempts too (the traffic
    # really moved), so the stats side adds its speculative buckets back.
    stats_down = stats.bytes_down + stats.speculative_bytes_down
    stats_up = stats.bytes_up + stats.speculative_bytes_up
    if stats_down != down:
        problems.append(f"bytes_down: stats={stats_down} network={down}")
    if stats_up != up:
        problems.append(f"bytes_up: stats={stats_up} network={up}")
    for site_id in network.site_ids:
        channel = network.channel(site_id)
        stats_total = sum(
            site.bytes_down
            + site.bytes_up
            + site.speculative_bytes_down
            + site.speculative_bytes_up
            for round_stats in stats.rounds
            for observed_id, site in round_stats.sites.items()
            if observed_id == site_id
        )
        wire_total = sum(
            channel.downstream.bytes_in_round(index)
            + channel.upstream.bytes_in_round(index)
            for index in channel.downstream.by_round | channel.upstream.by_round
        )
        if stats_total != wire_total:
            problems.append(
                f"site {site_id}: stats={stats_total} network={wire_total}"
            )
    return problems


def theorem2_bound(
    result_tuples: int, base_sites: int, round_sites: Sequence[int]
) -> int:
    """Theorem 2's bound on *tuples* transferred.

    ``result_tuples`` is |Q| (the result size), ``base_sites`` is s_0 and
    ``round_sites`` are s_1..s_m. The bound is
    ``sum_i (2 * s_i * |Q|) + s_0 * |Q|``, independent of the detail
    relation size.
    """
    total = base_sites * result_tuples
    for sites in round_sites:
        total += 2 * sites * result_tuples
    return total


def check_theorem2(
    stats: ExecutionStats,
    result_tuples: int,
    base_sites: int,
    round_sites: Sequence[int],
) -> bool:
    """True when the observed tuple traffic respects Theorem 2's bound."""
    return stats.tuples_total <= theorem2_bound(result_tuples, base_sites, round_sites)
