"""Exception hierarchy for the repro (Skalla) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one handler while still being able to
discriminate specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible."""


class UnknownAttributeError(SchemaError):
    """An expression or operator referenced an attribute not in scope."""

    def __init__(self, attribute, available=()):
        self.attribute = attribute
        self.available = tuple(available)
        message = f"unknown attribute {attribute!r}"
        if self.available:
            message += f"; available: {', '.join(map(str, self.available))}"
        super().__init__(message)


class TypeMismatchError(SchemaError):
    """A value did not match the declared type of its attribute."""


class ExpressionError(ReproError):
    """A scalar expression is malformed or cannot be evaluated."""


class AggregateError(ReproError):
    """An aggregate specification is invalid."""


class HolisticAggregateError(AggregateError):
    """A holistic aggregate (no sub/super decomposition) was used in a
    distributed plan.

    Holistic aggregates such as MEDIAN cannot be computed from partial
    results without shipping detail data, which Skalla never does
    (Section 3 of the paper). They remain available for centralized
    evaluation.
    """


class PlanError(ReproError):
    """A distributed evaluation plan is invalid or cannot be constructed."""


class OptimizationError(PlanError):
    """An optimization was requested whose precondition does not hold."""


class SerializationError(ReproError):
    """A relation or message could not be encoded or decoded."""


class NetworkError(ReproError):
    """A simulated network operation failed (unknown site, closed channel)."""


class SiteUnavailableError(NetworkError):
    """A site did not respond (injected crash or unreachable channel)."""


class FaultSpecError(NetworkError):
    """A fault-injection spec (rule DSL string or JSON document) is malformed."""


class LegDeadlineExceeded(NetworkError):
    """A speculative deadline fired while a site leg was still in flight.

    Raised by channels that support mid-request abandonment (the socket
    transport) when the round's :class:`~repro.distributed.scheduler.\
SpeculationController` decides the leg is a straggler. It is a
    :class:`NetworkError` so a fail-fast configuration without the
    speculation branch still treats it as a (transient) leg failure, but
    ``guard_leg`` catches it *before* the retry machinery: the abandoned
    attempt costs no retry budget and its bytes move to the speculative
    accounts instead of staying charged to the leg.

    ``partial_up_bytes`` carries the wire bytes of any reply messages
    already consumed when the deadline fired, so byte parity with the
    measured transport still reconciles exactly.
    """

    def __init__(self, site_id, deadline_s, partial_up_bytes=0):
        self.site_id = site_id
        self.deadline_s = deadline_s
        self.partial_up_bytes = partial_up_bytes
        super().__init__(
            f"site {site_id!r} exceeded the speculative deadline "
            f"({deadline_s:.3f}s); leg abandoned for a backup"
        )


class RemoteSiteError(ReproError):
    """A site-server process reported a failure of an unknown class.

    Known :class:`ReproError` subclasses survive the socket transport
    with their concrete type (so the retry layer classifies them exactly
    as it would in-process); anything else arrives as this wrapper,
    which is deliberately *not* a :class:`NetworkError` — an unknown
    remote failure is a bug to surface, never something to retry.
    """


class DeploymentError(ReproError):
    """A process-cluster deployment operation failed (store, launch, spec)."""


class RetryExhaustedError(NetworkError):
    """A leg kept failing after its whole retry budget in ``retry`` mode."""

    def __init__(self, site_id, attempts, cause=None):
        self.site_id = site_id
        self.attempts = attempts
        self.cause = cause
        message = f"site {site_id!r} still failing after {attempts} attempt(s)"
        if cause is not None:
            message += f": {type(cause).__name__}: {cause}"
        super().__init__(message)


class MultiLegError(ReproError):
    """One or more site legs of a round failed.

    Carries *every* failed site and its cause (``failures``: site id →
    exception) plus the legs that were cancelled before they started
    (``cancelled``), so a multi-site failure is never reported as just
    the first leg that happened to be collected.
    """

    def __init__(self, failures, cancelled=()):
        self.failures = dict(failures)
        self.cancelled = tuple(cancelled)
        parts = [
            f"{site_id}: {type(error).__name__}: {error}"
            for site_id, error in sorted(self.failures.items())
        ]
        message = f"{len(self.failures)} site leg(s) failed — " + "; ".join(parts)
        if self.cancelled:
            message += (
                f" (cancelled before start: {', '.join(sorted(self.cancelled))})"
            )
        super().__init__(message)

    @property
    def failed_sites(self) -> tuple:
        return tuple(sorted(self.failures))


class CatalogError(ReproError):
    """Distribution catalog lookup or registration failed."""


class WarehouseError(ReproError):
    """A local warehouse operation failed (unknown table, bad partition)."""


class ServiceError(ReproError):
    """A query-service operation failed (bad request, closed service)."""


class AdmissionError(ServiceError):
    """The service's wait queue is full; the query was rejected outright."""

    def __init__(self, queued, max_queue):
        self.queued = queued
        self.max_queue = max_queue
        super().__init__(
            f"admission queue full ({queued} waiting, limit {max_queue}); "
            "query rejected"
        )


class QueryTimeoutError(ServiceError):
    """A queued query waited longer than its admission timeout."""

    def __init__(self, waited_s, timeout_s):
        self.waited_s = waited_s
        self.timeout_s = timeout_s
        super().__init__(
            f"query timed out after waiting {waited_s:.3f}s for an execution "
            f"slot (timeout {timeout_s:.3f}s)"
        )


class ObservabilityError(ReproError):
    """A tracing/metrics operation failed (bad metric, malformed trace)."""


class TraceSchemaError(ObservabilityError):
    """A JSONL trace file is malformed or has an unsupported schema version."""
