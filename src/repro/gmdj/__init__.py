"""``repro.gmdj`` — the GMDJ operator, expressions, and their analysis.

This package implements the paper's core algebra:

- :class:`~repro.gmdj.blocks.MDBlock` — an ``(aggregate list, condition)``
  pair (Definition 1);
- :mod:`~repro.gmdj.operator` — centralized hash-based evaluation, the
  site-side sub-aggregate variant, and Theorem 1 super-aggregation;
- :class:`~repro.gmdj.expression.GMDJExpression` — chains of GMDJ
  operators (complex GMDJ expressions);
- :mod:`~repro.gmdj.analysis` — condition analysis backing the
  optimizations of Section 4;
- :mod:`~repro.gmdj.coalesce` — the coalescing transformation.
"""

from repro.gmdj.blocks import MDBlock, block_output_attributes, result_schema, sub_result_schema
from repro.gmdj.coalesce import can_coalesce, coalesce, coalesce_steps
from repro.gmdj.expression import (
    BaseSource,
    DistinctBase,
    GMDJExpression,
    LiteralBase,
    MDStep,
)
from repro.gmdj.operator import (
    SyncSession,
    evaluate,
    evaluate_both,
    evaluate_sub,
    merge_sub_results,
    super_aggregate,
)

__all__ = [
    "SyncSession",
    "BaseSource",
    "DistinctBase",
    "GMDJExpression",
    "LiteralBase",
    "MDBlock",
    "MDStep",
    "block_output_attributes",
    "can_coalesce",
    "coalesce",
    "coalesce_steps",
    "evaluate",
    "evaluate_both",
    "evaluate_sub",
    "merge_sub_results",
    "result_schema",
    "sub_result_schema",
    "super_aggregate",
]
