"""Condition analysis for the Skalla optimizer.

Implements the reasoning behind the paper's optimization theorems:

- :func:`derive_ship_filter` — Theorem 4 (distribution-aware group
  reduction): from a site predicate φᵢ and the GMDJ conditions, derive
  the base-only condition ¬ψᵢ such that base tuples failing it cannot
  match any detail tuple at site *i* and need not be shipped there.
- :func:`theta_entails_key` — Proposition 2's hypothesis: every condition
  entails equality on the base key attributes K.
- :func:`entailed_partition_attribute` — Corollary 1's hypothesis: every
  condition entails equality on a partition attribute (with the identity
  bijection), enabling inter-GMDJ synchronization elimination.
- :func:`site_can_match` — satisfiability of detail-only conjuncts under
  φᵢ, used to skip sites entirely (S_MD ⊂ S_B footnote 2 in the paper).

All derivations are *necessary-condition* relaxations: the returned
filters may admit more base tuples than strictly needed but never reject
a tuple that could contribute, so correctness never depends on the
precision of the analysis.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.relalg.expressions import (
    BASE_VAR,
    Between,
    Comparison,
    Const,
    DETAIL_VAR,
    Expr,
    Field,
    InSet,
    and_all,
    or_all,
)
from repro.relalg.predicates import (
    Domain,
    Interval,
    conjuncts,
    domains_from_predicate,
    entails_key_equality,
    interval_of,
    is_trivially_false,
    is_trivially_true,
    references_only,
    sides,
    split_condition,
)

_INF = math.inf


# ---------------------------------------------------------------------------
# Theorem 4: distribution-aware group reduction
# ---------------------------------------------------------------------------


def derive_ship_filter(conditions: Sequence[Expr], phi: Expr) -> Optional[Expr]:
    """Derive ¬ψᵢ: a base-only filter for tuples worth shipping to site i.

    ``conditions`` are the θ₁..θₘ of the GMDJ (or of all GMDJs covered by
    the shipment); ``phi`` is the site predicate φᵢ over detail
    attributes. Returns an expression over base fields (relvar ``"b"``),
    or ``None`` when no useful restriction can be derived (ship all of B).
    """
    domains = domains_from_predicate(phi, DETAIL_VAR)
    if not domains:
        return None
    restrictions = []
    for theta in conditions:
        restriction = _restrict_condition(theta, domains)
        if restriction is None:
            # One un-analyzable condition forces shipping everything.
            return None
        restrictions.append(restriction)
    combined = or_all(restrictions)
    if is_trivially_true(combined):
        return None
    return combined


def _restrict_condition(theta: Expr, domains: dict) -> Optional[Expr]:
    """Necessary base-only condition for θ to match under the domains.

    Returns ``None`` when nothing restrictive can be derived (equivalent
    to TRUE — but distinguished so the caller can give up early).
    """
    parts = []
    found_restriction = False
    for conjunct in conjuncts(theta):
        relvars = sides(conjunct)
        if relvars <= frozenset([BASE_VAR]):
            # Base-only conjunct: itself a necessary condition on b.
            parts.append(conjunct)
            found_restriction = True
            continue
        if relvars <= frozenset([DETAIL_VAR]):
            # Detail-only conjunct: if unsatisfiable at this site, theta
            # can never match there.
            if not _detail_conjunct_satisfiable(conjunct, domains):
                return Const(False)
            continue
        relaxed = _relax_mixed_conjunct(conjunct, domains)
        if relaxed is not None:
            parts.append(relaxed)
            found_restriction = True
    if not found_restriction:
        return None
    return and_all(parts)


def _detail_conjunct_satisfiable(conjunct: Expr, domains: dict) -> bool:
    """Conservatively check a detail-only conjunct against the domains.

    When the conjunct touches a single attribute with a *finite* known
    domain, satisfiability is decided exactly by evaluating the conjunct
    on every candidate value; otherwise interval/set reasoning applies
    (widened, hence conservative).
    """
    referenced = [field for field in conjunct.fields() if field.relvar == DETAIL_VAR]
    if len(referenced) == 1:
        domain = domains.get(referenced[0].name)
        if domain is not None and domain.values is not None:
            name = referenced[0].name
            return any(
                bool(conjunct.eval({DETAIL_VAR: {name: value}}))
                for value in domain.values
            )
    single = domains_from_predicate(conjunct, DETAIL_VAR)
    for name, constraint in single.items():
        known = domains.get(name)
        if known is None:
            continue
        if known.intersect(constraint).is_empty:
            return False
        if known.values is None and constraint.values is None:
            if not known.interval.intersects(constraint.interval):
                return False
    return True


def _relax_mixed_conjunct(conjunct: Expr, domains: dict) -> Optional[Expr]:
    """Relax a base/detail comparison into a base-only necessary condition.

    For ``base_expr OP detail_expr`` with the detail expression's interval
    ``[lo, hi]`` known from φ: a match requires e.g. ``base_expr <= hi``
    for OP ``<``/``<=``, ``base_expr >= lo`` for ``>``/``>=``, and
    ``lo <= base_expr <= hi`` (or set membership) for ``==``.
    """
    if not isinstance(conjunct, Comparison):
        return None
    comparison = conjunct
    if references_only(comparison.left, DETAIL_VAR) and references_only(
        comparison.right, BASE_VAR
    ):
        comparison = comparison.mirrored()
    if not (
        references_only(comparison.left, BASE_VAR)
        and references_only(comparison.right, DETAIL_VAR)
    ):
        return None
    base_expr = comparison.left
    detail_expr = comparison.right

    if comparison.op == "==":
        if isinstance(detail_expr, Field):
            domain = domains.get(detail_expr.name)
            if domain is not None and domain.values is not None:
                return InSet(base_expr, domain.values)
        interval = interval_of(detail_expr, DETAIL_VAR, domains)
        return _interval_membership(base_expr, interval)

    if comparison.op == "!=":
        return None

    interval = interval_of(detail_expr, DETAIL_VAR, domains)
    if interval is None:
        return None
    if comparison.op in ("<", "<="):
        if interval.high == _INF:
            return None
        return Comparison(comparison.op, base_expr, Const(_const_value(interval.high)))
    if comparison.op in (">", ">="):
        if interval.low == -_INF:
            return None
        return Comparison(comparison.op, base_expr, Const(_const_value(interval.low)))
    return None


def _interval_membership(base_expr: Expr, interval: Optional[Interval]) -> Optional[Expr]:
    if interval is None:
        return None
    low_bounded = interval.low != -_INF
    high_bounded = interval.high != _INF
    if low_bounded and high_bounded:
        return Between(base_expr, Const(_const_value(interval.low)), Const(_const_value(interval.high)))
    if low_bounded:
        return Comparison(">=", base_expr, Const(_const_value(interval.low)))
    if high_bounded:
        return Comparison("<=", base_expr, Const(_const_value(interval.high)))
    return None


def _const_value(bound: float):
    """Render an interval bound as a clean literal (int when exact)."""
    if isinstance(bound, float) and bound.is_integer():
        return int(bound)
    return bound


# ---------------------------------------------------------------------------
# Proposition 2 / Corollary 1: synchronization reduction hypotheses
# ---------------------------------------------------------------------------


def theta_entails_key(conditions: Sequence[Expr], key_attrs: Sequence[str]) -> bool:
    """True when every condition entails equality on all key attributes."""
    return all(
        entails_key_equality(theta, key_attrs, BASE_VAR, DETAIL_VAR)
        for theta in conditions
    )


def entailed_partition_attribute(
    conditions: Sequence[Expr], partition_attrs: Sequence[str]
) -> Optional[str]:
    """Find a partition attribute on which every condition entails equality.

    Implements the sufficient (identity-bijection) case of Corollary 1:
    every θ contains the conjunct ``b.A == r.A`` for the same partition
    attribute A. Returns the attribute name, or ``None``.
    """
    for attribute in partition_attrs:
        if theta_entails_key(conditions, [attribute]):
            return attribute
    return None


# ---------------------------------------------------------------------------
# Site participation (footnote 2: S_MD may be a strict subset of S_B)
# ---------------------------------------------------------------------------


def site_can_match(conditions: Sequence[Expr], phi: Expr) -> bool:
    """False when φᵢ makes every θ unsatisfiable, so site i can be skipped."""
    domains = domains_from_predicate(phi, DETAIL_VAR)
    if not domains:
        return True
    for theta in conditions:
        split = split_condition(theta, BASE_VAR, DETAIL_VAR)
        possible = all(
            _detail_conjunct_satisfiable(conjunct, domains)
            for conjunct in split.detail_only
        )
        if possible and not is_trivially_false(theta):
            return True
    return False
