"""GMDJ blocks: paired aggregate lists and conditions.

Definition 1 of the paper gives the GMDJ operator
``MD(B, R, (l_1, ..., l_m), (theta_1, ..., theta_m))``: each *block*
pairs a list of aggregate functions ``l_i`` with a condition ``theta_i``
over attributes of the base-values relation B and the detail relation R.
:class:`MDBlock` is one such ``(l_i, theta_i)`` pair.

Conditions reference base attributes through the ``base`` namespace
(relvar ``"b"``) and detail attributes through ``detail`` (relvar
``"r"``); aggregate inputs reference the detail relation (qualified or
unqualified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AggregateError, ExpressionError
from repro.relalg.aggregates import AggSpec
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR, Expr
from repro.relalg.schema import Attribute, Schema


@dataclass(frozen=True)
class MDBlock:
    """One ``(aggregate list, condition)`` pair of a GMDJ operator."""

    aggregates: tuple
    condition: Expr

    def __init__(self, aggregates: Sequence[AggSpec], condition: Expr):
        aggregates = tuple(aggregates)
        if not aggregates:
            raise AggregateError("an MDBlock needs at least one aggregate")
        for spec in aggregates:
            if not isinstance(spec, AggSpec):
                raise AggregateError(f"expected AggSpec, got {spec!r}")
            if spec.input_expr is None:
                bad_vars = set()
            else:
                bad_vars = spec.input_expr.relvars() - {DETAIL_VAR, None}
            if bad_vars:
                raise AggregateError(
                    f"aggregate input {spec} references non-detail relation "
                    f"variables {sorted(map(repr, bad_vars))}"
                )
        if not isinstance(condition, Expr):
            raise ExpressionError(f"condition must be an Expr, got {condition!r}")
        bad_vars = condition.relvars() - {BASE_VAR, DETAIL_VAR}
        if bad_vars:
            raise ExpressionError(
                f"GMDJ conditions must qualify every field with base/detail; "
                f"found relation variables {sorted(map(repr, bad_vars))} in {condition!r}"
            )
        object.__setattr__(self, "aggregates", aggregates)
        object.__setattr__(self, "condition", condition)

    # -- schema contributions -----------------------------------------------

    def result_attributes(self) -> tuple:
        """Attributes this block adds to the (finalized) GMDJ output."""
        return tuple(spec.result_attribute() for spec in self.aggregates)

    def sub_attributes(self) -> tuple:
        """Attributes this block adds to a shipped sub-result H_i."""
        attributes: list = []
        for spec in self.aggregates:
            attributes.extend(spec.sub_attributes())
        return tuple(attributes)

    def output_names(self) -> tuple:
        return tuple(spec.output for spec in self.aggregates)

    @property
    def has_holistic(self) -> bool:
        return any(spec.is_holistic for spec in self.aggregates)

    def __str__(self):
        aggs = ", ".join(str(spec) for spec in self.aggregates)
        return f"[{aggs}] WHERE {self.condition!r}"


def result_schema(base_schema: Schema, blocks: Sequence[MDBlock]) -> Schema:
    """Output schema of ``MD(B, R, blocks)`` — Definition 1's X."""
    attributes = list(base_schema.attributes)
    for block in blocks:
        attributes.extend(block.result_attributes())
    return Schema(attributes)


def sub_result_schema(base_schema: Schema, blocks: Sequence[MDBlock]) -> Schema:
    """Schema of a site's sub-result H_i (sub-aggregate columns)."""
    attributes = list(base_schema.attributes)
    for block in blocks:
        attributes.extend(block.sub_attributes())
    return Schema(attributes)


def block_output_attributes(blocks: Sequence[MDBlock]) -> tuple:
    """All finalized output attributes across blocks, in order."""
    attributes: list = []
    for block in blocks:
        attributes.extend(block.result_attributes())
    return tuple(attributes)
