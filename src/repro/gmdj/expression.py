"""GMDJ expression trees.

The paper composes GMDJ operators into *complex GMDJ expressions* where
the result of an inner GMDJ serves as the base-values relation of an
outer GMDJ (Section 2.2). An expression is therefore a chain::

    B_0  --MD_1-->  B_1  --MD_2-->  ...  --MD_m-->  B_m  (the result)

``B_0`` comes from a :class:`BaseSource`; each :class:`MDStep` applies one
GMDJ operator over a named detail table. Detail tables are resolved by
name against a mapping (a local warehouse, or the conceptual union of all
site warehouses in distributed evaluation).

Key attributes ``K`` of the base-values relation (Definition 1's
discussion) are carried explicitly: they drive Theorem 1 synchronization
and the optimizer's entailment checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import PlanError, SchemaError
from repro.gmdj import operator
from repro.gmdj.blocks import MDBlock, result_schema
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema

# -- canonical identity --------------------------------------------------------
#
# The query service caches results keyed by a *normalized* expression
# hash: two expressions that provably compute the same relation (same
# chain, conditions equal up to commutativity of AND/OR and comparison
# orientation) share a signature. Normalization is deliberately shallow —
# only rewrites that cannot change the result relation, including its row
# order, are applied, because cached results are served bit-identical.

_FLIPPED_COMPARISONS = {">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _canonical_expr_key(key):
    """Normalize an :meth:`Expr.key` tuple commutatively.

    AND/OR chains are flattened and sorted; symmetric comparisons sort
    their operands and ``>``/``>=`` flip to ``<``/``<=`` with swapped
    sides. Everything else is canonicalized recursively in place.
    """
    if not isinstance(key, tuple) or not key or not isinstance(key[0], str):
        return key
    tag = key[0]
    if tag in ("and", "or"):
        operands = []
        for operand in key[1:]:
            canonical = _canonical_expr_key(operand)
            if isinstance(canonical, tuple) and canonical[:1] == (tag,):
                operands.extend(canonical[1:])
            else:
                operands.append(canonical)
        return (tag, *sorted(operands, key=repr))
    if tag == "cmp":
        op, left, right = key[1], _canonical_expr_key(key[2]), _canonical_expr_key(key[3])
        if op in (">", ">="):
            op, left, right = _FLIPPED_COMPARISONS[op], right, left
        elif op in ("==", "!=") and repr(right) < repr(left):
            left, right = right, left
        return ("cmp", op, left, right)
    return (tag, *(_canonical_expr_key(part) for part in key[1:]))


def canonical_condition_key(condition) -> tuple:
    """The commutatively-normalized structural key of a condition."""
    return _canonical_expr_key(condition.key())


class BaseSource:
    """Produces the initial base-values relation B_0."""

    #: Attribute names forming a key of the produced relation.
    key: tuple

    def schema(self, tables: Mapping[str, Schema]) -> Schema:
        raise NotImplementedError

    def evaluate(self, tables: Mapping[str, Relation]) -> Relation:
        raise NotImplementedError

    @property
    def table_name(self) -> Optional[str]:
        """Name of the detail table this source reads, if any."""
        return None


@dataclass(frozen=True)
class DistinctBase(BaseSource):
    """``B_0 = distinct(pi_attrs(table))`` — the common base-values query.

    The projected attributes form the key K of B_0 (the relation is
    deduplicated on exactly those attributes).
    """

    table: str
    attrs: tuple

    def __init__(self, table: str, attrs: Sequence[str]):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "attrs", tuple(attrs))
        if not self.attrs:
            raise SchemaError("DistinctBase needs at least one attribute")

    @property
    def key(self) -> tuple:
        return self.attrs

    @property
    def table_name(self) -> Optional[str]:
        return self.table

    def schema(self, tables: Mapping[str, Schema]) -> Schema:
        return tables[self.table].project(self.attrs)

    def evaluate(self, tables: Mapping[str, Relation]) -> Relation:
        return tables[self.table].distinct_project(self.attrs)


@dataclass(frozen=True)
class LiteralBase(BaseSource):
    """A caller-supplied base-values relation (e.g. a dimension table).

    The caller must state which attributes form its key.
    """

    relation: Relation
    key: tuple

    def __init__(self, relation: Relation, key: Sequence[str]):
        key = tuple(key)
        for name in key:
            relation.schema.position(name)  # validates
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "key", key)

    def schema(self, tables: Mapping[str, Schema]) -> Schema:
        return self.relation.schema

    def evaluate(self, tables: Mapping[str, Relation]) -> Relation:
        return self.relation


@dataclass(frozen=True)
class MDStep:
    """One GMDJ operator application: detail table + blocks."""

    detail: str
    blocks: tuple

    def __init__(self, detail: str, blocks: Sequence[MDBlock]):
        blocks = tuple(blocks)
        if not blocks:
            raise PlanError("an MDStep needs at least one block")
        object.__setattr__(self, "detail", detail)
        object.__setattr__(self, "blocks", blocks)

    def output_names(self) -> tuple:
        names: list = []
        for block in self.blocks:
            names.extend(block.output_names())
        return tuple(names)

    @property
    def has_holistic(self) -> bool:
        return any(block.has_holistic for block in self.blocks)

    def __str__(self):
        inner = "; ".join(str(block) for block in self.blocks)
        return f"MD(detail={self.detail}, {inner})"


class GMDJExpression:
    """A chain of GMDJ operators over a base source.

    >>> expr = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [
    ...     MDStep("Flow", [MDBlock([count_star("cnt")], base.SourceAS == detail.SourceAS)]),
    ... ])
    """

    def __init__(self, base_source: BaseSource, steps: Sequence[MDStep]):
        if not isinstance(base_source, BaseSource):
            raise PlanError(f"expected a BaseSource, got {base_source!r}")
        self.base_source = base_source
        self.steps = tuple(steps)
        if not self.steps:
            raise PlanError("a GMDJ expression needs at least one MD step")
        self._validate_unique_outputs()

    def _validate_unique_outputs(self) -> None:
        seen = set()
        for step in self.steps:
            for name in step.output_names():
                if name in seen:
                    raise SchemaError(f"duplicate aggregate output name {name!r}")
                seen.add(name)

    # -- metadata ---------------------------------------------------------------

    @property
    def key(self) -> tuple:
        """Key attributes of every intermediate base-values relation."""
        return self.base_source.key

    def detail_tables(self) -> tuple:
        """All detail table names used, in step order (with duplicates)."""
        return tuple(step.detail for step in self.steps)

    def result_schema(self, table_schemas: Mapping[str, Schema]) -> Schema:
        schema = self.base_source.schema(table_schemas)
        for step in self.steps:
            schema = result_schema(schema, step.blocks)
        return schema

    @property
    def has_holistic(self) -> bool:
        return any(step.has_holistic for step in self.steps)

    def canonical_key(self) -> tuple:
        """Normalized structural identity of the whole expression.

        Two expressions with equal canonical keys compute the same result
        relation, rows in the same order: conditions are normalized
        commutatively (see :func:`canonical_condition_key`) but step
        order, block order, aggregate order and literal row order are all
        preserved — each affects the result's column or row layout.
        """
        if isinstance(self.base_source, DistinctBase):
            base_key = ("distinct", self.base_source.table, self.base_source.attrs)
        elif isinstance(self.base_source, LiteralBase):
            relation = self.base_source.relation
            base_key = (
                "literal",
                self.base_source.key,
                tuple(
                    (attr.name, attr.type)
                    for attr in relation.schema.attributes
                ),
                tuple(relation.rows),
            )
        else:  # pragma: no cover - no other sources exist today
            base_key = ("source", repr(self.base_source))
        step_keys = tuple(
            (
                "md",
                step.detail,
                tuple(
                    (
                        "block",
                        canonical_condition_key(block.condition),
                        tuple(
                            (
                                spec.func,
                                spec.input_expr.key()
                                if spec.input_expr is not None
                                else None,
                                spec.output,
                            )
                            for spec in block.aggregates
                        ),
                    )
                    for block in step.blocks
                ),
            )
            for step in self.steps
        )
        return (base_key, step_keys)

    def fingerprint(self) -> str:
        """sha256 of :meth:`canonical_key` — the expression component of
        the query service's cached plan signature."""
        return hashlib.sha256(repr(self.canonical_key()).encode("utf-8")).hexdigest()

    def describe(self) -> str:
        lines = [f"B0 <- {self.base_source!r}"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"B{index} <- {step}")
        return "\n".join(lines)

    # -- centralized evaluation ----------------------------------------------------

    def evaluate_centralized(self, tables: Mapping[str, Relation]) -> Relation:
        """Evaluate the whole chain on one node holding all detail data.

        This is the reference semantics every distributed plan must match.
        """
        current = self.base_source.evaluate(tables)
        for step in self.steps:
            try:
                detail = tables[step.detail]
            except KeyError:
                raise PlanError(f"unknown detail table {step.detail!r}") from None
            current = operator.evaluate(current, detail, step.blocks)
        return current
