"""GMDJ expression trees.

The paper composes GMDJ operators into *complex GMDJ expressions* where
the result of an inner GMDJ serves as the base-values relation of an
outer GMDJ (Section 2.2). An expression is therefore a chain::

    B_0  --MD_1-->  B_1  --MD_2-->  ...  --MD_m-->  B_m  (the result)

``B_0`` comes from a :class:`BaseSource`; each :class:`MDStep` applies one
GMDJ operator over a named detail table. Detail tables are resolved by
name against a mapping (a local warehouse, or the conceptual union of all
site warehouses in distributed evaluation).

Key attributes ``K`` of the base-values relation (Definition 1's
discussion) are carried explicitly: they drive Theorem 1 synchronization
and the optimizer's entailment checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import PlanError, SchemaError
from repro.gmdj import operator
from repro.gmdj.blocks import MDBlock, result_schema
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema


class BaseSource:
    """Produces the initial base-values relation B_0."""

    #: Attribute names forming a key of the produced relation.
    key: tuple

    def schema(self, tables: Mapping[str, Schema]) -> Schema:
        raise NotImplementedError

    def evaluate(self, tables: Mapping[str, Relation]) -> Relation:
        raise NotImplementedError

    @property
    def table_name(self) -> Optional[str]:
        """Name of the detail table this source reads, if any."""
        return None


@dataclass(frozen=True)
class DistinctBase(BaseSource):
    """``B_0 = distinct(pi_attrs(table))`` — the common base-values query.

    The projected attributes form the key K of B_0 (the relation is
    deduplicated on exactly those attributes).
    """

    table: str
    attrs: tuple

    def __init__(self, table: str, attrs: Sequence[str]):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "attrs", tuple(attrs))
        if not self.attrs:
            raise SchemaError("DistinctBase needs at least one attribute")

    @property
    def key(self) -> tuple:
        return self.attrs

    @property
    def table_name(self) -> Optional[str]:
        return self.table

    def schema(self, tables: Mapping[str, Schema]) -> Schema:
        return tables[self.table].project(self.attrs)

    def evaluate(self, tables: Mapping[str, Relation]) -> Relation:
        return tables[self.table].distinct_project(self.attrs)


@dataclass(frozen=True)
class LiteralBase(BaseSource):
    """A caller-supplied base-values relation (e.g. a dimension table).

    The caller must state which attributes form its key.
    """

    relation: Relation
    key: tuple

    def __init__(self, relation: Relation, key: Sequence[str]):
        key = tuple(key)
        for name in key:
            relation.schema.position(name)  # validates
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "key", key)

    def schema(self, tables: Mapping[str, Schema]) -> Schema:
        return self.relation.schema

    def evaluate(self, tables: Mapping[str, Relation]) -> Relation:
        return self.relation


@dataclass(frozen=True)
class MDStep:
    """One GMDJ operator application: detail table + blocks."""

    detail: str
    blocks: tuple

    def __init__(self, detail: str, blocks: Sequence[MDBlock]):
        blocks = tuple(blocks)
        if not blocks:
            raise PlanError("an MDStep needs at least one block")
        object.__setattr__(self, "detail", detail)
        object.__setattr__(self, "blocks", blocks)

    def output_names(self) -> tuple:
        names: list = []
        for block in self.blocks:
            names.extend(block.output_names())
        return tuple(names)

    @property
    def has_holistic(self) -> bool:
        return any(block.has_holistic for block in self.blocks)

    def __str__(self):
        inner = "; ".join(str(block) for block in self.blocks)
        return f"MD(detail={self.detail}, {inner})"


class GMDJExpression:
    """A chain of GMDJ operators over a base source.

    >>> expr = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [
    ...     MDStep("Flow", [MDBlock([count_star("cnt")], base.SourceAS == detail.SourceAS)]),
    ... ])
    """

    def __init__(self, base_source: BaseSource, steps: Sequence[MDStep]):
        if not isinstance(base_source, BaseSource):
            raise PlanError(f"expected a BaseSource, got {base_source!r}")
        self.base_source = base_source
        self.steps = tuple(steps)
        if not self.steps:
            raise PlanError("a GMDJ expression needs at least one MD step")
        self._validate_unique_outputs()

    def _validate_unique_outputs(self) -> None:
        seen = set()
        for step in self.steps:
            for name in step.output_names():
                if name in seen:
                    raise SchemaError(f"duplicate aggregate output name {name!r}")
                seen.add(name)

    # -- metadata ---------------------------------------------------------------

    @property
    def key(self) -> tuple:
        """Key attributes of every intermediate base-values relation."""
        return self.base_source.key

    def detail_tables(self) -> tuple:
        """All detail table names used, in step order (with duplicates)."""
        return tuple(step.detail for step in self.steps)

    def result_schema(self, table_schemas: Mapping[str, Schema]) -> Schema:
        schema = self.base_source.schema(table_schemas)
        for step in self.steps:
            schema = result_schema(schema, step.blocks)
        return schema

    @property
    def has_holistic(self) -> bool:
        return any(step.has_holistic for step in self.steps)

    def describe(self) -> str:
        lines = [f"B0 <- {self.base_source!r}"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"B{index} <- {step}")
        return "\n".join(lines)

    # -- centralized evaluation ----------------------------------------------------

    def evaluate_centralized(self, tables: Mapping[str, Relation]) -> Relation:
        """Evaluate the whole chain on one node holding all detail data.

        This is the reference semantics every distributed plan must match.
        """
        current = self.base_source.evaluate(tables)
        for step in self.steps:
            try:
                detail = tables[step.detail]
            except KeyError:
                raise PlanError(f"unknown detail table {step.detail!r}") from None
            current = operator.evaluate(current, detail, step.blocks)
        return current
