"""Centralized GMDJ evaluation (Definition 1 of the paper).

The evaluation strategy is the hash-based MD-join of Chatziantoniou et
al. (ICDE 2001), the paper's reference [7]: for each block, the equality
atoms of the condition build a hash table over the base-values relation;
a single scan of the detail relation probes it and updates per-base-row
accumulators, checking any residual (non-equality) conjuncts per
candidate pair. Conditions without equality atoms degrade to a
nested-loop scan — still correct, and exactly why GMDJ groups may
overlap, unlike SQL ``GROUP BY`` groups.

Three entry points:

- :func:`evaluate` — the full operator, producing finalized aggregates
  (what a centralized warehouse computes);
- :func:`evaluate_sub` — the site-side variant, producing *sub-aggregate*
  columns and per-row touch flags (|RNG| > 0 over the disjunction of all
  block conditions), used by Skalla sites and Proposition 1 reduction;
- :func:`super_aggregate` — the coordinator-side second GMDJ of Theorem
  1: combines shipped sub-results ``H`` into the global result via key
  equality θ_K and super-aggregates.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.errors import HolisticAggregateError
from repro.gmdj.blocks import MDBlock, result_schema, sub_result_schema
from repro.obs.metrics import active_registry
from repro.relalg import compiler
from repro.relalg.aggregates import ComponentAccumulator
from repro.relalg.engine import active_engine
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR
from repro.relalg.predicates import split_condition
from repro.relalg.relation import Relation

# Cached counter handles for the scan hot path: the registry lookup
# (string formatting + dict probe) per operator call is measurable at
# GMDJ call rates, so the handles are resolved once per active registry
# and refreshed only when the active registry changes identity.
_COUNTER_CACHE: tuple = ()


def _hot_counters() -> tuple:
    """``(tuples_examined, tuples_emitted)`` counters of the active registry."""
    global _COUNTER_CACHE
    registry = active_registry()
    cache = _COUNTER_CACHE
    if not cache or cache[0] is not registry:
        cache = (
            registry,
            registry.counter("gmdj.tuples_examined"),
            registry.counter("gmdj.tuples_emitted"),
        )
        _COUNTER_CACHE = cache
    return cache[1], cache[2]


def evaluate(base: Relation, detail: Relation, blocks: Sequence[MDBlock]) -> Relation:
    """``MD(B, R, (l_1..l_m), (theta_1..theta_m))`` with finalized aggregates."""
    accumulators, _touched = _accumulate(base, detail, blocks, track_touch=False)
    schema = result_schema(base.schema, blocks)
    rows = []
    for base_index, base_row in enumerate(base.rows):
        extra = []
        for block_index, block in enumerate(blocks):
            for accumulator in accumulators[block_index][base_index]:
                extra.append(accumulator.result())
        rows.append(base_row + tuple(extra))
    _hot_counters()[1].inc(len(rows))
    return Relation(schema, rows)


def evaluate_sub(
    base: Relation, detail: Relation, blocks: Sequence[MDBlock]
) -> tuple:
    """Site-side GMDJ: sub-aggregate columns plus touch flags.

    Returns ``(H_i, touched)`` where ``H_i`` carries one column per
    sub-aggregate component (Theorem 1's ``l'``) and ``touched[k]`` is
    True iff base row ``k`` had ``|RNG(b, R_i, theta_1 v ... v theta_m)| > 0``
    — the Proposition 1 group-reduction test.
    """
    for block in blocks:
        if block.has_holistic:
            raise HolisticAggregateError(
                "holistic aggregates cannot produce shippable sub-results"
            )
    accumulators, touched = _accumulate(base, detail, blocks, track_touch=True)
    schema = sub_result_schema(base.schema, blocks)
    rows = []
    for base_index, base_row in enumerate(base.rows):
        extra = []
        for block_index, _block in enumerate(blocks):
            for accumulator in accumulators[block_index][base_index]:
                extra.extend(accumulator.sub_values())
        rows.append(base_row + tuple(extra))
    _hot_counters()[1].inc(len(rows))
    return Relation(schema, rows), touched


def evaluate_both(
    base: Relation, detail: Relation, blocks: Sequence[MDBlock]
) -> tuple:
    """One scan producing finalized *and* sub-aggregate outputs.

    Used by synchronization-reduced local chains (Theorem 5 / Corollary
    1): the finalized relation feeds the next GMDJ of the chain locally,
    while the sub-aggregate columns are what eventually gets shipped.

    Returns ``(full, sub, touched)``; ``full`` and ``sub`` are row-aligned
    with ``base``.
    """
    for block in blocks:
        if block.has_holistic:
            raise HolisticAggregateError(
                "holistic aggregates cannot produce shippable sub-results"
            )
    accumulators, touched = _accumulate(base, detail, blocks, track_touch=True)
    full_rows = []
    sub_rows = []
    for base_index, base_row in enumerate(base.rows):
        finals = []
        subs = []
        for block_index, _block in enumerate(blocks):
            for accumulator in accumulators[block_index][base_index]:
                finals.append(accumulator.result())
                subs.extend(accumulator.sub_values())
        full_rows.append(base_row + tuple(finals))
        sub_rows.append(base_row + tuple(subs))
    full = Relation(result_schema(base.schema, blocks), full_rows)
    sub = Relation(sub_result_schema(base.schema, blocks), sub_rows)
    _hot_counters()[1].inc(len(full_rows))
    return full, sub, touched


class SyncSession:
    """Incremental Theorem-1 synchronization against a fixed base.

    Section 3.2: "the coordinator can synchronize H with those
    sub-results it has already received while receiving blocks of H from
    slower sites, rather than having to wait for all of H to be
    assembled". A session holds one accumulator set per base row (keyed
    by K through a hash index), absorbs sub-result fragments in any
    order, and finalizes once.

    Fragments are absorbed in *completion* order when site execution is
    parallel, which would make float super-aggregation fold-order
    dependent. To keep results bit-identical across executors, each
    ``source`` (site) folds into its own accumulator bank, and
    :meth:`finish` merges the banks in sorted source order — a
    deterministic combine tree regardless of arrival order. Per-schema
    absorb plans (key/sub-column positions) are cached so row blocking
    does not recompute them per fragment.
    """

    def __init__(self, base: Relation, key_attrs: Sequence[str], blocks: Sequence[MDBlock]):
        self._base = base
        self._key_attrs = tuple(key_attrs)
        self._blocks = tuple(blocks)
        key_positions = base.schema.positions(self._key_attrs)
        self._lookup: dict = {}
        for base_index, base_row in enumerate(base.rows):
            key = tuple(base_row[position] for position in key_positions)
            self._lookup.setdefault(key, []).append(base_index)
        self._banks: dict = {}  # source -> accumulators[block][base_row][agg]
        self._plans: dict = {}  # h schema -> (key_positions, sub_positions)
        self._lock = threading.Lock()

    def _fresh_bank(self) -> list:
        return [
            [[spec.accumulator() for spec in block.aggregates] for _row in self._base.rows]
            for block in self._blocks
        ]

    def _bank_for(self, source: str) -> list:
        bank = self._banks.get(source)
        if bank is None:
            with self._lock:
                bank = self._banks.get(source)
                if bank is None:
                    bank = self._fresh_bank()
                    self._banks[source] = bank
        return bank

    def _plan_for(self, schema) -> tuple:
        plan = self._plans.get(schema)
        if plan is None:
            key_positions = schema.positions(self._key_attrs)
            sub_positions = [
                [schema.positions(spec.sub_names()) for spec in block.aggregates]
                for block in self._blocks
            ]
            plan = (key_positions, sub_positions)
            with self._lock:
                self._plans[schema] = plan
        return plan

    def absorb(self, h: Relation, source: str = "") -> None:
        """Fold one sub-result fragment into the session (O(|h|)).

        ``source`` identifies the fragment's origin (site id); fragments
        sharing a source fold together in arrival order, distinct
        sources merge deterministically at :meth:`finish`.
        """
        key_positions, sub_positions = self._plan_for(h.schema)
        accumulators = self._bank_for(source)
        lookup_get = self._lookup.get
        block_range = range(len(self._blocks))
        for h_row in h.rows:
            key = tuple(h_row[position] for position in key_positions)
            for base_index in lookup_get(key, ()):
                for block_index in block_range:
                    block_accumulators = accumulators[block_index][base_index]
                    for agg_index, positions in enumerate(sub_positions[block_index]):
                        block_accumulators[agg_index].load_sub_values(
                            tuple(h_row[position] for position in positions)
                        )

    def reset_source(self, source: str) -> None:
        """Discard everything absorbed from one source (site).

        The retry layer calls this between leg attempts: a failed leg may
        have absorbed a partial fragment before raising, and the re-run
        leg will absorb the full fragment again. Because each source folds
        into its own bank, dropping the bank is an exact undo.
        """
        with self._lock:
            self._banks.pop(source, None)

    def _merged_bank(self) -> list:
        """All source banks combined in sorted source order."""
        if len(self._banks) == 1:
            return next(iter(self._banks.values()))
        merged = self._fresh_bank()
        for source in sorted(self._banks):
            bank = self._banks[source]
            for block_index in range(len(self._blocks)):
                merged_block = merged[block_index]
                bank_block = bank[block_index]
                for base_index in range(len(self._base.rows)):
                    for target, partial in zip(
                        merged_block[base_index], bank_block[base_index]
                    ):
                        target.merge(partial)
        return merged

    def finish(self) -> Relation:
        """Finalize super-aggregates into the next base-result structure."""
        accumulators = self._merged_bank() if self._banks else self._fresh_bank()
        schema = result_schema(self._base.schema, self._blocks)
        rows = []
        for base_index, base_row in enumerate(self._base.rows):
            extra = []
            for block_index, _block in enumerate(self._blocks):
                for accumulator in accumulators[block_index][base_index]:
                    extra.append(accumulator.result())
            rows.append(base_row + tuple(extra))
        return Relation(schema, rows)


def super_aggregate(
    base: Relation,
    h: Relation,
    key_attrs: Sequence[str],
    blocks: Sequence[MDBlock],
) -> Relation:
    """Theorem 1's outer GMDJ: ``MD(B, H, (l''_1..l''_m), theta_K)``.

    ``h`` is the multiset union of site sub-results; rows of ``h`` are
    matched to rows of ``base`` by equality on ``key_attrs`` and their
    sub-aggregate components are combined, then finalized. Implemented
    as a one-fragment :class:`SyncSession`.
    """
    session = SyncSession(base, key_attrs, blocks)
    session.absorb(h)
    return session.finish()


def merge_sub_results(
    h: Relation, key_attrs: Sequence[str], blocks: Sequence[MDBlock]
) -> Relation:
    """Combine sub-result rows sharing a key into one row per key.

    Sub-aggregate components are associative and commutative, so partial
    results can be merged *without finalizing* — the output is again a
    valid sub-result relation with the same schema. This is what lets an
    intermediate coordinator in a multi-tier topology (the paper's
    future-work architecture, Section 6) compress its children's H
    relations before forwarding them upward.

    Rows keep the first-seen order of their keys; non-key, non-aggregate
    base attributes (if any) are taken from the first row of each key.
    """
    key_positions = h.schema.positions(key_attrs)
    sub_positions = []  # per block, per agg: component positions in h
    for block in blocks:
        per_agg = []
        for spec in block.aggregates:
            per_agg.append(h.schema.positions(spec.sub_names()))
        sub_positions.append(per_agg)

    order: list = []
    first_row: dict = {}
    accumulators: dict = {}
    for row in h.rows:
        key = tuple(row[position] for position in key_positions)
        if key not in accumulators:
            order.append(key)
            first_row[key] = row
            accumulators[key] = [
                [spec.accumulator() for spec in block.aggregates] for block in blocks
            ]
        per_block = accumulators[key]
        for block_index, block in enumerate(blocks):
            for agg_index, _spec in enumerate(block.aggregates):
                positions = sub_positions[block_index][agg_index]
                values = tuple(row[position] for position in positions)
                per_block[block_index][agg_index].load_sub_values(values)

    all_sub_positions = [
        position
        for per_agg in sub_positions
        for positions in per_agg
        for position in positions
    ]
    rows = []
    for key in order:
        template = list(first_row[key])
        flat_values: list = []
        for per_agg in accumulators[key]:
            for accumulator in per_agg:
                flat_values.extend(accumulator.sub_values())
        for position, value in zip(all_sub_positions, flat_values):
            template[position] = value
        rows.append(tuple(template))
    return Relation(h.schema, rows)


# ---------------------------------------------------------------------------
# Shared accumulation scan
# ---------------------------------------------------------------------------


def _accumulate(base, detail, blocks, track_touch):
    """Run the MD-join scan; returns (accumulators, touched).

    ``accumulators[block][base_row][agg]`` holds the per-group state.
    ``touched[base_row]`` is maintained only when ``track_touch``.

    The scan's per-row work runs through codegen kernels
    (:mod:`repro.relalg.compiler`): predicates, hash keys and aggregate
    inputs are lowered to positional closures once per block (cached
    across calls by expression shape), so the inner loops pay a plain
    function call per row instead of walking the expression AST. The
    interpreter path (:meth:`Expr.compile`) remains the differential
    oracle — see ``tests/test_compiler.py``.
    """
    if active_engine() == "columnar":
        columnar_result = _accumulate_columnar(base, detail, blocks, track_touch)
        if columnar_result is not None:
            return columnar_result

    base_schemas = {BASE_VAR: base.schema}
    detail_schemas = {DETAIL_VAR: detail.schema, None: detail.schema}
    both_schemas = {BASE_VAR: base.schema, **detail_schemas}
    detail_aliases = {None: DETAIL_VAR}
    touched = [False] * len(base.rows) if track_touch else None
    accumulators = []
    tuples_examined = 0

    for block in blocks:
        block_accumulators = [
            [spec.accumulator() for spec in block.aggregates] for _row in base.rows
        ]
        accumulators.append(block_accumulators)
        input_kernels = [
            None
            if spec.input_expr is None
            else compiler.compile_scalar(
                spec.input_expr, detail_schemas, (DETAIL_VAR,), aliases=detail_aliases
            )
            for spec in block.aggregates
        ]
        split = split_condition(block.condition, BASE_VAR, DETAIL_VAR)

        # Base rows that can possibly match (base-only conjuncts).
        if split.base_only:
            base_admits = compiler.compile_predicate(
                split.base_only, base_schemas, (BASE_VAR,)
            )
            candidate_base = [
                index for index, row in enumerate(base.rows) if base_admits(row)
            ]
        else:
            candidate_base = range(len(base.rows))

        # Detail rows that can possibly match (detail-only conjuncts).
        if split.detail_only:
            detail_admits = compiler.compile_predicate(
                split.detail_only, detail_schemas, (DETAIL_VAR,), aliases=detail_aliases
            )
            detail_rows = [row for row in detail.rows if detail_admits(row)]
        else:
            detail_rows = detail.rows

        residual = (
            compiler.compile_predicate(
                split.residual,
                both_schemas,
                (BASE_VAR, DETAIL_VAR),
                aliases=detail_aliases,
            )
            if split.residual
            else None
        )
        tuples_examined += len(detail_rows)
        base_rows = base.rows

        if split.hashable:
            base_key = compiler.compile_values(
                [atom.base_expr for atom in split.atoms], base_schemas, (BASE_VAR,)
            )
            detail_key = compiler.compile_values(
                [atom.detail_expr for atom in split.atoms],
                detail_schemas,
                (DETAIL_VAR,),
                aliases=detail_aliases,
            )
            # NULL keys never match under SQL equality semantics, so rows
            # with a NULL key component are excluded from build and probe.
            table: dict = {}
            for base_index in candidate_base:
                key = base_key(base_rows[base_index])
                if None in key:
                    continue
                table.setdefault(key, []).append(base_index)

            table_get = table.get
            for detail_row in detail_rows:
                key = detail_key(detail_row)
                if None in key:
                    continue
                matches = table_get(key)
                if not matches:
                    continue
                input_values = [
                    None if kernel is None else kernel(detail_row)
                    for kernel in input_kernels
                ]
                for base_index in matches:
                    if residual is not None and not residual(
                        base_rows[base_index], detail_row
                    ):
                        continue
                    if track_touch:
                        touched[base_index] = True
                    for accumulator, value in zip(
                        block_accumulators[base_index], input_values
                    ):
                        accumulator.update(value)
        else:
            # No equality atoms: nested-loop evaluation, O(|B| * |R|).
            for detail_row in detail_rows:
                input_values = [
                    None if kernel is None else kernel(detail_row)
                    for kernel in input_kernels
                ]
                for base_index in candidate_base:
                    if residual is not None and not residual(
                        base_rows[base_index], detail_row
                    ):
                        continue
                    if track_touch:
                        touched[base_index] = True
                    for accumulator, value in zip(
                        block_accumulators[base_index], input_values
                    ):
                        accumulator.update(value)

    _hot_counters()[0].inc(tuples_examined)
    return accumulators, touched


def _vectorizable(blocks) -> bool:
    """Whether every aggregate's components have inlinable update rules.

    Holistic accumulators and custom components registered via
    :func:`repro.relalg.aggregates.register_aggregate` with kinds outside
    :data:`repro.relalg.compiler.VECTORIZED_COMPONENT_KINDS` fall back to
    the row engine — correctness over speed for extensions.
    """
    for block in blocks:
        for spec in block.aggregates:
            if spec.is_holistic:
                return False
            for _suffix, component in spec.function.components():
                if component.kind not in compiler.VECTORIZED_COMPONENT_KINDS:
                    return False
    return True


def _accumulate_columnar(base, detail, blocks, track_touch):
    """Vectorized MD-join scan over the detail relation's columns.

    Same algorithm as the row path below — base-only prefilter, hash
    build over equality atoms, detail scan with residual checks — but the
    per-detail-row work (selection mask, NULL-key check, probe, aggregate
    input evaluation, component updates) runs inside one fused generated
    kernel (:func:`repro.relalg.compiler.compile_grouped_accumulate`)
    over hoisted column vectors, accumulating into flat per-component
    lists. Returns ``None`` when a block cannot be vectorized (holistic
    or unknown custom components), which sends the caller down the row
    path. Results are bit-identical to the row engine: kernels replicate
    ``Component.update`` statement-for-statement and scan detail rows in
    the same order.
    """
    if not _vectorizable(blocks):
        return None
    base_schemas = {BASE_VAR: base.schema}
    detail_schemas = {DETAIL_VAR: detail.schema, None: detail.schema}
    both_schemas = {BASE_VAR: base.schema, **detail_schemas}
    detail_aliases = {None: DETAIL_VAR}
    columns = detail.to_columnar().value_lists()
    detail_count = len(detail.rows)
    base_rows = base.rows
    base_count = len(base_rows)
    touched = [False] * base_count if track_touch else None
    accumulators = []
    tuples_examined = 0

    for block in blocks:
        split = split_condition(block.condition, BASE_VAR, DETAIL_VAR)

        if split.base_only:
            base_admits = compiler.compile_predicate(
                split.base_only, base_schemas, (BASE_VAR,)
            )
            candidate_base = [
                index for index, row in enumerate(base_rows) if base_admits(row)
            ]
        else:
            candidate_base = list(range(base_count))

        if split.detail_only:
            mask = compiler.compile_mask(
                split.detail_only,
                detail_schemas,
                (DETAIL_VAR,),
                DETAIL_VAR,
                aliases=detail_aliases,
            )
            indices = mask(detail_count, columns)
        else:
            indices = range(detail_count)
        tuples_examined += len(indices)

        if split.hashable:
            base_key = compiler.compile_values(
                [atom.base_expr for atom in split.atoms], base_schemas, (BASE_VAR,)
            )
            table: dict = {}
            for base_index in candidate_base:
                key = base_key(base_rows[base_index])
                if None in key:
                    continue
                table.setdefault(key, []).append(base_index)
            probe = table.get
            key_exprs = [atom.detail_expr for atom in split.atoms]
        else:
            probe = candidate_base
            key_exprs = None

        component_kinds = tuple(
            tuple(component.kind for _suffix, component in spec.function.components())
            for spec in block.aggregates
        )
        kernel = compiler.compile_grouped_accumulate(
            key_exprs,
            tuple(spec.input_expr for spec in block.aggregates),
            component_kinds,
            split.residual,
            both_schemas,
            DETAIL_VAR,
            BASE_VAR,
            track_touch,
            aliases=detail_aliases,
        )
        layout = []  # per aggregate: (function, flat offset, component count)
        flat: list = []
        for spec in block.aggregates:
            components = spec.function.components()
            layout.append((spec.function, len(flat), len(components)))
            for _suffix, component in components:
                flat.append([component.initial()] * base_count)
        kernel(indices, columns, base_rows, probe, flat, touched)

        block_accumulators = [
            [
                ComponentAccumulator.from_values(
                    function,
                    [flat[offset + position][base_index] for position in range(count)],
                )
                for function, offset, count in layout
            ]
            for base_index in range(base_count)
        ]
        accumulators.append(block_accumulators)

    _hot_counters()[0].inc(tuples_examined)
    return accumulators, touched
