"""Centralized GMDJ evaluation (Definition 1 of the paper).

The evaluation strategy is the hash-based MD-join of Chatziantoniou et
al. (ICDE 2001), the paper's reference [7]: for each block, the equality
atoms of the condition build a hash table over the base-values relation;
a single scan of the detail relation probes it and updates per-base-row
accumulators, checking any residual (non-equality) conjuncts per
candidate pair. Conditions without equality atoms degrade to a
nested-loop scan — still correct, and exactly why GMDJ groups may
overlap, unlike SQL ``GROUP BY`` groups.

Three entry points:

- :func:`evaluate` — the full operator, producing finalized aggregates
  (what a centralized warehouse computes);
- :func:`evaluate_sub` — the site-side variant, producing *sub-aggregate*
  columns and per-row touch flags (|RNG| > 0 over the disjunction of all
  block conditions), used by Skalla sites and Proposition 1 reduction;
- :func:`super_aggregate` — the coordinator-side second GMDJ of Theorem
  1: combines shipped sub-results ``H`` into the global result via key
  equality θ_K and super-aggregates.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import HolisticAggregateError
from repro.gmdj.blocks import MDBlock, result_schema, sub_result_schema
from repro.obs.metrics import active_registry
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR
from repro.relalg.predicates import split_condition
from repro.relalg.relation import Relation


def evaluate(base: Relation, detail: Relation, blocks: Sequence[MDBlock]) -> Relation:
    """``MD(B, R, (l_1..l_m), (theta_1..theta_m))`` with finalized aggregates."""
    accumulators, _touched = _accumulate(base, detail, blocks, track_touch=False)
    schema = result_schema(base.schema, blocks)
    rows = []
    for base_index, base_row in enumerate(base.rows):
        extra = []
        for block_index, block in enumerate(blocks):
            for accumulator in accumulators[block_index][base_index]:
                extra.append(accumulator.result())
        rows.append(base_row + tuple(extra))
    active_registry().counter("gmdj.tuples_emitted").inc(len(rows))
    return Relation(schema, rows)


def evaluate_sub(
    base: Relation, detail: Relation, blocks: Sequence[MDBlock]
) -> tuple:
    """Site-side GMDJ: sub-aggregate columns plus touch flags.

    Returns ``(H_i, touched)`` where ``H_i`` carries one column per
    sub-aggregate component (Theorem 1's ``l'``) and ``touched[k]`` is
    True iff base row ``k`` had ``|RNG(b, R_i, theta_1 v ... v theta_m)| > 0``
    — the Proposition 1 group-reduction test.
    """
    for block in blocks:
        if block.has_holistic:
            raise HolisticAggregateError(
                "holistic aggregates cannot produce shippable sub-results"
            )
    accumulators, touched = _accumulate(base, detail, blocks, track_touch=True)
    schema = sub_result_schema(base.schema, blocks)
    rows = []
    for base_index, base_row in enumerate(base.rows):
        extra = []
        for block_index, _block in enumerate(blocks):
            for accumulator in accumulators[block_index][base_index]:
                extra.extend(accumulator.sub_values())
        rows.append(base_row + tuple(extra))
    active_registry().counter("gmdj.tuples_emitted").inc(len(rows))
    return Relation(schema, rows), touched


def evaluate_both(
    base: Relation, detail: Relation, blocks: Sequence[MDBlock]
) -> tuple:
    """One scan producing finalized *and* sub-aggregate outputs.

    Used by synchronization-reduced local chains (Theorem 5 / Corollary
    1): the finalized relation feeds the next GMDJ of the chain locally,
    while the sub-aggregate columns are what eventually gets shipped.

    Returns ``(full, sub, touched)``; ``full`` and ``sub`` are row-aligned
    with ``base``.
    """
    for block in blocks:
        if block.has_holistic:
            raise HolisticAggregateError(
                "holistic aggregates cannot produce shippable sub-results"
            )
    accumulators, touched = _accumulate(base, detail, blocks, track_touch=True)
    full_rows = []
    sub_rows = []
    for base_index, base_row in enumerate(base.rows):
        finals = []
        subs = []
        for block_index, _block in enumerate(blocks):
            for accumulator in accumulators[block_index][base_index]:
                finals.append(accumulator.result())
                subs.extend(accumulator.sub_values())
        full_rows.append(base_row + tuple(finals))
        sub_rows.append(base_row + tuple(subs))
    full = Relation(result_schema(base.schema, blocks), full_rows)
    sub = Relation(sub_result_schema(base.schema, blocks), sub_rows)
    active_registry().counter("gmdj.tuples_emitted").inc(len(full_rows))
    return full, sub, touched


class SyncSession:
    """Incremental Theorem-1 synchronization against a fixed base.

    Section 3.2: "the coordinator can synchronize H with those
    sub-results it has already received while receiving blocks of H from
    slower sites, rather than having to wait for all of H to be
    assembled". A session holds one accumulator set per base row (keyed
    by K through a hash index), absorbs sub-result fragments in any
    order, and finalizes once.
    """

    def __init__(self, base: Relation, key_attrs: Sequence[str], blocks: Sequence[MDBlock]):
        self._base = base
        self._key_attrs = tuple(key_attrs)
        self._blocks = tuple(blocks)
        key_positions = base.schema.positions(self._key_attrs)
        self._lookup: dict = {}
        for base_index, base_row in enumerate(base.rows):
            key = tuple(base_row[position] for position in key_positions)
            self._lookup.setdefault(key, []).append(base_index)
        self._accumulators = [
            [[spec.accumulator() for spec in block.aggregates] for _row in base.rows]
            for block in blocks
        ]

    def absorb(self, h: Relation) -> None:
        """Fold one sub-result fragment into the session (O(|h|))."""
        key_positions = h.schema.positions(self._key_attrs)
        sub_positions = [
            [h.schema.positions(spec.sub_names()) for spec in block.aggregates]
            for block in self._blocks
        ]
        accumulators = self._accumulators
        for h_row in h.rows:
            key = tuple(h_row[position] for position in key_positions)
            for base_index in self._lookup.get(key, ()):
                for block_index, block in enumerate(self._blocks):
                    for agg_index, _spec in enumerate(block.aggregates):
                        positions = sub_positions[block_index][agg_index]
                        values = tuple(h_row[position] for position in positions)
                        accumulators[block_index][base_index][agg_index].load_sub_values(
                            values
                        )

    def finish(self) -> Relation:
        """Finalize super-aggregates into the next base-result structure."""
        schema = result_schema(self._base.schema, self._blocks)
        rows = []
        for base_index, base_row in enumerate(self._base.rows):
            extra = []
            for block_index, _block in enumerate(self._blocks):
                for accumulator in self._accumulators[block_index][base_index]:
                    extra.append(accumulator.result())
            rows.append(base_row + tuple(extra))
        return Relation(schema, rows)


def super_aggregate(
    base: Relation,
    h: Relation,
    key_attrs: Sequence[str],
    blocks: Sequence[MDBlock],
) -> Relation:
    """Theorem 1's outer GMDJ: ``MD(B, H, (l''_1..l''_m), theta_K)``.

    ``h`` is the multiset union of site sub-results; rows of ``h`` are
    matched to rows of ``base`` by equality on ``key_attrs`` and their
    sub-aggregate components are combined, then finalized. Implemented
    as a one-fragment :class:`SyncSession`.
    """
    session = SyncSession(base, key_attrs, blocks)
    session.absorb(h)
    return session.finish()


def merge_sub_results(
    h: Relation, key_attrs: Sequence[str], blocks: Sequence[MDBlock]
) -> Relation:
    """Combine sub-result rows sharing a key into one row per key.

    Sub-aggregate components are associative and commutative, so partial
    results can be merged *without finalizing* — the output is again a
    valid sub-result relation with the same schema. This is what lets an
    intermediate coordinator in a multi-tier topology (the paper's
    future-work architecture, Section 6) compress its children's H
    relations before forwarding them upward.

    Rows keep the first-seen order of their keys; non-key, non-aggregate
    base attributes (if any) are taken from the first row of each key.
    """
    key_positions = h.schema.positions(key_attrs)
    sub_positions = []  # per block, per agg: component positions in h
    for block in blocks:
        per_agg = []
        for spec in block.aggregates:
            per_agg.append(h.schema.positions(spec.sub_names()))
        sub_positions.append(per_agg)

    order: list = []
    first_row: dict = {}
    accumulators: dict = {}
    for row in h.rows:
        key = tuple(row[position] for position in key_positions)
        if key not in accumulators:
            order.append(key)
            first_row[key] = row
            accumulators[key] = [
                [spec.accumulator() for spec in block.aggregates] for block in blocks
            ]
        per_block = accumulators[key]
        for block_index, block in enumerate(blocks):
            for agg_index, _spec in enumerate(block.aggregates):
                positions = sub_positions[block_index][agg_index]
                values = tuple(row[position] for position in positions)
                per_block[block_index][agg_index].load_sub_values(values)

    all_sub_positions = [
        position
        for per_agg in sub_positions
        for positions in per_agg
        for position in positions
    ]
    rows = []
    for key in order:
        template = list(first_row[key])
        flat_values: list = []
        for per_agg in accumulators[key]:
            for accumulator in per_agg:
                flat_values.extend(accumulator.sub_values())
        for position, value in zip(all_sub_positions, flat_values):
            template[position] = value
        rows.append(tuple(template))
    return Relation(h.schema, rows)


# ---------------------------------------------------------------------------
# Shared accumulation scan
# ---------------------------------------------------------------------------


def _accumulate(base, detail, blocks, track_touch):
    """Run the MD-join scan; returns (accumulators, touched).

    ``accumulators[block][base_row][agg]`` holds the per-group state.
    ``touched[base_row]`` is maintained only when ``track_touch``.
    """
    schemas = {BASE_VAR: base.schema, DETAIL_VAR: detail.schema, None: detail.schema}
    touched = [False] * len(base.rows) if track_touch else None
    accumulators = []
    tuples_examined = 0

    for block in blocks:
        block_accumulators = [
            [spec.accumulator() for spec in block.aggregates] for _row in base.rows
        ]
        accumulators.append(block_accumulators)
        input_funcs = [spec.compile_input(detail.schema) for spec in block.aggregates]
        split = split_condition(block.condition, BASE_VAR, DETAIL_VAR)
        rows_env: dict = {BASE_VAR: None, DETAIL_VAR: None, None: None}

        # Base rows that can possibly match (base-only conjuncts).
        if split.base_only:
            base_predicates = [conjunct.compile(schemas) for conjunct in split.base_only]

            def base_admits(row, _predicates=base_predicates, _env=rows_env):
                _env[BASE_VAR] = row
                return all(predicate(_env) for predicate in _predicates)

            candidate_base = [
                index for index, row in enumerate(base.rows) if base_admits(row)
            ]
        else:
            candidate_base = range(len(base.rows))

        # Detail rows that can possibly match (detail-only conjuncts).
        if split.detail_only:
            detail_predicates = [conjunct.compile(schemas) for conjunct in split.detail_only]

            def detail_admits(row, _predicates=detail_predicates, _env=rows_env):
                _env[DETAIL_VAR] = row
                _env[None] = row
                return all(predicate(_env) for predicate in _predicates)

            detail_rows = [row for row in detail.rows if detail_admits(row)]
        else:
            detail_rows = detail.rows

        residual_funcs = [conjunct.compile(schemas) for conjunct in split.residual]
        tuples_examined += len(detail_rows)

        if split.hashable:
            base_key_funcs = [atom.base_expr.compile(schemas) for atom in split.atoms]
            detail_key_funcs = [atom.detail_expr.compile(schemas) for atom in split.atoms]
            # NULL keys never match under SQL equality semantics, so rows
            # with a NULL key component are excluded from build and probe.
            table: dict = {}
            for base_index in candidate_base:
                rows_env[BASE_VAR] = base.rows[base_index]
                key = tuple(func(rows_env) for func in base_key_funcs)
                if None in key:
                    continue
                table.setdefault(key, []).append(base_index)

            for detail_row in detail_rows:
                rows_env[DETAIL_VAR] = detail_row
                rows_env[None] = detail_row
                key = tuple(func(rows_env) for func in detail_key_funcs)
                if None in key:
                    continue
                matches = table.get(key)
                if not matches:
                    continue
                input_values = [
                    None if func is None else func(rows_env) for func in input_funcs
                ]
                for base_index in matches:
                    if residual_funcs:
                        rows_env[BASE_VAR] = base.rows[base_index]
                        if not all(func(rows_env) for func in residual_funcs):
                            continue
                    if track_touch:
                        touched[base_index] = True
                    for accumulator, value in zip(
                        block_accumulators[base_index], input_values
                    ):
                        accumulator.update(value)
        else:
            # No equality atoms: nested-loop evaluation, O(|B| * |R|).
            for detail_row in detail_rows:
                rows_env[DETAIL_VAR] = detail_row
                rows_env[None] = detail_row
                input_values = [
                    None if func is None else func(rows_env) for func in input_funcs
                ]
                for base_index in candidate_base:
                    rows_env[BASE_VAR] = base.rows[base_index]
                    if residual_funcs and not all(func(rows_env) for func in residual_funcs):
                        continue
                    if track_touch:
                        touched[base_index] = True
                    for accumulator, value in zip(
                        block_accumulators[base_index], input_values
                    ):
                        accumulator.update(value)

    active_registry().counter("gmdj.tuples_examined").inc(tuples_examined)
    return accumulators, touched
