"""``repro.net`` — the simulated network substrate.

Relations shipped between Skalla sites and the coordinator are really
encoded with a binary codec (:mod:`~repro.net.serialize`), moved over
per-site channels with byte accounting (:mod:`~repro.net.channel`), and
priced by an affine latency/bandwidth cost model
(:mod:`~repro.net.costmodel`).
"""

from repro.net.channel import Channel, DirectionStats, Network
from repro.net.costmodel import FREE, LAN, WAN, CostModel
from repro.net.message import (
    BASE_QUERY,
    BASE_RESULT,
    FINAL_RESULT,
    HEADER_BYTES,
    SHIP_BASE,
    SUB_RESULT,
    Message,
)
from repro.net.serialize import decode_relation, encode_relation, wire_size

__all__ = [
    "BASE_QUERY",
    "BASE_RESULT",
    "Channel",
    "CostModel",
    "DirectionStats",
    "FINAL_RESULT",
    "FREE",
    "HEADER_BYTES",
    "LAN",
    "Message",
    "Network",
    "SHIP_BASE",
    "SUB_RESULT",
    "WAN",
    "decode_relation",
    "encode_relation",
    "wire_size",
]
