"""Simulated coordinator<->site channels with byte accounting.

The coordinator owns one duplex :class:`Channel` per site. All data moves
as encoded :class:`~repro.net.message.Message` payloads — the receiving
side *decodes* the bytes into fresh objects, so sites and coordinator
never share mutable state, exactly as separate machines would not.

Byte/message accounting lives in a
:class:`~repro.obs.metrics.MetricsRegistry` (one per :class:`Network`,
or injected so a traced run sees wire traffic next to its spans):
``net.messages{direction,site}``, ``net.bytes{direction,site}`` and the
per-round ``net.round.bytes{direction,round,site}`` counters are the
ground truth behind every "data transferred" number reported by the
benchmarks. :class:`DirectionStats` keeps its historic ``messages`` /
``bytes`` / ``by_round`` surface as *views* over those counters.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.errors import NetworkError
from repro.net.message import HEADER_BYTES, Message
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.tracer import NULL_TRACER

DOWN = "down"  # coordinator -> site
UP = "up"  # site -> coordinator


class DirectionStats:
    """Byte/message counters for one direction of a channel.

    A view over the channel's metrics registry: recording increments
    registry counters, and the read properties reflect them, so existing
    callers (stats, benchmarks, tests) see the same numbers whether they
    read the registry or this object.
    """

    __slots__ = ("site_id", "direction", "_registry", "_messages", "_bytes", "_rounds")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        site_id: str = "",
        direction: str = DOWN,
    ):
        if direction not in (DOWN, UP):
            raise NetworkError(f"unknown direction {direction!r}")
        self.site_id = site_id
        self.direction = direction
        self._registry = registry if registry is not None else MetricsRegistry()
        self._messages = self._registry.counter(
            "net.messages", direction=direction, site=site_id
        )
        self._bytes = self._registry.counter(
            "net.bytes", direction=direction, site=site_id
        )
        self._rounds: Dict[int, Counter] = {}

    def record(self, message: Message) -> None:
        # Defensive validation: a malformed message (negative round, a
        # size inconsistent with its payload) would silently corrupt the
        # ``net.round.bytes`` accounting every report is built on, so the
        # bookkeeper rejects it even though ``Message`` itself validates
        # at construction (duck-typed or mutated objects get here too).
        round_index = message.round_index
        if (
            not isinstance(round_index, int)
            or isinstance(round_index, bool)
            or round_index < 0
        ):
            raise NetworkError(
                f"malformed message on channel {self.site_id!r}: "
                f"round_index must be a non-negative int, got {round_index!r}"
            )
        payload = getattr(message, "payload", None)
        expected = HEADER_BYTES + (len(payload) if payload else 0)
        if message.size_bytes != expected:
            raise NetworkError(
                f"malformed message on channel {self.site_id!r}: size_bytes="
                f"{message.size_bytes} inconsistent with payload ({expected})"
            )
        self._messages.inc()
        self._bytes.inc(message.size_bytes)
        round_counter = self._rounds.get(message.round_index)
        if round_counter is None:
            round_counter = self._registry.counter(
                "net.round.bytes",
                direction=self.direction,
                site=self.site_id,
                round=message.round_index,
            )
            self._rounds[message.round_index] = round_counter
        round_counter.inc(message.size_bytes)

    # -- read views --------------------------------------------------------------

    @property
    def messages(self) -> int:
        return self._messages.value

    @property
    def bytes(self) -> int:
        return self._bytes.value

    @property
    def by_round(self) -> Dict[int, int]:
        """Bytes per round index (a fresh snapshot dict on every access)."""
        return {
            round_index: counter.value
            for round_index, counter in self._rounds.items()
        }

    def bytes_in_round(self, round_index: int) -> int:
        """Bytes this direction moved in one round (0 if it was idle)."""
        counter = self._rounds.get(round_index)
        return counter.value if counter is not None else 0


class Channel:
    """A duplex queue pair between the coordinator and one site.

    ``begin_attempt`` and ``drain_pending`` are the recovery hooks used
    by the evaluator's retry layer: a plain channel has no failure
    behaviour (``begin_attempt`` is a no-op), while
    :class:`~repro.net.faults.FaultyChannel` overrides the operations to
    consult its :class:`~repro.net.faults.FaultPlan`.
    """

    #: Span tracer used for fault events (installed per traced run by the
    #: evaluator via :attr:`Network.tracer`); plain channels never emit.
    tracer = NULL_TRACER

    def __init__(self, site_id: str, metrics: Optional[MetricsRegistry] = None):
        self.site_id = site_id
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._to_site: deque = deque()
        self._to_coordinator: deque = deque()
        self.downstream = DirectionStats(self.metrics, site_id, DOWN)
        self.upstream = DirectionStats(self.metrics, site_id, UP)
        #: Round-scoped speculative-abandon predicate (see arm_speculation).
        self._should_abandon = None

    def _validate_outbound(self, message: Message, direction: str) -> None:
        if direction == DOWN and message.recipient != self.site_id:
            raise NetworkError(
                f"message addressed to {message.recipient!r} on channel to {self.site_id!r}"
            )
        if direction == UP and message.sender != self.site_id:
            raise NetworkError(
                f"message from {message.sender!r} on channel of {self.site_id!r}"
            )

    def send_to_site(self, message: Message) -> None:
        self._validate_outbound(message, DOWN)
        self.downstream.record(message)
        self._to_site.append(message)

    def send_to_coordinator(self, message: Message) -> None:
        self._validate_outbound(message, UP)
        self.upstream.record(message)
        self._to_coordinator.append(message)

    def receive_at_site(self) -> Message:
        try:
            return self._to_site.popleft()
        except IndexError:
            raise NetworkError(f"no pending message for site {self.site_id!r}") from None

    def receive_at_coordinator(self) -> Message:
        try:
            return self._to_coordinator.popleft()
        except IndexError:
            raise NetworkError(f"no pending message from site {self.site_id!r}") from None

    # -- recovery hooks ----------------------------------------------------------

    def begin_attempt(self, round_index: int) -> None:
        """Mark the start of one leg attempt (no-op without fault injection)."""

    def next_straggle(self, round_index: int) -> float:
        """Injected compute delay for this leg attempt (0 without faults)."""
        return 0.0

    def arm_speculation(self, should_abandon) -> None:
        """Install (or clear, with None) the round's abandon predicate.

        Transports that can give up on an in-flight request mid-wait (the
        socket channel) poll the predicate between reads and raise
        :class:`~repro.errors.LegDeadlineExceeded` when it returns True.
        The in-memory channel blocks nowhere, so there is no moment to
        abandon — the hook just records the callback for symmetry.
        """
        self._should_abandon = should_abandon

    def drain_pending(self) -> int:
        """Discard undelivered messages in both directions.

        Called by the retry layer between leg attempts so a re-run leg
        never consumes stale messages from its failed predecessor.
        Returns the number of queue entries discarded.
        """
        discarded = len(self._to_site) + len(self._to_coordinator)
        self._to_site.clear()
        self._to_coordinator.clear()
        return discarded

    @property
    def total_bytes(self) -> int:
        return self.downstream.bytes + self.upstream.bytes


class Network:
    """The star topology: one channel per site, coordinator at the hub.

    Construct with a :class:`~repro.net.faults.FaultPlan` to wrap every
    channel in a :class:`~repro.net.faults.FaultyChannel` injecting the
    plan's deterministic drop/delay/duplicate/corrupt/crash schedule.
    """

    def __init__(
        self,
        site_ids,
        metrics: Optional[MetricsRegistry] = None,
        faults=None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        if faults is not None:
            from repro.net.faults import FaultyChannel

            self._channels = {
                site_id: FaultyChannel(site_id, self.metrics, faults)
                for site_id in site_ids
            }
        else:
            self._channels = {
                site_id: Channel(site_id, self.metrics) for site_id in site_ids
            }
        if not self._channels:
            raise NetworkError("a network needs at least one site")
        self._tracer = NULL_TRACER

    def channel(self, site_id: str) -> Channel:
        try:
            return self._channels[site_id]
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    @property
    def tracer(self):
        """Span tracer for network-level (fault) events."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        for channel in self._channels.values():
            channel.tracer = tracer

    def fault_events(self) -> list:
        """Every injected-fault event, in per-channel occurrence order."""
        events = []
        for channel in self._channels.values():
            events.extend(getattr(channel, "events", ()))
        return events

    @property
    def site_ids(self) -> tuple:
        return tuple(self._channels)

    def total_bytes(self) -> int:
        return sum(channel.total_bytes for channel in self._channels.values())

    def bytes_by_direction(self) -> tuple:
        """``(coordinator_to_sites, sites_to_coordinator)`` byte totals."""
        down = sum(channel.downstream.bytes for channel in self._channels.values())
        up = sum(channel.upstream.bytes for channel in self._channels.values())
        return down, up

    def round_bytes(self, round_index: int, site_id: Optional[str] = None) -> int:
        """Bytes moved in one round, for one site or all sites."""
        channels = (
            [self.channel(site_id)] if site_id is not None else self._channels.values()
        )
        total = 0
        for channel in channels:
            total += channel.downstream.bytes_in_round(round_index)
            total += channel.upstream.bytes_in_round(round_index)
        return total
