"""Simulated coordinator<->site channels with byte accounting.

The coordinator owns one duplex :class:`Channel` per site. All data moves
as encoded :class:`~repro.net.message.Message` payloads — the receiving
side *decodes* the bytes into fresh objects, so sites and coordinator
never share mutable state, exactly as separate machines would not.

Channels count bytes per direction and per round; these counters are the
ground truth behind every "data transferred" number reported by the
benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetworkError
from repro.net.message import Message


@dataclass
class DirectionStats:
    """Byte/message counters for one direction of a channel."""

    messages: int = 0
    bytes: int = 0
    by_round: dict = field(default_factory=dict)

    def record(self, message: Message) -> None:
        self.messages += 1
        self.bytes += message.size_bytes
        self.by_round[message.round_index] = (
            self.by_round.get(message.round_index, 0) + message.size_bytes
        )


class Channel:
    """A duplex queue pair between the coordinator and one site."""

    def __init__(self, site_id: str):
        self.site_id = site_id
        self._to_site: deque = deque()
        self._to_coordinator: deque = deque()
        self.downstream = DirectionStats()  # coordinator -> site
        self.upstream = DirectionStats()  # site -> coordinator

    def send_to_site(self, message: Message) -> None:
        if message.recipient != self.site_id:
            raise NetworkError(
                f"message addressed to {message.recipient!r} on channel to {self.site_id!r}"
            )
        self.downstream.record(message)
        self._to_site.append(message)

    def send_to_coordinator(self, message: Message) -> None:
        if message.sender != self.site_id:
            raise NetworkError(
                f"message from {message.sender!r} on channel of {self.site_id!r}"
            )
        self.upstream.record(message)
        self._to_coordinator.append(message)

    def receive_at_site(self) -> Message:
        try:
            return self._to_site.popleft()
        except IndexError:
            raise NetworkError(f"no pending message for site {self.site_id!r}") from None

    def receive_at_coordinator(self) -> Message:
        try:
            return self._to_coordinator.popleft()
        except IndexError:
            raise NetworkError(f"no pending message from site {self.site_id!r}") from None

    @property
    def total_bytes(self) -> int:
        return self.downstream.bytes + self.upstream.bytes


class Network:
    """The star topology: one channel per site, coordinator at the hub."""

    def __init__(self, site_ids):
        self._channels = {site_id: Channel(site_id) for site_id in site_ids}
        if not self._channels:
            raise NetworkError("a network needs at least one site")

    def channel(self, site_id: str) -> Channel:
        try:
            return self._channels[site_id]
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    @property
    def site_ids(self) -> tuple:
        return tuple(self._channels)

    def total_bytes(self) -> int:
        return sum(channel.total_bytes for channel in self._channels.values())

    def bytes_by_direction(self) -> tuple:
        """``(coordinator_to_sites, sites_to_coordinator)`` byte totals."""
        down = sum(channel.downstream.bytes for channel in self._channels.values())
        up = sum(channel.upstream.bytes for channel in self._channels.values())
        return down, up

    def round_bytes(self, round_index: int, site_id: Optional[str] = None) -> int:
        """Bytes moved in one round, for one site or all sites."""
        channels = (
            [self.channel(site_id)] if site_id is not None else self._channels.values()
        )
        total = 0
        for channel in channels:
            total += channel.downstream.by_round.get(round_index, 0)
            total += channel.upstream.by_round.get(round_index, 0)
        return total
