"""Communication cost model for the simulated distributed warehouse.

The paper measures wall-clock response time on a real deployment; here
sites run in-process, so communication time is *modeled* from measured
bytes while computation time is *measured* CPU time of the actual local
evaluation. The model is the standard latency/bandwidth affine model:

    transfer_time(bytes) = latency + bytes / bandwidth

Defaults approximate the paper's setting — a wide-area network between
collection points, where communication is expensive relative to a LAN or
a parallel machine (Section 1.2 stresses this difference from Shatdal &
Naughton's parallel setting).

The coordinator talks to sites over independent channels: messages to
*different* sites in the same round overlap (the round's communication
time is the maximum over sites), while messages on the *same* channel
serialize. :class:`CostModel` only prices a single transfer;
aggregation across sites/rounds happens in ``repro.distributed.stats``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Affine latency/bandwidth pricing of one transfer."""

    #: One-way message latency in seconds.
    latency_s: float = 0.01
    #: Effective channel bandwidth in bytes/second (default ~10 Mbit/s,
    #: a high-end WAN link for the paper's era).
    bandwidth_bytes_per_s: float = 1.25e6

    def __post_init__(self):
        if self.latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s}"
            )

    def transfer_time(self, size_bytes: int) -> float:
        """Seconds to move ``size_bytes`` over one channel."""
        return self.latency_s + size_bytes / self.bandwidth_bytes_per_s


#: The paper's setting: distributed warehouse over a WAN.
WAN = CostModel(latency_s=0.05, bandwidth_bytes_per_s=1.25e6)

#: A LAN setting (cheap communication) for contrast experiments.
LAN = CostModel(latency_s=0.0005, bandwidth_bytes_per_s=1.25e8)

#: Free communication (isolates computation effects).
FREE = CostModel(latency_s=0.0, bandwidth_bytes_per_s=float("inf"))
