"""Deterministic fault injection for the simulated network.

Alg. GMDJDistribEval assumes every site answers every round; real
distributed evaluation does not get that luxury. This module lets a run
declare, up front and reproducibly, exactly which messages misbehave:

- ``drop`` — the message leaves the sender (bytes are charged) but never
  arrives; the receiver sees an empty queue;
- ``delay`` — the message is held in flight: the first receive attempt
  fails transiently, the next one delivers (``delay_s`` is the modeled
  in-flight delay, recorded in ``net.fault.delay_s``);
- ``duplicate`` — an extra copy crosses the wire (charged to
  ``net.fault.bytes``); the receiving transport de-duplicates it, so
  results never change — only traffic;
- ``corrupt`` — the payload's magic byte is flipped so decoding fails
  loudly (never silently wrong data);
- ``crash`` — the site is down for whole leg attempts: every channel
  operation raises :class:`~repro.errors.SiteUnavailableError` until the
  rule's ``times`` budget of failed attempts is spent ("the site
  rebooted"). ``times=0`` keeps it down for every matching round.
- ``straggle`` — the site is slow, not wrong: the leg's site request
  carries ``delay_s`` of *real wall-clock* compute delay (the site
  process sleeps before evaluating). Unlike ``delay``, which models an
  in-flight message hold, ``straggle`` burns actual time — it exists to
  exercise the speculative re-execution path, where a backup leg races
  the sleeping straggler. The ``times`` budget means a backup attempt
  after the first firing runs at full speed.

A :class:`FaultPlan` is an immutable ordered rule list; all firing state
lives in the :class:`FaultyChannel`, so one plan can drive many
:class:`~repro.net.channel.Network` instances (benchmark repetitions,
serial-vs-threads comparisons) with identical schedules. Fault rounds
are *wire* round indices: 0 is the base round, MD/chain rounds count
from 1 — the same numbers messages carry in ``round_index``.

Every injected fault appends a :class:`FaultEvent` (surfaced through
``Network.fault_events()`` into ``ExecutionStats``), increments
``net.fault.*`` counters in the channel's metrics registry, and emits a
``net.fault`` tracer span so ``repro trace`` timelines show recovery.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import FaultSpecError, NetworkError, SiteUnavailableError
from repro.net.channel import DOWN, UP, Channel
from repro.net.message import Message

DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"
CRASH = "crash"
STRAGGLE = "straggle"

FAULT_KINDS = (DROP, DELAY, DUPLICATE, CORRUPT, CRASH, STRAGGLE)

#: Wildcard for ``site`` and ``direction`` rule fields.
ANY = "*"

_MESSAGE_KINDS = (DROP, DELAY, DUPLICATE, CORRUPT)
_DIRECTIONS = (DOWN, UP, ANY)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic injection rule.

    ``rounds`` is the set of wire round indices the rule applies to (an
    empty tuple means every round); ``times`` bounds how often it fires
    (0 = unlimited). For message kinds a firing affects one message; for
    ``crash`` a firing dooms one whole leg attempt, so "crash for two
    rounds" under a policy making ``k`` attempts per round is
    ``times = 2 * k``.
    """

    kind: str
    site: str = ANY
    rounds: tuple = ()
    direction: str = ANY
    times: int = 1
    delay_s: float = 0.05

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.direction not in _DIRECTIONS:
            raise FaultSpecError(
                f"unknown direction {self.direction!r}; expected down, up or *"
            )
        if not isinstance(self.times, int) or self.times < 0:
            raise FaultSpecError(f"times must be an int >= 0, got {self.times!r}")
        if self.delay_s < 0:
            raise FaultSpecError(f"delay_s must be >= 0, got {self.delay_s!r}")
        object.__setattr__(self, "rounds", tuple(self.rounds))
        for round_index in self.rounds:
            if not isinstance(round_index, int) or round_index < 0:
                raise FaultSpecError(
                    f"fault rounds must be non-negative ints, got {round_index!r}"
                )

    def matches(self, site_id: str, round_index: int, direction: str = ANY) -> bool:
        if self.site != ANY and self.site != site_id:
            return False
        if self.rounds and round_index not in self.rounds:
            return False
        if (
            self.kind not in (CRASH, STRAGGLE)
            and self.direction != ANY
            and direction != ANY
            and self.direction != direction
        ):
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "rounds": list(self.rounds),
            "direction": self.direction,
            "times": self.times,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        if not isinstance(payload, dict) or "kind" not in payload:
            raise FaultSpecError(f"fault rule must be a dict with 'kind', got {payload!r}")
        known = {"kind", "site", "rounds", "direction", "times", "delay_s"}
        unknown = set(payload) - known
        if unknown:
            raise FaultSpecError(
                f"unknown fault rule field(s) {sorted(unknown)} in {payload!r}"
            )
        fields = dict(payload)
        fields["rounds"] = tuple(fields.get("rounds", ()))
        return cls(**fields)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (kind, site, wire round, direction)."""

    kind: str
    site: str
    round_index: int
    direction: str = ANY


def _parse_rounds(text: str) -> tuple:
    try:
        if "-" in text:
            low, high = text.split("-", 1)
            low, high = int(low), int(high)
            if high < low:
                raise FaultSpecError(f"empty round range {text!r}")
            return tuple(range(low, high + 1))
        return (int(text),)
    except ValueError:
        raise FaultSpecError(f"cannot parse rounds {text!r}") from None


class FaultPlan:
    """An immutable, ordered schedule of :class:`FaultRule` entries.

    Stateless by design: per-rule firing counts live in each
    :class:`FaultyChannel`, so the same plan replayed against a fresh
    network reproduces the exact same fault schedule.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), description: str = ""):
        rules = tuple(rules)
        for rule in rules:
            if not isinstance(rule, FaultRule):
                raise FaultSpecError(f"not a FaultRule: {rule!r}")
        self.rules = rules
        self.description = description

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    def describe(self) -> str:
        if self.description:
            return self.description
        return "; ".join(
            f"{rule.kind} site={rule.site}"
            + (f" rounds={','.join(map(str, rule.rounds))}" if rule.rounds else "")
            + (f" dir={rule.direction}" if rule.direction != ANY else "")
            + f" times={rule.times}"
            for rule in self.rules
        )

    def to_dicts(self) -> list:
        return [rule.to_dict() for rule in self.rules]

    # -- construction ------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the rule DSL (or an inline JSON list of rule dicts).

        DSL: rules separated by ``;``, each ``kind key=value ...``, e.g.
        ``"drop site=site1 round=1 dir=up; crash site=site1 rounds=1-2 times=4"``.
        Keys: ``site``, ``round``/``rounds`` (single, or ``low-high``
        range), ``dir``/``direction``, ``times``, ``delay``/``delay_s``.
        """
        text = text.strip()
        if not text:
            raise FaultSpecError("empty fault spec")
        if text[0] in "[{":
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                raise FaultSpecError(f"invalid fault JSON: {error}") from None
            return cls._from_json(payload, description=text)
        rules = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            tokens = chunk.replace(",", " ").split()
            kind, options = tokens[0], tokens[1:]
            kwargs: dict = {}
            for token in options:
                if "=" not in token:
                    raise FaultSpecError(
                        f"fault option {token!r} is not key=value (in {chunk!r})"
                    )
                key, value = token.split("=", 1)
                try:
                    if key == "site":
                        kwargs["site"] = value
                    elif key in ("round", "rounds"):
                        kwargs["rounds"] = _parse_rounds(value)
                    elif key in ("dir", "direction"):
                        kwargs["direction"] = value
                    elif key == "times":
                        kwargs["times"] = int(value)
                    elif key in ("delay", "delay_s"):
                        kwargs["delay_s"] = float(value)
                    else:
                        raise FaultSpecError(f"unknown fault option {key!r}")
                except ValueError:
                    raise FaultSpecError(
                        f"cannot parse fault option {token!r}"
                    ) from None
            rules.append(FaultRule(kind, **kwargs))
        if not rules:
            raise FaultSpecError(f"fault spec {text!r} contains no rules")
        return cls(rules, description=text)

    @classmethod
    def _from_json(cls, payload, description: str = "") -> "FaultPlan":
        if isinstance(payload, dict):
            payload = payload.get("rules", payload)
        if not isinstance(payload, list):
            raise FaultSpecError(
                f"fault JSON must be a list of rules (or {{'rules': [...]}}), "
                f"got {type(payload).__name__}"
            )
        return cls([FaultRule.from_dict(entry) for entry in payload], description)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a JSON rule list (``[{...}]`` or ``{"rules": [...]}``)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise FaultSpecError(f"cannot load fault plan {path!r}: {error}") from None
        return cls._from_json(payload, description=f"file:{path}")

    @classmethod
    def from_any(cls, spec: str) -> "FaultPlan":
        """A JSON file path if one exists at ``spec``, else :meth:`parse`."""
        if os.path.isfile(spec):
            return cls.load(spec)
        return cls.parse(spec)

    @classmethod
    def scatter(
        cls,
        site_ids: Sequence[str],
        seed: int,
        rounds: int = 8,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        corrupt: float = 0.0,
    ) -> "FaultPlan":
        """A seeded random schedule: per (site, round, direction) each
        message-fault kind fires independently with the given rate.

        The expansion is deterministic in ``seed`` and the iteration
        order of ``site_ids``, so two runs (or two executors) given the
        same arguments face the identical schedule.
        """
        rng = random.Random(seed)
        rules = []
        for site_id in site_ids:
            for round_index in range(rounds):
                for direction in (DOWN, UP):
                    for kind, rate in (
                        (DROP, drop),
                        (DELAY, delay),
                        (DUPLICATE, duplicate),
                        (CORRUPT, corrupt),
                    ):
                        if rate and rng.random() < rate:
                            rules.append(
                                FaultRule(
                                    kind,
                                    site=site_id,
                                    rounds=(round_index,),
                                    direction=direction,
                                )
                            )
        return cls(
            rules,
            description=(
                f"scatter(seed={seed}, rounds={rounds}, drop={drop}, "
                f"delay={delay}, duplicate={duplicate}, corrupt={corrupt})"
            ),
        )

    @classmethod
    def stragglers(
        cls,
        site_ids: Sequence[str],
        seed: int,
        delay_s: float = 0.5,
        rounds: Sequence[int] = (1,),
        count: int = 1,
    ) -> "FaultPlan":
        """A seeded straggler schedule: ``count`` sites picked by ``seed``
        each straggle (real compute delay of ``delay_s``) once per listed
        round. Deterministic in ``seed`` and the order of ``site_ids``.
        """
        if count < 1 or count > len(site_ids):
            raise FaultSpecError(
                f"straggler count must be in 1..{len(site_ids)}, got {count}"
            )
        rng = random.Random(seed)
        chosen = rng.sample(list(site_ids), count)
        rules = [
            FaultRule(
                STRAGGLE,
                site=site_id,
                rounds=tuple(rounds),
                times=len(tuple(rounds)),
                delay_s=delay_s,
            )
            for site_id in chosen
        ]
        return cls(
            rules,
            description=(
                f"stragglers(seed={seed}, count={count}, delay_s={delay_s}, "
                f"rounds={','.join(map(str, rounds))})"
            ),
        )


def corrupt_payload(payload: bytes) -> bytes:
    """Flip the payload's first byte (the codec magic).

    Decoding a corrupted payload must fail *loudly* — a SerializationError
    the retry layer can act on — never yield silently wrong data.
    """
    return bytes([payload[0] ^ 0xFF]) + payload[1:]


class _Held:
    """Queue placeholder for a duplicated copy or a delayed message."""

    __slots__ = ("message", "duplicate", "hold")

    def __init__(self, message: Message, duplicate: bool = False, hold: int = 0):
        self.message = message
        self.duplicate = duplicate
        self.hold = hold


class FaultyChannel(Channel):
    """A :class:`~repro.net.channel.Channel` that injects a FaultPlan.

    All firing state (per-rule counts, the current attempt's crash flag,
    the fired :class:`FaultEvent` log) is per-channel — sites fail
    independently and deterministically regardless of which engine runs
    their legs or in what order legs complete.
    """

    def __init__(
        self,
        site_id: str,
        metrics=None,
        plan: Optional[FaultPlan] = None,
    ):
        super().__init__(site_id, metrics)
        self.plan = plan if plan is not None else FaultPlan()
        self._fired = [0] * len(self.plan.rules)
        self._doomed = False
        self.events: list = []

    # -- rule bookkeeping --------------------------------------------------------

    def _consume(
        self, kinds, round_index: int, direction: str, payload=None
    ) -> Optional[FaultRule]:
        """First unspent matching rule, its firing count consumed."""
        for index, rule in enumerate(self.plan.rules):
            if rule.kind not in kinds:
                continue
            if rule.kind == CORRUPT and payload is None:
                continue  # header-only messages have nothing to corrupt
            if not rule.matches(self.site_id, round_index, direction):
                continue
            if rule.times and self._fired[index] >= rule.times:
                continue
            self._fired[index] += 1
            return rule
        return None

    def _record_fault(
        self,
        kind: str,
        round_index: int,
        direction: str,
        size_bytes: int = 0,
        delay_s: float = 0.0,
    ) -> None:
        self.events.append(FaultEvent(kind, self.site_id, round_index, direction))
        self.metrics.counter(
            "net.fault.injected", kind=kind, site=self.site_id, direction=direction
        ).inc()
        if size_bytes:
            self.metrics.counter(
                "net.fault.bytes", kind=kind, site=self.site_id
            ).inc(size_bytes)
        if delay_s:
            self.metrics.gauge("net.fault.delay_s", site=self.site_id).add(delay_s)
        with self.tracer.span(
            "net.fault",
            kind="fault",
            fault=kind,
            site=self.site_id,
            round=round_index,
            direction=direction,
        ):
            pass

    def _raise_down(self, round_index: int) -> None:
        raise SiteUnavailableError(
            f"site {self.site_id!r} is down (injected crash, round {round_index})"
        )

    # -- recovery hooks ----------------------------------------------------------

    def begin_attempt(self, round_index: int) -> None:
        """Consult crash rules for one leg attempt; doom it if one fires."""
        rule = self._consume((CRASH,), round_index, ANY)
        self._doomed = rule is not None
        self._attempt_round = round_index
        if self._doomed:
            self._record_fault(CRASH, round_index, ANY)

    def next_straggle(self, round_index: int) -> float:
        """Real compute delay (seconds) this leg attempt should suffer.

        Consumes one firing of the first unspent ``straggle`` rule, so a
        speculative backup attempt (or a retry) runs at full speed once
        the rule's ``times`` budget is spent.
        """
        rule = self._consume((STRAGGLE,), round_index, ANY)
        if rule is None:
            return 0.0
        self._record_fault(STRAGGLE, round_index, ANY, delay_s=rule.delay_s)
        return rule.delay_s

    # -- sends -------------------------------------------------------------------

    def send_to_site(self, message: Message) -> None:
        self._apply_send(message, DOWN, self._to_site, self.downstream)

    def send_to_coordinator(self, message: Message) -> None:
        self._apply_send(message, UP, self._to_coordinator, self.upstream)

    def _apply_send(self, message: Message, direction: str, queue, stats) -> None:
        if self._doomed:
            self._raise_down(message.round_index)
        self._validate_outbound(message, direction)
        rule = self._consume(
            _MESSAGE_KINDS, message.round_index, direction, payload=message.payload
        )
        if rule is None:
            stats.record(message)
            queue.append(message)
            return
        if rule.kind == DROP:
            # Bytes left the sender's NIC; the message is lost in flight.
            stats.record(message)
            self._record_fault(
                DROP, message.round_index, direction, size_bytes=message.size_bytes
            )
            return
        if rule.kind == CORRUPT:
            corrupted = dataclasses.replace(
                message, payload=corrupt_payload(message.payload)
            )
            stats.record(corrupted)
            queue.append(corrupted)
            self._record_fault(CORRUPT, message.round_index, direction)
            return
        if rule.kind == DUPLICATE:
            stats.record(message)
            queue.append(message)
            # The extra copy costs wire bytes (net.fault.bytes, so the
            # stats/network cross-check stays exact) and is later
            # de-duplicated by the receiving transport.
            queue.append(_Held(message, duplicate=True))
            self._record_fault(
                DUPLICATE,
                message.round_index,
                direction,
                size_bytes=message.size_bytes,
            )
            return
        # DELAY: delivered, but not before one receive attempt fails.
        stats.record(message)
        queue.append(_Held(message, hold=1))
        self._record_fault(
            DELAY, message.round_index, direction, delay_s=rule.delay_s
        )

    # -- receives ----------------------------------------------------------------

    def receive_at_site(self) -> Message:
        if self._doomed:
            self._raise_down(getattr(self, "_attempt_round", 0))
        return self._pop(
            self._to_site, f"no pending message for site {self.site_id!r}"
        )

    def receive_at_coordinator(self) -> Message:
        if self._doomed:
            self._raise_down(getattr(self, "_attempt_round", 0))
        return self._pop(
            self._to_coordinator, f"no pending message from site {self.site_id!r}"
        )

    def _pop(self, queue, empty_message: str) -> Message:
        while queue:
            entry = queue.popleft()
            if not isinstance(entry, _Held):
                return entry
            if entry.duplicate:
                # Receiver-side de-duplication: the copy is dropped
                # silently, exactly as a sequence-numbered transport would.
                self.metrics.counter(
                    "net.fault.deduplicated", site=self.site_id
                ).inc()
                continue
            if entry.hold > 0:
                entry.hold -= 1
                queue.appendleft(entry)
                raise NetworkError(
                    f"message for channel {self.site_id!r} is delayed in flight"
                )
            return entry.message
        raise NetworkError(empty_message)
