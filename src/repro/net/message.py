"""Typed messages exchanged between the coordinator and Skalla sites.

Each message wraps an optional relation payload (encoded with the wire
codec at send time) plus a small header. Message kinds mirror the steps
of Alg. GMDJDistribEval:

- ``BASE_QUERY`` — coordinator asks sites to compute the base-values query;
- ``BASE_RESULT`` — a site's local base-values tuples;
- ``SHIP_BASE`` — coordinator ships the (possibly reduced) base-result
  structure fragment to a site for the next round;
- ``SUB_RESULT`` — a site's sub-aggregate relation H_i;
- ``FINAL_RESULT`` — reserved for multi-coordinator topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SerializationError
from repro.net import serialize
from repro.relalg.relation import Relation

BASE_QUERY = "base_query"
BASE_RESULT = "base_result"
SHIP_BASE = "ship_base"
SUB_RESULT = "sub_result"
FINAL_RESULT = "final_result"

KINDS = (BASE_QUERY, BASE_RESULT, SHIP_BASE, SUB_RESULT, FINAL_RESULT)

#: Fixed per-message header overhead charged by the simulated transport
#: (kind tag, round number, framing) — a small constant, present so that
#: "many tiny messages" is not free.
HEADER_BYTES = 32


@dataclass(frozen=True)
class Message:
    """One message on a coordinator<->site channel."""

    kind: str
    sender: str
    recipient: str
    round_index: int
    payload: Optional[bytes] = None
    #: Free-form metadata (e.g. the plan fragment id); not charged bytes.
    info: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise SerializationError(f"unknown message kind {self.kind!r}")
        if (
            not isinstance(self.round_index, int)
            or isinstance(self.round_index, bool)
            or self.round_index < 0
        ):
            raise SerializationError(
                f"round_index must be a non-negative int, got {self.round_index!r}"
            )
        if self.payload is not None and not isinstance(self.payload, (bytes, bytearray)):
            raise SerializationError(
                f"payload must be bytes or None, got {type(self.payload).__name__}"
            )
        if not self.sender or not self.recipient:
            raise SerializationError(
                f"sender and recipient must be non-empty, got "
                f"{self.sender!r} -> {self.recipient!r}"
            )

    @classmethod
    def with_relation(
        cls,
        kind: str,
        sender: str,
        recipient: str,
        round_index: int,
        relation: Relation,
        info: Optional[dict] = None,
        codec: str = "row",
    ) -> "Message":
        payload = serialize.encode_relation(relation, codec)
        return cls(kind, sender, recipient, round_index, payload, info or {})

    @property
    def size_bytes(self) -> int:
        """Bytes charged on the wire: payload plus fixed header."""
        return HEADER_BYTES + (len(self.payload) if self.payload else 0)

    def relation(self) -> Relation:
        """Decode the relation payload."""
        if self.payload is None:
            raise SerializationError(f"{self.kind} message carries no relation")
        return serialize.decode_relation(self.payload)
