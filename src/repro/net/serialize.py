"""Binary codec for relations shipped between sites and the coordinator.

The synchronization-traffic measurements of the paper (Figure 2 right,
Figure 5 breakdown) are byte counts of shipped partial results. To keep
those measurements honest, every shipment in the simulated cluster is
*actually encoded* with this codec and the wire size is the length of the
produced buffer — not an estimate.

Format (little-endian):

- magic ``b"SKRL"`` + format version (1 byte)
- attribute count (varint), then per attribute: name (varint-length
  UTF-8) and a 1-byte type code
- row count (varint)
- per row, per attribute: 1 tag byte (0 = NULL, 1 = value) followed by
  the value encoding — zig-zag varint for ints, IEEE double for floats,
  varint-length UTF-8 for strings, 1 byte for bools, varint ordinal for
  dates.

Two implementations produce this format:

- the *reference* codec (:func:`_encode_relation_reference` /
  :func:`_decode_relation_reference`) — the original straight-line
  transcription, kept as the differential baseline and the error-path
  authority;
- the *fast path* (:func:`encode_relation` / :func:`decode_relation`) —
  per-schema encoder plans, cached process-wide: the header bytes are
  precomputed once, and the per-row loop is *compiled* for the column
  layout (:func:`_compile_row_writer` / :func:`_compile_row_reader`, the
  same specialization idiom as :mod:`repro.relalg.compiler`) so the hot
  loop has no per-value type dispatch. Byte-for-byte identical output,
  checked by ``tests/test_serialize.py`` and the property codec suite.
  On any encoding error the fast path defers to the reference
  implementation so error messages stay identical.
"""

from __future__ import annotations

import datetime
import struct
import threading
from typing import Dict, Tuple

from repro.errors import SerializationError
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Attribute, Schema

_MAGIC = b"SKRL"
_VERSION = 1
_COLUMN_VERSION = 2

#: Wire codec names: ``row`` is format v1 (tag byte per value), ``column``
#: is format v2 (column blocks: presence bitmap + dictionary/delta per
#: column). Both decode transparently — the version byte dispatches.
CODECS = ("row", "column")

_TYPE_CODES = {INT: 0, FLOAT: 1, STR: 2, BOOL: 3, DATE: 4}
_CODE_TYPES = {code: name for name, code in _TYPE_CODES.items()}

_DOUBLE = struct.Struct("<d")


def validate_codec(name: str) -> str:
    if name not in CODECS:
        raise SerializationError(f"unknown wire codec {name!r}; expected one of {CODECS}")
    return name


def _write_varint(buffer: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


# ---------------------------------------------------------------------------
# Reference codec (differential baseline)
# ---------------------------------------------------------------------------


def _encode_relation_reference(relation: Relation) -> bytes:
    """The original single-pass encoder; authoritative for errors."""
    buffer = bytearray()
    buffer += _MAGIC
    buffer.append(_VERSION)
    schema = relation.schema
    _write_varint(buffer, len(schema))
    type_codes = []
    for attribute in schema:
        name_bytes = attribute.name.encode("utf-8")
        _write_varint(buffer, len(name_bytes))
        buffer += name_bytes
        code = _TYPE_CODES[attribute.type]
        buffer.append(code)
        type_codes.append(code)
    _write_varint(buffer, len(relation.rows))
    for row in relation.rows:
        for value, code in zip(row, type_codes):
            if value is None:
                buffer.append(0)
                continue
            buffer.append(1)
            try:
                if code == 0:  # int
                    _write_varint(buffer, _zigzag(int(value)))
                elif code == 1:  # float
                    buffer += _DOUBLE.pack(float(value))
                elif code == 2:  # str
                    encoded = value.encode("utf-8")
                    _write_varint(buffer, len(encoded))
                    buffer += encoded
                elif code == 3:  # bool
                    buffer.append(1 if value else 0)
                elif code == 4:  # date
                    _write_varint(buffer, value.toordinal())
            except (AttributeError, TypeError, ValueError) as exc:
                raise SerializationError(
                    f"cannot encode {value!r} as {_CODE_TYPES[code]}: {exc}"
                ) from exc
    return bytes(buffer)


def _decode_relation_reference(data: bytes) -> Relation:
    """The original decoder; kept as the differential baseline."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise SerializationError("bad magic; not a serialized relation")
    offset = len(_MAGIC)
    if offset >= len(data) or data[offset] != _VERSION:
        raise SerializationError("unsupported codec version")
    offset += 1
    attr_count, offset = _read_varint(data, offset)
    attributes = []
    type_codes = []
    for _index in range(attr_count):
        name_length, offset = _read_varint(data, offset)
        name = data[offset : offset + name_length].decode("utf-8")
        offset += name_length
        code = data[offset]
        offset += 1
        if code not in _CODE_TYPES:
            raise SerializationError(f"unknown type code {code}")
        attributes.append(Attribute(name, _CODE_TYPES[code]))
        type_codes.append(code)
    schema = Schema(attributes)
    row_count, offset = _read_varint(data, offset)
    rows = []
    for _row_index in range(row_count):
        values = []
        for code in type_codes:
            if offset >= len(data):
                raise SerializationError("truncated row data")
            tag = data[offset]
            offset += 1
            if tag == 0:
                values.append(None)
                continue
            if tag != 1:
                raise SerializationError(f"bad value tag {tag}")
            if code == 0:
                raw, offset = _read_varint(data, offset)
                values.append(_unzigzag(raw))
            elif code == 1:
                values.append(_DOUBLE.unpack_from(data, offset)[0])
                offset += _DOUBLE.size
            elif code == 2:
                length, offset = _read_varint(data, offset)
                values.append(data[offset : offset + length].decode("utf-8"))
                offset += length
            elif code == 3:
                values.append(bool(data[offset]))
                offset += 1
            elif code == 4:
                ordinal, offset = _read_varint(data, offset)
                values.append(datetime.date.fromordinal(ordinal))
        rows.append(tuple(values))
    if offset != len(data):
        raise SerializationError(f"{len(data) - offset} trailing bytes after relation")
    return Relation(schema, rows)


# ---------------------------------------------------------------------------
# Fast path: per-schema encoder plans, interned decode schemas
# ---------------------------------------------------------------------------

#: schema -> (precomputed header bytes, compiled row writer)
_ENCODE_PLANS: Dict[Schema, Tuple[bytes, object]] = {}
#: (name, code) pairs -> interned (Schema, compiled row reader)
_DECODE_SCHEMAS: Dict[tuple, Tuple[Schema, object]] = {}
_PLAN_LOCK = threading.Lock()


def _compile_row_writer(type_codes: tuple):
    """Specialize the per-row encode loop for one column layout.

    The generated function writes every column of every row straight into
    the buffer — no per-value type dispatch, no ``zip``, and the zig-zag
    transform and varint loop are inlined (a zig-zagged value is never
    negative, so the reference encoder's negative guard is provably dead
    here). Value coercions (``int()``, ``float()``, ``.encode()``,
    ``.toordinal()``) are kept exactly as the reference codec performs
    them so the bytes cannot differ.
    """

    def emit_varint(lines, expr, indent):
        pad = " " * indent
        lines.append(f"{pad}varint = {expr}")
        lines.append(f"{pad}while varint > 0x7F:")
        lines.append(f"{pad}    append(varint & 0x7F | 0x80)")
        lines.append(f"{pad}    varint >>= 7")
        lines.append(f"{pad}append(varint)")

    lines = [
        "def write_rows(rows, buffer):",
        "    append = buffer.append",
        "    extend = buffer.extend",
        "    for row in rows:",
    ]
    if not type_codes:
        lines.append("        pass")
    for index, code in enumerate(type_codes):
        value = f"value_{index}"
        lines.append(f"        {value} = row[{index}]")
        lines.append(f"        if {value} is None:")
        lines.append("            append(0)")
        lines.append("        else:")
        lines.append("            append(1)")
        if code == 0:  # int
            lines.append(f"            {value} = int({value})")
            emit_varint(
                lines,
                f"({value} << 1) ^ ({value} >> 63)"
                f" if {value} >= 0 else ((-{value}) << 1) - 1",
                indent=12,
            )
        elif code == 1:  # float
            lines.append(f"            extend(pack_double(float({value})))")
        elif code == 2:  # str
            lines.append(f"            encoded = {value}.encode('utf-8')")
            emit_varint(lines, "len(encoded)", indent=12)
            lines.append("            extend(encoded)")
        elif code == 3:  # bool
            lines.append(f"            append(1 if {value} else 0)")
        else:  # date
            emit_varint(lines, f"{value}.toordinal()", indent=12)
    env = {"pack_double": _DOUBLE.pack}
    exec("\n".join(lines), env)  # noqa: S102 - controlled codegen, no user input
    return env["write_rows"]


def _compile_row_reader(type_codes: tuple):
    """Specialize the per-row decode loop for one column layout.

    Mirrors :func:`_compile_row_writer`: one straight-line body per row
    with the zig-zag inverse and the varint loop inlined, raising the
    same :class:`SerializationError` messages as the reference decoder.
    """

    def emit_read_varint(lines, target, indent):
        pad = " " * indent
        lines.append(f"{pad}{target} = 0")
        lines.append(f"{pad}shift = 0")
        lines.append(f"{pad}while True:")
        lines.append(f"{pad}    if offset >= data_length:")
        lines.append(
            f"{pad}        raise SerializationError('truncated varint')"
        )
        lines.append(f"{pad}    byte = data[offset]")
        lines.append(f"{pad}    offset += 1")
        lines.append(f"{pad}    {target} |= (byte & 0x7F) << shift")
        lines.append(f"{pad}    if not byte & 0x80:")
        lines.append(f"{pad}        break")
        lines.append(f"{pad}    shift += 7")
        lines.append(f"{pad}    if shift > 70:")
        lines.append(
            f"{pad}        raise SerializationError('varint too long')"
        )

    lines = [
        "def read_rows(data, offset, row_count, append_row):",
        "    data_length = len(data)",
        "    for _row_index in range(row_count):",
    ]
    names = []
    for index, code in enumerate(type_codes):
        value = f"value_{index}"
        names.append(value)
        lines.append("        if offset >= data_length:")
        lines.append("            raise SerializationError('truncated row data')")
        lines.append("        tag = data[offset]")
        lines.append("        offset += 1")
        lines.append("        if tag == 0:")
        lines.append(f"            {value} = None")
        lines.append("        elif tag != 1:")
        lines.append(
            "            raise SerializationError(f'bad value tag {tag}')"
        )
        lines.append("        else:")
        if code == 0:  # int
            emit_read_varint(lines, "raw", indent=12)
            lines.append(
                f"            {value} = raw >> 1 if not raw & 1"
                " else -((raw + 1) >> 1)"
            )
        elif code == 1:  # float
            lines.append(f"            {value} = unpack_double(data, offset)[0]")
            lines.append("            offset += double_size")
        elif code == 2:  # str
            emit_read_varint(lines, "length", indent=12)
            lines.append(
                f"            {value} = data[offset : offset + length]"
                ".decode('utf-8')"
            )
            lines.append("            offset += length")
        elif code == 3:  # bool
            lines.append(f"            {value} = bool(data[offset])")
            lines.append("            offset += 1")
        else:  # date
            emit_read_varint(lines, "ordinal", indent=12)
            lines.append(f"            {value} = date_from_ordinal(ordinal)")
    if names:
        tuple_expr = "(" + ", ".join(names) + ("," if len(names) == 1 else "") + ")"
    else:
        tuple_expr = "()"
    lines.append(f"        append_row({tuple_expr})")
    lines.append("    return offset")
    env = {
        "read_varint": _read_varint,
        "unpack_double": _DOUBLE.unpack_from,
        "double_size": _DOUBLE.size,
        "date_from_ordinal": datetime.date.fromordinal,
        "SerializationError": SerializationError,
    }
    exec("\n".join(lines), env)  # noqa: S102 - controlled codegen, no user input
    return env["read_rows"]


def _encode_plan(schema: Schema) -> Tuple[bytes, object]:
    plan = _ENCODE_PLANS.get(schema)
    if plan is None:
        header = bytearray()
        header += _MAGIC
        header.append(_VERSION)
        _write_varint(header, len(schema))
        type_codes = []
        for attribute in schema:
            name_bytes = attribute.name.encode("utf-8")
            _write_varint(header, len(name_bytes))
            header += name_bytes
            code = _TYPE_CODES[attribute.type]
            header.append(code)
            type_codes.append(code)
        plan = (bytes(header), _compile_row_writer(tuple(type_codes)))
        with _PLAN_LOCK:
            _ENCODE_PLANS[schema] = plan
    return plan


def _decode_schema(pairs: tuple) -> Tuple[Schema, object]:
    interned = _DECODE_SCHEMAS.get(pairs)
    if interned is None:
        attributes = []
        for name, code in pairs:
            if code not in _CODE_TYPES:
                raise SerializationError(f"unknown type code {code}")
            attributes.append(Attribute(name, _CODE_TYPES[code]))
        type_codes = tuple(code for _name, code in pairs)
        interned = (Schema(attributes), _compile_row_reader(type_codes))
        with _PLAN_LOCK:
            _DECODE_SCHEMAS[pairs] = interned
    return interned


# ---------------------------------------------------------------------------
# Column-block codec (format v2)
# ---------------------------------------------------------------------------
#
# Same magic and schema header as v1 but the body is one block per column:
#
# - presence bitmap: ceil(rows/8) bytes, bit ``i`` (LSB-first) set when row
#   ``i`` is non-NULL; the blocks below cover *present* values only;
# - INT/DATE: zig-zag *delta* varints (first value is a delta from 0) —
#   sorted or clustered key columns collapse to 1-byte deltas;
# - FLOAT: packed IEEE doubles;
# - STR: dictionary — varint unique count, the uniques in first-appearance
#   order (varint-length UTF-8), then one varint dictionary code per value;
# - BOOL: bit-packed, ceil(present/8) bytes.


def _encode_relation_column(relation: Relation) -> bytes:
    buffer = bytearray()
    buffer += _MAGIC
    buffer.append(_COLUMN_VERSION)
    schema = relation.schema
    _write_varint(buffer, len(schema))
    for attribute in schema:
        name_bytes = attribute.name.encode("utf-8")
        _write_varint(buffer, len(name_bytes))
        buffer += name_bytes
        buffer.append(_TYPE_CODES[attribute.type])
    row_count = len(relation.rows)
    _write_varint(buffer, row_count)
    write_varint = _write_varint
    for column in relation.to_columnar().columns:
        values = column.values
        bitmap = bytearray((row_count + 7) // 8)
        present = []
        for index, value in enumerate(values):
            if value is not None:
                bitmap[index >> 3] |= 1 << (index & 7)
                present.append(value)
        buffer += bitmap
        code = _TYPE_CODES[column.type]
        try:
            if code == 0 or code == 4:  # int / date: zig-zag delta varints
                previous = 0
                for value in present:
                    current = int(value) if code == 0 else value.toordinal()
                    write_varint(buffer, _zigzag(current - previous))
                    previous = current
            elif code == 1:  # float
                for value in present:
                    buffer += _DOUBLE.pack(float(value))
            elif code == 2:  # str: first-appearance dictionary
                uniques: list = []
                dictionary: dict = {}
                codes: list = []
                for value in present:
                    code_id = dictionary.get(value)
                    if code_id is None:
                        code_id = len(uniques)
                        dictionary[value] = code_id
                        uniques.append(value)
                    codes.append(code_id)
                write_varint(buffer, len(uniques))
                for unique in uniques:
                    encoded = unique.encode("utf-8")
                    write_varint(buffer, len(encoded))
                    buffer += encoded
                for code_id in codes:
                    write_varint(buffer, code_id)
            else:  # bool: bit-packed
                packed = bytearray((len(present) + 7) // 8)
                for index, value in enumerate(present):
                    if value:
                        packed[index >> 3] |= 1 << (index & 7)
                buffer += packed
        except (AttributeError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"cannot encode {column.name!r} as a {column.type} column block: {exc}"
            ) from exc
    return bytes(buffer)


def _decode_relation_column(data: bytes, offset: int) -> Relation:
    """Decode a v2 body; ``offset`` points just past the version byte."""
    from repro.relalg.columnar import Column, ColumnarRelation

    read_varint = _read_varint
    data_length = len(data)
    attr_count, offset = read_varint(data, offset)
    attributes = []
    for _index in range(attr_count):
        name_length, offset = read_varint(data, offset)
        name = data[offset : offset + name_length].decode("utf-8")
        offset += name_length
        if offset >= data_length:
            raise SerializationError("truncated column header")
        code = data[offset]
        offset += 1
        if code not in _CODE_TYPES:
            raise SerializationError(f"unknown type code {code}")
        attributes.append(Attribute(name, _CODE_TYPES[code]))
    schema = Schema(attributes)
    row_count, offset = read_varint(data, offset)
    bitmap_size = (row_count + 7) // 8
    columns = []
    for attribute in schema:
        if offset + bitmap_size > data_length:
            raise SerializationError("truncated presence bitmap")
        bitmap = data[offset : offset + bitmap_size]
        offset += bitmap_size
        present_flags = [
            bool(bitmap[index >> 3] & (1 << (index & 7))) for index in range(row_count)
        ]
        present_count = sum(present_flags)
        code = _TYPE_CODES[attribute.type]
        present: list = []
        if code == 0 or code == 4:
            previous = 0
            for _value_index in range(present_count):
                raw, offset = read_varint(data, offset)
                previous += _unzigzag(raw)
                present.append(
                    previous if code == 0 else datetime.date.fromordinal(previous)
                )
        elif code == 1:
            end = offset + present_count * _DOUBLE.size
            if end > data_length:
                raise SerializationError("truncated float column block")
            present = [
                _DOUBLE.unpack_from(data, position)[0]
                for position in range(offset, end, _DOUBLE.size)
            ]
            offset = end
        elif code == 2:
            unique_count, offset = read_varint(data, offset)
            uniques = []
            for _unique_index in range(unique_count):
                length, offset = read_varint(data, offset)
                uniques.append(data[offset : offset + length].decode("utf-8"))
                offset += length
            for _value_index in range(present_count):
                code_id, offset = read_varint(data, offset)
                if code_id >= unique_count:
                    raise SerializationError(f"dictionary code {code_id} out of range")
                present.append(uniques[code_id])
        else:
            packed_size = (present_count + 7) // 8
            if offset + packed_size > data_length:
                raise SerializationError("truncated bool column block")
            packed = data[offset : offset + packed_size]
            offset += packed_size
            present = [
                bool(packed[index >> 3] & (1 << (index & 7)))
                for index in range(present_count)
            ]
        iterator = iter(present)
        values = [next(iterator) if flag else None for flag in present_flags]
        columns.append(Column(attribute.name, attribute.type, values))
    if offset != data_length:
        raise SerializationError(f"{data_length - offset} trailing bytes after relation")
    return Relation.from_columnar(ColumnarRelation(schema, columns))


def encode_relation(relation: Relation, codec: str = "row") -> bytes:
    """Serialize a relation to bytes under the named wire codec.

    ``row`` (format v1) is wire-identical to the reference encoder;
    ``column`` (format v2) produces column blocks. Either output decodes
    with :func:`decode_relation`.
    """
    if codec == "column":
        return _encode_relation_column(relation)
    validate_codec(codec)
    header, write_rows = _encode_plan(relation.schema)
    buffer = bytearray(header)
    rows = relation.rows
    _write_varint(buffer, len(rows))
    try:
        write_rows(rows, buffer)
    except Exception:
        # Re-run the reference encoder so the raised error (message and
        # type) is exactly what this codec has always produced.
        return _encode_relation_reference(relation)
    return bytes(buffer)


def decode_relation(data: bytes) -> Relation:
    """Deserialize bytes produced by :func:`encode_relation` (any codec)."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise SerializationError("bad magic; not a serialized relation")
    offset = len(_MAGIC)
    data_length = len(data)
    if offset >= data_length or data[offset] not in (_VERSION, _COLUMN_VERSION):
        raise SerializationError("unsupported codec version")
    if data[offset] == _COLUMN_VERSION:
        return _decode_relation_column(data, offset + 1)
    offset += 1
    read_varint = _read_varint
    attr_count, offset = read_varint(data, offset)
    pairs = []
    for _index in range(attr_count):
        name_length, offset = read_varint(data, offset)
        name = data[offset : offset + name_length].decode("utf-8")
        offset += name_length
        pairs.append((name, data[offset]))
        offset += 1
    schema, read_rows = _decode_schema(tuple(pairs))
    row_count, offset = read_varint(data, offset)
    rows: list = []
    offset = read_rows(data, offset, row_count, rows.append)
    if offset != data_length:
        raise SerializationError(f"{data_length - offset} trailing bytes after relation")
    return Relation(schema, rows)


def wire_size(relation: Relation, codec: str = "row") -> int:
    """Exact wire size of a relation under the named codec."""
    return len(encode_relation(relation, codec))
