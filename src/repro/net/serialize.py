"""Binary codec for relations shipped between sites and the coordinator.

The synchronization-traffic measurements of the paper (Figure 2 right,
Figure 5 breakdown) are byte counts of shipped partial results. To keep
those measurements honest, every shipment in the simulated cluster is
*actually encoded* with this codec and the wire size is the length of the
produced buffer — not an estimate.

Format (little-endian):

- magic ``b"SKRL"`` + format version (1 byte)
- attribute count (varint), then per attribute: name (varint-length
  UTF-8) and a 1-byte type code
- row count (varint)
- per row, per attribute: 1 tag byte (0 = NULL, 1 = value) followed by
  the value encoding — zig-zag varint for ints, IEEE double for floats,
  varint-length UTF-8 for strings, 1 byte for bools, varint ordinal for
  dates.
"""

from __future__ import annotations

import datetime
import struct

from repro.errors import SerializationError
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Attribute, Schema

_MAGIC = b"SKRL"
_VERSION = 1

_TYPE_CODES = {INT: 0, FLOAT: 1, STR: 2, BOOL: 3, DATE: 4}
_CODE_TYPES = {code: name for name, code in _TYPE_CODES.items()}

_DOUBLE = struct.Struct("<d")


def _write_varint(buffer: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def encode_relation(relation: Relation) -> bytes:
    """Serialize a relation to bytes."""
    buffer = bytearray()
    buffer += _MAGIC
    buffer.append(_VERSION)
    schema = relation.schema
    _write_varint(buffer, len(schema))
    type_codes = []
    for attribute in schema:
        name_bytes = attribute.name.encode("utf-8")
        _write_varint(buffer, len(name_bytes))
        buffer += name_bytes
        code = _TYPE_CODES[attribute.type]
        buffer.append(code)
        type_codes.append(code)
    _write_varint(buffer, len(relation.rows))
    for row in relation.rows:
        for value, code in zip(row, type_codes):
            if value is None:
                buffer.append(0)
                continue
            buffer.append(1)
            try:
                if code == 0:  # int
                    _write_varint(buffer, _zigzag(int(value)))
                elif code == 1:  # float
                    buffer += _DOUBLE.pack(float(value))
                elif code == 2:  # str
                    encoded = value.encode("utf-8")
                    _write_varint(buffer, len(encoded))
                    buffer += encoded
                elif code == 3:  # bool
                    buffer.append(1 if value else 0)
                elif code == 4:  # date
                    _write_varint(buffer, value.toordinal())
            except (AttributeError, TypeError, ValueError) as exc:
                raise SerializationError(
                    f"cannot encode {value!r} as {_CODE_TYPES[code]}: {exc}"
                ) from exc
    return bytes(buffer)


def decode_relation(data: bytes) -> Relation:
    """Deserialize bytes produced by :func:`encode_relation`."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise SerializationError("bad magic; not a serialized relation")
    offset = len(_MAGIC)
    if offset >= len(data) or data[offset] != _VERSION:
        raise SerializationError("unsupported codec version")
    offset += 1
    attr_count, offset = _read_varint(data, offset)
    attributes = []
    type_codes = []
    for _index in range(attr_count):
        name_length, offset = _read_varint(data, offset)
        name = data[offset : offset + name_length].decode("utf-8")
        offset += name_length
        code = data[offset]
        offset += 1
        if code not in _CODE_TYPES:
            raise SerializationError(f"unknown type code {code}")
        attributes.append(Attribute(name, _CODE_TYPES[code]))
        type_codes.append(code)
    schema = Schema(attributes)
    row_count, offset = _read_varint(data, offset)
    rows = []
    for _row_index in range(row_count):
        values = []
        for code in type_codes:
            if offset >= len(data):
                raise SerializationError("truncated row data")
            tag = data[offset]
            offset += 1
            if tag == 0:
                values.append(None)
                continue
            if tag != 1:
                raise SerializationError(f"bad value tag {tag}")
            if code == 0:
                raw, offset = _read_varint(data, offset)
                values.append(_unzigzag(raw))
            elif code == 1:
                values.append(_DOUBLE.unpack_from(data, offset)[0])
                offset += _DOUBLE.size
            elif code == 2:
                length, offset = _read_varint(data, offset)
                values.append(data[offset : offset + length].decode("utf-8"))
                offset += length
            elif code == 3:
                values.append(bool(data[offset]))
                offset += 1
            elif code == 4:
                ordinal, offset = _read_varint(data, offset)
                values.append(datetime.date.fromordinal(ordinal))
        rows.append(tuple(values))
    if offset != len(data):
        raise SerializationError(f"{len(data) - offset} trailing bytes after relation")
    return Relation(schema, rows)


def wire_size(relation: Relation) -> int:
    """Exact wire size of a relation under this codec."""
    return len(encode_relation(relation))
