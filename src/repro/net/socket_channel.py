"""Real TCP transport for process-separated Skalla sites.

The simulated :class:`~repro.net.channel.Channel` stays on as the
byte-accounting oracle: a :class:`SocketChannel` *is* a
:class:`~repro.net.faults.FaultyChannel` (same queues, same
``DirectionStats``, same fault schedule), and additionally mirrors every
message onto a length-prefixed TCP connection to the site's server
process. Control flow — retries, degrade verdicts, fault events — is
driven by the simulated side, so verdicts over sockets match the
in-process engines exactly; the wire side carries the *bytes* so the
modeled traffic numbers become measurable.

Wire format (all integers big-endian):

- frame    = ``length(4) | type(1) | body(length-1)`` — ``length``
  counts the type byte plus the body;
- MSG body = the 32-byte message header (magic ``SM``, kind code, flags,
  round index, payload length, zero padding — exactly
  :data:`~repro.net.message.HEADER_BYTES` bytes, so a MSG body is
  bit-for-bit as long as the modeled ``Message.size_bytes``) followed by
  the codec payload;
- control frames (HELLO/WELCOME/REQ/REPLY/ERROR/RESET/SHUTDOWN/BYE)
  carry JSON or pickled bodies and are charged entirely to *framing
  overhead*, never to payload bytes.

Parity invariant: for every clean (non-faulted) query, measured MSG body
bytes per direction equal the modeled ``DirectionStats`` bytes exactly.
Injected faults keep the invariant by construction: a *dropped* message
still crosses the wire flagged ``DROPPED`` (the site discards it — the
bytes left the NIC, which is what DirectionStats models); a *duplicate*
copy is charged to ``net.fault.bytes`` in the model and is therefore
*not* re-sent on the wire; *corrupt* replaces the payload with one of
equal length; *crash* raises before anything is recorded or sent.

REQ/REPLY control bodies use :mod:`pickle`, the same trust model as the
``processes`` executor (``multiprocessing`` pickles over pipes): site
servers are our own processes on a trusted local cluster, never an
untrusted peer.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import threading
from typing import Dict, Optional, Tuple

import repro.errors as errors_module
from repro.errors import (
    LegDeadlineExceeded,
    NetworkError,
    RemoteSiteError,
    ReproError,
    SiteUnavailableError,
)
from repro.net.channel import DOWN, UP, Network
from repro.net.faults import FaultPlan, FaultyChannel, _Held
from repro.net.message import (
    BASE_QUERY,
    BASE_RESULT,
    FINAL_RESULT,
    HEADER_BYTES,
    SHIP_BASE,
    SUB_RESULT,
    Message,
)

# -- frame types -------------------------------------------------------------------

FRAME_HELLO = 1  # client -> server: {"site_id": ...}
FRAME_WELCOME = 2  # server -> client: {"site_id": ..., "tables": {...}}
FRAME_MSG = 3  # either direction: 32-byte message header + payload
FRAME_REQ = 4  # client -> server: pickled SiteRequest fields (sans payloads)
FRAME_REPLY = 5  # server -> client: pickled reply metadata
FRAME_ERROR = 6  # server -> client: pickled {"error": class, "message": str}
FRAME_RESET = 7  # client -> server: discard buffered down payloads
FRAME_SHUTDOWN = 8  # client -> server: stop serving
FRAME_BYE = 9  # server -> client: shutdown acknowledged
FRAME_PING = 10  # either direction: JSON clock-sync sample (see obs.skew)
FRAME_TELEMETRY = 11  # client -> server: JSON request; server -> client: JSON body

#: Bytes of pure framing around every frame: 4-byte length prefix + type.
FRAME_OVERHEAD_BYTES = 5

_FRAME_NAMES = {
    FRAME_HELLO: "HELLO",
    FRAME_WELCOME: "WELCOME",
    FRAME_MSG: "MSG",
    FRAME_REQ: "REQ",
    FRAME_REPLY: "REPLY",
    FRAME_ERROR: "ERROR",
    FRAME_RESET: "RESET",
    FRAME_SHUTDOWN: "SHUTDOWN",
    FRAME_BYE: "BYE",
    FRAME_PING: "PING",
    FRAME_TELEMETRY: "TELEMETRY",
}

# -- MSG wire header ---------------------------------------------------------------

_WIRE_MAGIC = b"SM"
_KIND_CODES = {
    BASE_QUERY: 0,
    BASE_RESULT: 1,
    SHIP_BASE: 2,
    SUB_RESULT: 3,
    FINAL_RESULT: 4,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

#: Header flag: the simulated plan dropped this message in flight — the
#: bytes cross the wire (they left the sender), the receiver discards it.
FLAG_DROPPED = 0x01

_HEADER_STRUCT = struct.Struct(">2sBBII20s")
assert _HEADER_STRUCT.size == HEADER_BYTES


def encode_wire_message(
    kind: str, round_index: int, payload: Optional[bytes], flags: int = 0
) -> bytes:
    """A MSG frame body: exactly ``HEADER_BYTES + len(payload)`` bytes.

    The body length equals :attr:`Message.size_bytes` for the same
    message — this is what makes measured socket payload bytes reconcile
    with the modeled ``DirectionStats`` bytes without any fudge terms.
    """
    try:
        code = _KIND_CODES[kind]
    except KeyError:
        raise NetworkError(f"kind {kind!r} has no wire encoding") from None
    body = payload if payload is not None else b""
    return _HEADER_STRUCT.pack(
        _WIRE_MAGIC, code, flags, round_index, len(body), b"\x00" * 20
    ) + body


def decode_wire_message(body: bytes) -> Tuple[str, int, int, bytes]:
    """``(kind, round_index, flags, payload)`` from a MSG frame body."""
    if len(body) < HEADER_BYTES:
        raise NetworkError(
            f"short MSG frame: {len(body)} bytes < {HEADER_BYTES}-byte header"
        )
    magic, code, flags, round_index, payload_len, _pad = _HEADER_STRUCT.unpack(
        body[:HEADER_BYTES]
    )
    if magic != _WIRE_MAGIC:
        raise NetworkError(f"bad MSG magic {magic!r}")
    kind = _CODE_KINDS.get(code)
    if kind is None:
        raise NetworkError(f"unknown MSG kind code {code}")
    payload = body[HEADER_BYTES:]
    if len(payload) != payload_len:
        raise NetworkError(
            f"MSG payload length mismatch: header says {payload_len}, "
            f"frame carries {len(payload)}"
        )
    return kind, round_index, flags, payload


# -- blocking frame I/O ------------------------------------------------------------


def write_frame(sock: socket.socket, frame_type: int, body: bytes = b"") -> int:
    """Write one frame; returns total bytes put on the wire."""
    frame = struct.pack(">IB", len(body) + 1, frame_type) + body
    sock.sendall(frame)
    return len(frame)


def read_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame; returns ``(frame_type, body)``.

    Raises :class:`ConnectionError` (an ``OSError``) on a cleanly closed
    peer so callers have a single ``except OSError`` path.
    """
    prefix = _recv_exact(sock, 4)
    (length,) = struct.unpack(">I", prefix)
    if length < 1:
        raise NetworkError(f"invalid frame length {length}")
    blob = _recv_exact(sock, length)
    return blob[0], blob[1:]


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


#: Receive-poll interval while a speculative-abandon predicate is armed:
#: short enough that the deadline is enforced promptly, long enough that
#: an unarmed fast reply never notices.
_SPECULATION_POLL_S = 0.02


class _AbandonLeg(Exception):
    """Internal: the armed abandon predicate fired mid-receive.

    ``args[0]`` carries the predicate's verdict (the deadline seconds, a
    truthy float) so :meth:`SocketChannel.ask` can surface it on the
    public :class:`~repro.errors.LegDeadlineExceeded`.
    """


def map_remote_error(name: str, text: str) -> ReproError:
    """Rebuild a site-server error with its concrete library class.

    Known :class:`ReproError` subclasses keep their type so the retry
    layer classifies them exactly as in-process (``NetworkError`` family
    stays transient, plan/schema errors stay fatal); anything unknown
    becomes :class:`RemoteSiteError`, which is deliberately fatal.
    """
    candidate = getattr(errors_module, name, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        try:
            return candidate(text)
        except TypeError:
            # Subclass with a structured __init__ (e.g. RetryExhaustedError)
            # that a bare message cannot satisfy.
            return RemoteSiteError(f"{name}: {text}")
    return RemoteSiteError(f"{name}: {text}")


# -- the channel -------------------------------------------------------------------


class SocketChannel(FaultyChannel):
    """A faulty channel that mirrors traffic onto a real TCP connection.

    The inherited in-memory queues remain the coordinator's source of
    truth — ``receive_at_coordinator`` pops the local echo, with fault
    placeholders driving retries exactly as in simulation. The socket
    side carries the same bytes for real: down messages are transmitted
    as they are sent, up messages cross during :meth:`ask` (the site
    server streams MSG frames back before its REPLY).
    """

    def __init__(
        self,
        site_id: str,
        address: Tuple[str, int],
        metrics=None,
        plan: Optional[FaultPlan] = None,
        connect_timeout_s: float = 10.0,
        io_timeout_s: float = 120.0,
    ):
        super().__init__(site_id, metrics, plan)
        self.address = (str(address[0]), int(address[1]))
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s
        self._sock: Optional[socket.socket] = None
        self._io_lock = threading.RLock()
        self._connected_once = False
        # Measured wire accounting (mirrored into registry counters).
        self.measured_payload_down = 0
        self.measured_payload_up = 0
        self.framing_bytes = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.reconnects = 0
        # Best (minimum-RTT) NTP-style clock sample against the site
        # process; see repro.obs.skew. Zero until ping() succeeds, which
        # leaves site spans replaying uncorrected rather than wrongly.
        self.clock_offset_s = 0.0
        self.clock_rtt_s: Optional[float] = None

    # -- accounting --------------------------------------------------------------

    def _count_sent(self, wire_bytes: int, body_bytes: int, frame_type: int) -> None:
        self.frames_sent += 1
        if frame_type == FRAME_MSG:
            self.measured_payload_down += body_bytes
            framing = wire_bytes - body_bytes
        else:
            framing = wire_bytes
        self.framing_bytes += framing
        self.metrics.counter(
            "net.socket.frames", direction=DOWN, site=self.site_id
        ).inc()
        if frame_type == FRAME_MSG:
            self.metrics.counter(
                "net.socket.bytes", direction=DOWN, site=self.site_id
            ).inc(body_bytes)
        self.metrics.counter("net.socket.framing.bytes", site=self.site_id).inc(
            framing
        )

    def _count_received(self, body: bytes, frame_type: int) -> None:
        self.frames_received += 1
        if frame_type == FRAME_MSG:
            self.measured_payload_up += len(body)
            framing = FRAME_OVERHEAD_BYTES
        else:
            framing = FRAME_OVERHEAD_BYTES + len(body)
        self.framing_bytes += framing
        self.metrics.counter(
            "net.socket.frames", direction=UP, site=self.site_id
        ).inc()
        if frame_type == FRAME_MSG:
            self.metrics.counter(
                "net.socket.bytes", direction=UP, site=self.site_id
            ).inc(len(body))
        self.metrics.counter("net.socket.framing.bytes", site=self.site_id).inc(
            framing
        )

    def socket_totals(self) -> dict:
        return {
            "payload_down": self.measured_payload_down,
            "payload_up": self.measured_payload_up,
            "framing": self.framing_bytes,
            "frames": self.frames_sent + self.frames_received,
            "reconnects": self.reconnects,
        }

    # -- connection management ---------------------------------------------------

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _ensure_connected(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
        except OSError as error:
            raise SiteUnavailableError(
                f"site {self.site_id!r} unreachable at "
                f"{self.address[0]}:{self.address[1]}: {error}"
            ) from None
        sock.settimeout(self.io_timeout_s)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        if self._connected_once:
            self.reconnects += 1
            self.metrics.counter("net.socket.reconnects", site=self.site_id).inc()
        self._connected_once = True
        self._sock = sock
        try:
            hello = json.dumps({"site_id": self.site_id}).encode("utf-8")
            wire = write_frame(sock, FRAME_HELLO, hello)
            self._count_sent(wire, len(hello), FRAME_HELLO)
            frame_type, body = read_frame(sock)
            self._count_received(body, frame_type)
            if frame_type != FRAME_WELCOME:
                raise NetworkError(
                    f"expected WELCOME from site {self.site_id!r}, got "
                    f"{_FRAME_NAMES.get(frame_type, frame_type)}"
                )
            info = json.loads(body.decode("utf-8"))
            if info.get("site_id") != self.site_id:
                raise NetworkError(
                    f"connected to wrong site: wanted {self.site_id!r}, "
                    f"server is {info.get('site_id')!r}"
                )
        except OSError as error:
            self._drop_connection()
            raise NetworkError(
                f"handshake with site {self.site_id!r} failed: {error}"
            ) from None
        except NetworkError:
            self._drop_connection()
            raise
        return sock

    def _transmit(self, frame_type: int, body: bytes) -> None:
        """Send one frame, translating socket failures to transient errors."""
        with self._io_lock:
            sock = self._ensure_connected()
            try:
                wire = write_frame(sock, frame_type, body)
            except OSError as error:
                self._drop_connection()
                raise NetworkError(
                    f"socket to site {self.site_id!r} failed mid-send: {error}"
                ) from None
            self._count_sent(wire, len(body), frame_type)

    # -- channel surface ---------------------------------------------------------

    def send_to_site(self, message: Message) -> None:
        # Connect *before* the bookkeeping: a site that cannot be
        # reached is indistinguishable from a crashed one, and the
        # simulated crash raises before DirectionStats records anything.
        # Recording first and failing the transmit after would leave the
        # channel's counters ahead of the evaluator's stats (counters
        # cannot decrease), breaking verify_against_network for killed
        # sites. A connection that dies *between* this pre-flight and
        # the write below is the one unavoidable race; TCP buffering
        # makes it surface on the next receive instead in practice.
        if not self._doomed:
            with self._io_lock:
                self._ensure_connected()
        queue = self._to_site
        before = len(queue)
        super().send_to_site(message)
        appended = list(queue)[before:] if len(queue) > before else []
        if not appended:
            # The plan dropped it in flight: DirectionStats charged the
            # bytes (they left the sender), so the same bytes cross the
            # real wire, flagged so the site discards them unread.
            body = encode_wire_message(
                message.kind, message.round_index, message.payload, FLAG_DROPPED
            )
            self._transmit(FRAME_MSG, body)
            return
        for entry in appended:
            if isinstance(entry, _Held):
                if entry.duplicate:
                    # Modeled duplicate bytes live in net.fault.bytes,
                    # not DirectionStats — re-sending on the wire would
                    # break measured == modeled, so the echo queue alone
                    # carries the dedup behaviour.
                    continue
                wire_message = entry.message  # delayed: delivered late
            else:
                wire_message = entry  # plain or corrupted (equal length)
            body = encode_wire_message(
                wire_message.kind, wire_message.round_index, wire_message.payload
            )
            self._transmit(FRAME_MSG, body)

    # send_to_coordinator is inherited unchanged: the real up-direction
    # bytes cross during ask(), when the site server streams its MSG
    # frames back; the local echo only feeds receive_at_coordinator.

    def ask(self, request) -> "object":
        """Run one site request remotely; returns a ``SiteReply``.

        The down payloads were already streamed as MSG frames by
        :meth:`send_to_site`; the REQ frame carries the request fields
        (minus payloads) plus the expected payload count so the server
        can detect desync after a partial failure.

        While a speculative-abandon predicate is armed (see
        :meth:`~repro.net.channel.Channel.arm_speculation`), the reply
        wait polls it between short receive timeouts; when it fires the
        connection is dropped and :class:`~repro.errors.\
LegDeadlineExceeded` raised, with any reply messages already fully
        consumed charged to the simulated upstream oracle (and reported
        as ``partial_up_bytes``) so every byte ledger still reconciles.
        """
        from repro.distributed.executor import SiteReply

        if self._doomed:
            self._raise_down(getattr(self, "_attempt_round", 0))
        control = {
            "kind": request.kind,
            "site_id": request.site_id,
            "round_number": request.round_number,
            "steps": request.steps,
            "key_attrs": request.key_attrs,
            "source": request.source,
            "independent_reduction": request.independent_reduction,
            "row_block_size": request.row_block_size,
            "traced": request.traced,
            "query_id": request.query_id,
            "engine": request.engine,
            "wire_codec": request.wire_codec,
            "compute_delay_s": getattr(request, "compute_delay_s", 0.0),
            "expected_payloads": len(request.down_payloads or ()),
        }
        should_abandon = self._should_abandon
        with self._io_lock:
            self._transmit(FRAME_REQ, pickle.dumps(control))
            sock = self._sock
            if should_abandon is not None:
                sock.settimeout(_SPECULATION_POLL_S)
            payloads = []
            msg_frames: list = []
            try:
                while True:
                    try:
                        frame_type, body = self._read_frame_polling(
                            sock, should_abandon
                        )
                    except OSError as error:
                        self._drop_connection()
                        raise NetworkError(
                            f"socket to site {self.site_id!r} failed "
                            f"mid-reply: {error}"
                        ) from None
                    self._count_received(body, frame_type)
                    if frame_type == FRAME_MSG:
                        kind, round_index, _flags, payload = decode_wire_message(
                            body
                        )
                        payloads.append(payload)
                        msg_frames.append((kind, round_index, payload))
                        continue
                    if frame_type == FRAME_REPLY:
                        meta = pickle.loads(body)
                        return SiteReply(
                            payloads=tuple(payloads),
                            rows=meta["rows"],
                            compute_s=meta["compute_s"],
                            spans=tuple(meta.get("spans", ())),
                            counters=dict(meta.get("counters", {})),
                            row_codec_payload_bytes=meta.get(
                                "row_codec_payload_bytes"
                            ),
                            telemetry=dict(meta.get("telemetry", {})),
                        )
                    if frame_type == FRAME_ERROR:
                        detail = pickle.loads(body)
                        raise map_remote_error(
                            detail.get("error", "ReproError"),
                            detail.get("message", "site server failure"),
                        )
                    raise NetworkError(
                        f"unexpected {_FRAME_NAMES.get(frame_type, frame_type)} "
                        f"frame from site {self.site_id!r} during request"
                    )
            except _AbandonLeg as verdict:
                # The straggler is abandoned for a backup. Reply messages
                # already fully received crossed the real wire *and* were
                # counted measured, so charge them to the simulated
                # upstream oracle too and tell the guard how many bytes
                # to book as speculative.
                partial_up = 0
                for kind, round_index, payload in msg_frames:
                    message = Message(
                        kind, self.site_id, "coordinator", round_index, payload
                    )
                    self.upstream.record(message)
                    partial_up += message.size_bytes
                self._drop_connection()
                deadline_s = float(verdict.args[0]) if verdict.args else 0.0
                raise LegDeadlineExceeded(
                    self.site_id, deadline_s, partial_up_bytes=partial_up
                ) from None
            finally:
                if should_abandon is not None and self._sock is not None:
                    self._sock.settimeout(self.io_timeout_s)

    def _read_frame_polling(self, sock, should_abandon) -> Tuple[int, bytes]:
        """:func:`read_frame`, polling the abandon predicate on timeouts.

        Partial bytes survive across poll timeouts (the buffer carries
        over), so a slow frame is never desynced — abandonment can fire
        at any byte boundary and the connection is then dropped whole.
        """
        if should_abandon is None:
            return read_frame(sock)
        prefix = self._recv_exact_polling(sock, 4, should_abandon)
        (length,) = struct.unpack(">I", prefix)
        if length < 1:
            raise NetworkError(f"invalid frame length {length}")
        blob = self._recv_exact_polling(sock, length, should_abandon)
        return blob[0], blob[1:]

    def _recv_exact_polling(self, sock, count: int, should_abandon) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = sock.recv(remaining)
            except socket.timeout:
                verdict = should_abandon()
                if verdict:
                    raise _AbandonLeg(verdict) from None
                continue
            if not chunk:
                raise ConnectionError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- telemetry ---------------------------------------------------------------

    def ping(self, samples: int = 3, clock=None):
        """NTP-style clock sampling against the site-server process.

        Runs ``samples`` PING exchanges and keeps the minimum-RTT sample
        (least queueing noise). The stored offset maps site-local
        ``perf_counter`` timestamps into this process's clock domain:
        ``local_time = site_time - clock_offset_s``. PING frames are
        control frames, charged entirely to framing overhead, so MSG
        byte parity is untouched.
        """
        import time

        from repro.obs.skew import estimate_offset

        if samples < 1:
            raise NetworkError("ping needs at least one sample")
        read_clock = clock if clock is not None else time.perf_counter
        best = None
        with self._io_lock:
            for _ in range(samples):
                t0 = read_clock()
                self._transmit(FRAME_PING, b"{}")
                sock = self._sock
                try:
                    frame_type, body = read_frame(sock)
                except OSError as error:
                    self._drop_connection()
                    raise NetworkError(
                        f"ping to site {self.site_id!r} failed: {error}"
                    ) from None
                t3 = read_clock()
                self._count_received(body, frame_type)
                if frame_type != FRAME_PING:
                    raise NetworkError(
                        f"expected PING echo from site {self.site_id!r}, got "
                        f"{_FRAME_NAMES.get(frame_type, frame_type)}"
                    )
                info = json.loads(body.decode("utf-8"))
                sample = estimate_offset(
                    t0, float(info["t1"]), float(info["t2"]), t3
                )
                if best is None or sample.rtt_s < best.rtt_s:
                    best = sample
        self.clock_offset_s = best.offset_s
        self.clock_rtt_s = best.rtt_s
        self.metrics.gauge("net.clock.offset_s", site=self.site_id).set(
            best.offset_s
        )
        self.metrics.gauge("net.clock.rtt_s", site=self.site_id).set(best.rtt_s)
        return best

    def telemetry(self, want=("metrics",)) -> dict:
        """Fetch the site process's telemetry snapshot on demand.

        ``want`` selects sections: ``"metrics"`` (the site registry
        snapshot) and/or ``"flight"`` (the site's flight-recorder
        records). A TELEMETRY exchange is a control-frame pair, charged
        entirely to framing overhead.
        """
        request = json.dumps({"want": list(want)}).encode("utf-8")
        with self._io_lock:
            self._transmit(FRAME_TELEMETRY, request)
            sock = self._sock
            try:
                frame_type, body = read_frame(sock)
            except OSError as error:
                self._drop_connection()
                raise NetworkError(
                    f"telemetry scrape of site {self.site_id!r} failed: {error}"
                ) from None
            self._count_received(body, frame_type)
            if frame_type != FRAME_TELEMETRY:
                raise NetworkError(
                    f"expected TELEMETRY from site {self.site_id!r}, got "
                    f"{_FRAME_NAMES.get(frame_type, frame_type)}"
                )
        return json.loads(body.decode("utf-8"))

    # -- recovery hooks ----------------------------------------------------------

    def drain_pending(self) -> int:
        discarded = super().drain_pending()
        # Tell the site server to forget buffered down payloads so the
        # retried attempt starts from a clean slate. Best effort: if the
        # connection is gone, the reconnect gets a fresh per-connection
        # buffer anyway.
        with self._io_lock:
            if self._sock is not None:
                try:
                    wire = write_frame(self._sock, FRAME_RESET, b"")
                    self._count_sent(wire, 0, FRAME_RESET)
                except OSError:
                    self._drop_connection()
        return discarded

    def close(self) -> None:
        self._drop_connection()


class SocketNetwork(Network):
    """A star of :class:`SocketChannel` — one TCP connection per site."""

    def __init__(
        self,
        endpoints: Dict[str, Tuple[str, int]],
        metrics=None,
        faults: Optional[FaultPlan] = None,
        io_timeout_s: float = 120.0,
    ):
        if not endpoints:
            raise NetworkError("a network needs at least one site")
        # Skip Network.__init__'s channel construction; rebuild state here.
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import NULL_TRACER

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        self._channels = {
            site_id: SocketChannel(
                site_id,
                address,
                self.metrics,
                faults,
                io_timeout_s=io_timeout_s,
            )
            for site_id, address in endpoints.items()
        }
        self._tracer = NULL_TRACER

    @property
    def transport(self) -> str:
        return "sockets"

    def socket_totals(self) -> dict:
        """Aggregate measured wire accounting across every channel."""
        totals = {
            "payload_down": 0,
            "payload_up": 0,
            "framing": 0,
            "frames": 0,
            "reconnects": 0,
        }
        for channel in self._channels.values():
            for key, value in channel.socket_totals().items():
                totals[key] += value
        return totals

    def sync_clocks(self, samples: int = 3):
        """PING every site; returns a :class:`~repro.obs.skew.ClockMap`.

        Sites that fail to answer are skipped — their spans replay
        uncorrected (offset 0) and their post-mortem telemetry comes
        from the flight recorder instead.
        """
        from repro.obs.skew import ClockMap

        clock_map = ClockMap()
        for site_id, channel in self._channels.items():
            try:
                clock_map.record(site_id, channel.ping(samples))
            except (ReproError, OSError):
                continue
        return clock_map

    def clock_offsets(self) -> Dict[str, float]:
        """Per-site best clock offsets from the most recent sync."""
        return {
            site_id: channel.clock_offset_s
            for site_id, channel in self._channels.items()
            if channel.clock_rtt_s is not None
        }

    def close(self) -> None:
        for channel in self._channels.values():
            channel.close()
