"""Observability for the Skalla reproduction: spans, metrics, JSONL traces.

Four pieces, all zero-dependency and import-free of the execution layers
(so any module may instrument itself without cycles):

- :mod:`repro.obs.tracer` — span tracing with a no-op default
  (:data:`NULL_TRACER`) so untraced runs pay nothing;
- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms;
- :mod:`repro.obs.events` — schema-versioned JSONL trace export with a
  lossless ``dump``/``load`` round trip;
- :mod:`repro.obs.timeline` — the ASCII per-round timeline behind the
  ``repro trace`` CLI subcommand.
"""

from repro.obs.events import SCHEMA_VERSION, EventLog, build_trace
from repro.obs.metrics import (
    BYTES_BUCKETS,
    GLOBAL_REGISTRY,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate,
    active_registry,
    set_active_registry,
)
from repro.obs.timeline import render_timeline, timeline_totals
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "EventLog",
    "GLOBAL_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA_VERSION",
    "SECONDS_BUCKETS",
    "Span",
    "Tracer",
    "activate",
    "active_registry",
    "build_trace",
    "render_timeline",
    "set_active_registry",
    "timeline_totals",
]
