"""Observability for the Skalla reproduction: spans, metrics, JSONL traces.

Seven pieces, all zero-dependency and import-free of the execution layers
(so any module may instrument itself without cycles):

- :mod:`repro.obs.tracer` — span tracing with a no-op default
  (:data:`NULL_TRACER`) so untraced runs pay nothing;
- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms;
- :mod:`repro.obs.events` — schema-versioned JSONL trace export with a
  lossless ``dump``/``load`` round trip (v2 adds per-record
  ``query_id`` and plan records);
- :mod:`repro.obs.timeline` — the ASCII per-round timeline behind the
  ``repro trace`` CLI subcommand;
- :mod:`repro.obs.profile` — EXPLAIN ANALYZE: per-query profiles
  attributing time/rows/bytes to plan nodes, sites and operators
  (``repro explain --analyze``);
- :mod:`repro.obs.export` — Prometheus text exposition plus the stdlib
  HTTP endpoint behind ``repro serve --metrics-port``;
- :mod:`repro.obs.top` — the polling terminal dashboard behind
  ``repro top``.
"""

from repro.obs.events import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    EventLog,
    build_trace,
)
from repro.obs.export import (
    MetricsServer,
    parse_prometheus_text,
    prometheus_text,
    scrape,
    start_metrics_server,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    GLOBAL_REGISTRY,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate,
    active_registry,
    histogram_quantile,
    set_active_registry,
)
from repro.obs.profile import (
    OperatorProfile,
    QueryProfile,
    RoundProfile,
    SiteProfile,
    build_profile,
    profile_from_trace,
    render_profile,
)
from repro.obs.timeline import render_timeline, timeline_totals
from repro.obs.top import render_top, summarize, top_loop
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "EventLog",
    "GLOBAL_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "OperatorProfile",
    "QueryProfile",
    "RoundProfile",
    "SCHEMA_VERSION",
    "SECONDS_BUCKETS",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SiteProfile",
    "Span",
    "Tracer",
    "activate",
    "active_registry",
    "build_profile",
    "build_trace",
    "histogram_quantile",
    "parse_prometheus_text",
    "profile_from_trace",
    "prometheus_text",
    "render_profile",
    "render_timeline",
    "render_top",
    "scrape",
    "set_active_registry",
    "start_metrics_server",
    "summarize",
    "timeline_totals",
    "top_loop",
]
