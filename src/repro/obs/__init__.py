"""Observability for the Skalla reproduction: spans, metrics, JSONL traces.

Seven pieces, all zero-dependency and import-free of the execution layers
(so any module may instrument itself without cycles):

- :mod:`repro.obs.tracer` — span tracing with a no-op default
  (:data:`NULL_TRACER`) so untraced runs pay nothing;
- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms;
- :mod:`repro.obs.events` — schema-versioned JSONL trace export with a
  lossless ``dump``/``load`` round trip (v2 adds per-record
  ``query_id`` and plan records);
- :mod:`repro.obs.timeline` — the ASCII per-round timeline behind the
  ``repro trace`` CLI subcommand;
- :mod:`repro.obs.profile` — EXPLAIN ANALYZE: per-query profiles
  attributing time/rows/bytes to plan nodes, sites and operators
  (``repro explain --analyze``);
- :mod:`repro.obs.export` — Prometheus text exposition plus the stdlib
  HTTP endpoint behind ``repro serve --metrics-port``;
- :mod:`repro.obs.top` — the polling terminal dashboard behind
  ``repro top``;
- :mod:`repro.obs.diff` — trace/profile/SLO comparison with
  per-dimension regression attribution (``repro diff``);
- :mod:`repro.obs.skew` — NTP-style clock-offset estimation and span
  alignment for merging site-process spans onto the coordinator clock;
- :mod:`repro.obs.flightrec` — bounded in-memory flight recorder with
  atomic crash dumps (``repro cluster dump``).
"""

from repro.obs.diff import (
    DiffEntry,
    TraceDiff,
    diff_artifacts,
    diff_bench,
    diff_profiles,
    diff_slo,
    load_artifact,
    render_diff,
)
from repro.obs.events import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    EventLog,
    build_trace,
)
from repro.obs.export import (
    MetricsServer,
    parse_prometheus_text,
    prometheus_text,
    scrape,
    start_metrics_server,
)
from repro.obs.flightrec import (
    FlightRecord,
    FlightRecorder,
    flight_path,
    load_flight_dir,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    GLOBAL_REGISTRY,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate,
    active_registry,
    histogram_quantile,
    set_active_registry,
)
from repro.obs.profile import (
    OperatorProfile,
    QueryProfile,
    RoundProfile,
    SiteProfile,
    build_profile,
    operator_totals,
    profile_from_trace,
    render_profile,
    round_totals,
    site_totals,
)
from repro.obs.skew import (
    ClockMap,
    ClockSample,
    align_span,
    estimate_offset,
)
from repro.obs.timeline import render_timeline, timeline_totals
from repro.obs.top import (
    cluster_sites,
    cluster_top_loop,
    render_top,
    summarize,
    top_loop,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BYTES_BUCKETS",
    "ClockMap",
    "ClockSample",
    "Counter",
    "DiffEntry",
    "EventLog",
    "FlightRecord",
    "FlightRecorder",
    "GLOBAL_REGISTRY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "OperatorProfile",
    "QueryProfile",
    "RoundProfile",
    "SCHEMA_VERSION",
    "SECONDS_BUCKETS",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SiteProfile",
    "Span",
    "TraceDiff",
    "Tracer",
    "activate",
    "active_registry",
    "align_span",
    "build_profile",
    "build_trace",
    "cluster_sites",
    "cluster_top_loop",
    "diff_artifacts",
    "diff_bench",
    "diff_profiles",
    "diff_slo",
    "estimate_offset",
    "flight_path",
    "histogram_quantile",
    "load_artifact",
    "load_flight_dir",
    "operator_totals",
    "parse_prometheus_text",
    "profile_from_trace",
    "prometheus_text",
    "render_diff",
    "render_profile",
    "render_timeline",
    "render_top",
    "round_totals",
    "scrape",
    "set_active_registry",
    "site_totals",
    "start_metrics_server",
    "summarize",
    "timeline_totals",
    "top_loop",
]
