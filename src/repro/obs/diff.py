"""Trace-diff regression attribution (``repro diff``).

``repro bench --check`` can say *that* a bar regressed; this module says
*why*. It compares two observability artifacts — JSONL traces, EXPLAIN
ANALYZE profiles, SLO reports from the load generator, or whole bench
reports — and attributes every wall-time/byte delta to a dimension the
paper's cost analysis argues about: the query total, a round, a site, an
operator, a service lifecycle stage, or an applied optimization.

Each compared series becomes a :class:`DiffEntry` with a thresholded
verdict (``REGRESSED`` / ``IMPROVED`` / ``UNCHANGED``): a delta counts
only when it exceeds ``threshold`` relative to the before value *plus* a
per-unit absolute slack, so timer jitter on small numbers does not
produce verdicts. A trace diffed against itself therefore reports zero
attributed delta — the self-check the tests pin.

Artifact kinds are auto-detected by :func:`load_artifact`:

- a JSONL trace (``repro trace --emit-trace``) — normalized to a
  profile via :func:`~repro.obs.profile.profile_from_trace`;
- a profile dict (``repro explain --analyze --json``);
- an SLO report (``repro loadgen``, ``BENCH_slo.json``);
- a bench report (``repro bench``, ``BENCH_profile.json``).

Both sides must normalize to the same kind. :func:`render_diff` prints
the root-cause table CI attaches to a failing ``bench --check``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.profile import (
    _profile_dict,
    operator_totals,
    round_totals,
    site_totals,
)

REGRESSED = "REGRESSED"
IMPROVED = "IMPROVED"
UNCHANGED = "UNCHANGED"

#: Default relative threshold: a series must move >10% to earn a verdict.
DEFAULT_THRESHOLD = 0.10

#: Per-unit absolute slack — deltas below this are noise regardless of
#: ratio (5ms of timer jitter on a 1ms operator is not a 500% regression).
ABS_SLACK = {
    "s": 0.005,
    "ms": 5.0,
    # Tail quantiles (p99) of small samples are order statistics at or
    # near the max — one cold code path or GC pause moves them tens of
    # milliseconds without any regression. Wider slack; a real operator
    # slowdown shifts the whole tail well past it.
    "ms_tail": 25.0,
    "bytes": 64.0,
    "count": 0.5,
    "ratio": 0.02,
    # Cache-hit share of an SLO step: race-dependent under concurrency
    # (two in-flight submissions of one signature may both miss), so the
    # slack tolerates a few flipped outcomes per step.
    "hit_ratio": 0.15,
    "qps": 0.5,
}


@dataclass(frozen=True)
class DiffEntry:
    """One compared series: a metric of one key in one dimension."""

    dimension: str  #: total | round | site | operator | stage | optimization | metric
    key: str
    metric: str
    before: float
    after: float
    unit: str = "s"
    higher_is_worse: bool = True

    @property
    def delta(self) -> float:
        return self.after - self.before

    def worse_by(self) -> float:
        """Signed movement in the *bad* direction (positive = worse)."""
        return self.delta if self.higher_is_worse else -self.delta

    def _limit(self, threshold: float) -> float:
        return threshold * abs(self.before) + ABS_SLACK.get(self.unit, 0.0)

    def verdict(self, threshold: float = DEFAULT_THRESHOLD) -> str:
        worse = self.worse_by()
        limit = self._limit(threshold)
        if worse > limit:
            return REGRESSED
        if worse < -limit:
            return IMPROVED
        return UNCHANGED

    def severity(self, threshold: float = DEFAULT_THRESHOLD) -> float:
        """How many times over the verdict bar the movement is."""
        limit = self._limit(threshold)
        return abs(self.worse_by()) / limit if limit > 0 else 0.0

    def to_dict(self, threshold: float = DEFAULT_THRESHOLD) -> dict:
        return {
            "dimension": self.dimension,
            "key": self.key,
            "metric": self.metric,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "unit": self.unit,
            "higher_is_worse": self.higher_is_worse,
            "verdict": self.verdict(threshold),
        }


@dataclass
class TraceDiff:
    """All compared series between two artifacts of one kind."""

    kind: str
    before_label: str
    after_label: str
    entries: List[DiffEntry] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    def regressions(self) -> List[DiffEntry]:
        hits = [
            entry
            for entry in self.entries
            if entry.verdict(self.threshold) == REGRESSED
        ]
        hits.sort(key=lambda entry: -entry.severity(self.threshold))
        return hits

    def improvements(self) -> List[DiffEntry]:
        hits = [
            entry
            for entry in self.entries
            if entry.verdict(self.threshold) == IMPROVED
        ]
        hits.sort(key=lambda entry: -entry.severity(self.threshold))
        return hits

    def top_regression(self) -> Optional[DiffEntry]:
        regressions = self.regressions()
        return regressions[0] if regressions else None

    @property
    def attributed_delta_s(self) -> float:
        """Sum of absolute time deltas across every attributed series."""
        total = 0.0
        for entry in self.entries:
            if entry.unit == "s":
                total += abs(entry.delta)
            elif entry.unit in ("ms", "ms_tail"):
                total += abs(entry.delta) / 1000.0
        return total

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "before": self.before_label,
            "after": self.after_label,
            "threshold": self.threshold,
            "attributed_delta_s": self.attributed_delta_s,
            "entries": [
                entry.to_dict(self.threshold) for entry in self.entries
            ],
            "regressions": len(self.regressions()),
            "improvements": len(self.improvements()),
        }


# ---------------------------------------------------------------------------
# Builders per artifact kind
# ---------------------------------------------------------------------------


def _paired(before: dict, after: dict) -> List[Tuple[str, dict, dict]]:
    """Union of keys, missing side contributing zeros."""
    keys = list(before)
    keys.extend(key for key in after if key not in before)
    return [(key, before.get(key, {}), after.get(key, {})) for key in keys]


def diff_profiles(
    before,
    after,
    threshold: float = DEFAULT_THRESHOLD,
    before_label: str = "before",
    after_label: str = "after",
) -> TraceDiff:
    """Attribute profile deltas to rounds, sites, operators, optimizations."""
    before = _profile_dict(before)
    after = _profile_dict(after)
    entries: List[DiffEntry] = []

    entries.append(
        DiffEntry(
            "total", "query", "wall_s",
            before.get("wall_s", 0.0), after.get("wall_s", 0.0),
        )
    )
    entries.append(
        DiffEntry(
            "total", "query", "bytes",
            float(before.get("bytes_total", 0)),
            float(after.get("bytes_total", 0)),
            unit="bytes",
        )
    )
    for label in ("time_coverage", "bytes_coverage"):
        entries.append(
            DiffEntry(
                "metric", "profile", label,
                before.get(label, 1.0), after.get(label, 1.0),
                unit="ratio", higher_is_worse=False,
            )
        )

    for key, old, new in _paired(round_totals(before), round_totals(after)):
        entries.append(
            DiffEntry(
                "round", key, "wall_s",
                old.get("wall_s", 0.0), new.get("wall_s", 0.0),
            )
        )
        entries.append(
            DiffEntry(
                "round", key, "bytes",
                float(old.get("bytes", 0)), float(new.get("bytes", 0)),
                unit="bytes",
            )
        )
    for key, old, new in _paired(site_totals(before), site_totals(after)):
        entries.append(
            DiffEntry(
                "site", key, "compute_s",
                old.get("compute_s", 0.0), new.get("compute_s", 0.0),
            )
        )
        entries.append(
            DiffEntry(
                "site", key, "bytes",
                float(old.get("bytes", 0)), float(new.get("bytes", 0)),
                unit="bytes",
            )
        )
    for key, old, new in _paired(operator_totals(before), operator_totals(after)):
        entries.append(
            DiffEntry(
                "operator", key, "seconds",
                old.get("seconds", 0.0), new.get("seconds", 0.0),
            )
        )

    old_impacts = {
        impact["name"]: impact for impact in before.get("optimizations", ())
    }
    new_impacts = {
        impact["name"]: impact for impact in after.get("optimizations", ())
    }
    for key, old, new in _paired(old_impacts, new_impacts):
        entries.append(
            DiffEntry(
                "optimization", key, "saving_fraction",
                old.get("saving_fraction", 0.0),
                new.get("saving_fraction", 0.0),
                unit="ratio", higher_is_worse=False,
            )
        )

    return TraceDiff(
        kind="profile",
        before_label=before_label,
        after_label=after_label,
        entries=entries,
        threshold=threshold,
    )


def _slo_step_entries(
    entries: List[DiffEntry], step_key: str, old: dict, new: dict
) -> None:
    entries.append(
        DiffEntry(
            "total", step_key, "achieved_qps",
            old.get("achieved_qps", 0.0), new.get("achieved_qps", 0.0),
            unit="qps", higher_is_worse=False,
        )
    )
    entries.append(
        DiffEntry(
            "total", step_key, "hit_ratio",
            old.get("hit_ratio", 0.0), new.get("hit_ratio", 0.0),
            unit="hit_ratio", higher_is_worse=False,
        )
    )
    old_outcomes = old.get("outcomes", {})
    new_outcomes = new.get("outcomes", {})
    for outcome in ("rejected", "timeout"):
        entries.append(
            DiffEntry(
                "metric", step_key, outcome,
                float(old_outcomes.get(outcome, 0)),
                float(new_outcomes.get(outcome, 0)),
                unit="count",
            )
        )
    old_latency = old.get("latency_ms", {})
    new_latency = new.get("latency_ms", {})
    # p50 is a robust median; p90/p99 of a 24-query step are order
    # statistics within a couple of ranks of the max, so they gate with
    # the wider tail slack.
    for label in ("p50", "p90", "p99"):
        entries.append(
            DiffEntry(
                "total", step_key, f"latency_{label}",
                old_latency.get(label, 0.0), new_latency.get(label, 0.0),
                unit="ms" if label == "p50" else "ms_tail",
            )
        )
    old_stages = old.get("stages_ms", {})
    new_stages = new.get("stages_ms", {})
    stage_names = list(old_stages)
    stage_names.extend(name for name in new_stages if name not in old_stages)
    for stage in stage_names:
        for label in ("p50", "p99"):
            entries.append(
                DiffEntry(
                    "stage", f"{step_key}/{stage}", f"latency_{label}",
                    old_stages.get(stage, {}).get(label, 0.0),
                    new_stages.get(stage, {}).get(label, 0.0),
                    unit="ms_tail" if label == "p99" else "ms",
                )
            )


def diff_slo(
    before: dict,
    after: dict,
    threshold: float = DEFAULT_THRESHOLD,
    before_label: str = "before",
    after_label: str = "after",
) -> TraceDiff:
    """Attribute SLO-report deltas per offered-load step and stage."""
    entries: List[DiffEntry] = []
    old_steps = {step.get("label", str(index)): step
                 for index, step in enumerate(before.get("steps", ()))}
    new_steps = {step.get("label", str(index)): step
                 for index, step in enumerate(after.get("steps", ()))}
    for key, old, new in _paired(old_steps, new_steps):
        _slo_step_entries(entries, key, old, new)
    return TraceDiff(
        kind="slo",
        before_label=before_label,
        after_label=after_label,
        entries=entries,
        threshold=threshold,
    )


def diff_bench(
    before: dict,
    after: dict,
    threshold: float = DEFAULT_THRESHOLD,
    before_label: str = "before",
    after_label: str = "after",
) -> TraceDiff:
    """Attribute bench-report deltas; recurses into an embedded profile."""
    entries: List[DiffEntry] = []
    old_profiler = before.get("profiler", {})
    new_profiler = after.get("profiler", {})
    entries.append(
        DiffEntry(
            "metric", "profiler", "overhead_frac",
            old_profiler.get("overhead_frac", 0.0),
            new_profiler.get("overhead_frac", 0.0),
            unit="ratio",
        )
    )
    for label in ("time_coverage", "bytes_coverage"):
        entries.append(
            DiffEntry(
                "metric", "profiler", label,
                old_profiler.get(label, 1.0), new_profiler.get(label, 1.0),
                unit="ratio", higher_is_worse=False,
            )
        )
    old_service = before.get("service", {})
    new_service = after.get("service", {})
    entries.append(
        DiffEntry(
            "metric", "service", "hit_ratio",
            old_service.get("hit_ratio", 0.0),
            new_service.get("hit_ratio", 0.0),
            unit="ratio", higher_is_worse=False,
        )
    )
    old_latency = old_service.get("latency_ms", {})
    new_latency = new_service.get("latency_ms", {})
    for label in ("p50", "p90", "p99", "mean"):
        entries.append(
            DiffEntry(
                "stage", "service", f"latency_{label}",
                old_latency.get(label, 0.0), new_latency.get(label, 0.0),
                unit="ms_tail" if label == "p99" else "ms",
            )
        )
    if "profile" in before and "profile" in after:
        nested = diff_profiles(
            before["profile"], after["profile"], threshold=threshold
        )
        entries.extend(nested.entries)
    return TraceDiff(
        kind="bench",
        before_label=before_label,
        after_label=after_label,
        entries=entries,
        threshold=threshold,
    )


# ---------------------------------------------------------------------------
# Artifact loading & top-level diff
# ---------------------------------------------------------------------------


def load_artifact(path: str):
    """Read and classify one artifact; returns ``(kind, payload)``.

    Kinds: ``"trace"`` (payload: :class:`~repro.obs.events.EventLog`),
    ``"profile"``, ``"slo"``, ``"bench"`` (payload: dict). Flight
    recorder dumps load as ``"trace"`` via
    :meth:`~repro.obs.flightrec.FlightRecord.to_event_log`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    first_line = next(
        (line for line in text.splitlines() if line.strip()), ""
    )
    try:
        first = json.loads(first_line)
    except (json.JSONDecodeError, ValueError):
        first = None
    if isinstance(first, dict) and first.get("record") == "header":
        from repro.obs.events import EventLog

        return "trace", EventLog.loads(text)
    if isinstance(first, dict) and first.get("record") == "flight":
        # A flight-recorder dump (repro cluster dump / site crash dump):
        # surface it as a trace so post-mortems reuse the trace diff path.
        from repro.obs.flightrec import FlightRecord

        return "trace", FlightRecord.loads(text).to_event_log()
    try:
        data = json.loads(text)
    except (json.JSONDecodeError, ValueError) as error:
        raise ObservabilityError(
            f"{path!r} is neither a JSONL trace nor a JSON artifact: {error}"
        )
    if not isinstance(data, dict):
        raise ObservabilityError(f"{path!r} does not hold a JSON object")
    if "slo_version" in data or ("steps" in data and "mix" in data):
        return "slo", data
    if "profiler" in data:
        return "bench", data
    if "rounds" in data:
        return "profile", data
    raise ObservabilityError(
        f"cannot classify {path!r}: expected a JSONL trace, a profile "
        "(repro explain --analyze --json), an SLO report (repro loadgen), "
        "or a bench report (repro bench)"
    )


def diff_artifacts(
    before_path: str,
    after_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    query_id=None,
) -> TraceDiff:
    """Load, classify and diff two artifact files.

    Traces are normalized to profiles (so a trace may be compared
    against a profile JSON); otherwise both sides must be the same kind.
    """
    from repro.obs.profile import profile_from_trace

    kind_before, before = load_artifact(before_path)
    kind_after, after = load_artifact(after_path)
    if kind_before == "trace":
        before = profile_from_trace(before, query_id=query_id).to_dict()
        kind_before = "profile"
    if kind_after == "trace":
        after = profile_from_trace(after, query_id=query_id).to_dict()
        kind_after = "profile"
    if kind_before != kind_after:
        raise ObservabilityError(
            f"cannot diff a {kind_before} against a {kind_after} "
            f"({before_path!r} vs {after_path!r})"
        )
    builder = {
        "profile": diff_profiles,
        "slo": diff_slo,
        "bench": diff_bench,
    }[kind_before]
    return builder(
        before,
        after,
        threshold=threshold,
        before_label=before_path,
        after_label=after_path,
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_value(value: float, unit: str) -> str:
    if unit == "s":
        return f"{value * 1000.0:.2f}ms" if abs(value) < 1.0 else f"{value:.3f}s"
    if unit in ("ms", "ms_tail"):
        return f"{value:.1f}ms"
    if unit == "bytes":
        return f"{int(value)}B"
    if unit in ("ratio", "hit_ratio"):
        return f"{value:.3f}"
    if unit == "qps":
        return f"{value:.2f}/s"
    return f"{value:g}"


def _fmt_delta(entry: DiffEntry) -> str:
    signed = f"{'+' if entry.delta >= 0 else ''}{_fmt_value(entry.delta, entry.unit)}"
    if entry.before:
        signed += f" ({entry.delta / abs(entry.before):+.0%})"
    return signed


def _table(headers, rows) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_diff(diff: TraceDiff) -> str:
    """The root-cause table: verdicts first, severity order."""
    lines = [
        f"repro diff [{diff.kind}] — {diff.before_label} -> {diff.after_label} "
        f"(threshold {diff.threshold:.0%})"
    ]
    regressions = diff.regressions()
    improvements = diff.improvements()
    unchanged = len(diff.entries) - len(regressions) - len(improvements)
    lines.append(
        f"{len(diff.entries)} series compared: {len(regressions)} regressed, "
        f"{len(improvements)} improved, {unchanged} unchanged; "
        f"attributed |time delta| {_fmt_value(diff.attributed_delta_s, 's')}"
    )
    rows = []
    for verdict, entries in ((REGRESSED, regressions), (IMPROVED, improvements)):
        for entry in entries:
            rows.append(
                [
                    verdict,
                    entry.dimension,
                    entry.key,
                    entry.metric,
                    _fmt_value(entry.before, entry.unit),
                    _fmt_value(entry.after, entry.unit),
                    _fmt_delta(entry),
                ]
            )
    if rows:
        lines.append(
            _table(
                ["verdict", "dimension", "key", "metric", "before", "after",
                 "delta"],
                rows,
            )
        )
        top = diff.top_regression()
        if top is not None:
            lines.append(
                f"top regression: {top.dimension} {top.key} {top.metric} "
                f"{_fmt_value(top.before, top.unit)} -> "
                f"{_fmt_value(top.after, top.unit)} ({_fmt_delta(top)})"
            )
    else:
        lines.append("no attributed regressions or improvements")
    return "\n".join(lines)
