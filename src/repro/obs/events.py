"""Structured JSONL trace export with a versioned schema.

One trace file is a sequence of JSON objects, one per line:

- line 1 is the **header**: ``{"record": "header", "schema_version": 2,
  "generator": "repro.obs"}``;
- every following line is a record with a ``"record"`` type tag:

  - ``"span"`` — one :class:`~repro.obs.tracer.Span` (name, kind, ids,
    monotonic start/end seconds, attribute dict);
  - ``"metric"`` — one metric snapshot (encoded identity, type,
    value or histogram buckets) from a
    :class:`~repro.obs.metrics.MetricsRegistry`;
  - ``"stats"`` — the run's :class:`~repro.distributed.stats.ExecutionStats`
    snapshot (``to_dict``), the same numbers the benchmarks report;
  - ``"plan"`` (v2) — the optimized plan's description and optimizer
    notes, so a profile can be rebuilt from the file alone.

Schema v2 additionally allows a ``"query_id"`` field on any record, so
one file holding several service queries can be filtered per query with
:meth:`EventLog.for_query`. Schema v3 adds cross-process provenance:
span records may carry ``"process"`` (``"coordinator"``/``"site"``),
``"site_id"`` and ``"clock_offset_s"`` (the skew correction already
applied to the span's timestamps — see :mod:`repro.obs.skew`), and a
``"clock"`` record captures the per-site offset/RTT map of the run.
v1/v2 files still load; a file whose records disagree on the schema
version — e.g. two concatenated traces — is rejected with the
offending line number.

The round trip is redaction-free and lossless: ``load(dump(path))``
returns exactly the records written. Unknown record types are preserved
(they validate as long as they carry a ``"record"`` tag), so older
readers skip rather than crash on newer producers *within* a schema
version; an unsupported ``schema_version`` is rejected loudly.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.errors import TraceSchemaError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

#: Version of the JSONL record layout. Bump on any breaking change.
SCHEMA_VERSION = 3

#: Versions this reader can load. v1 lacks query_id/plan records; v2
#: lacks cross-process provenance (process/site_id/clock_offset_s) and
#: clock records.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)

GENERATOR = "repro.obs"

_SPAN_REQUIRED = ("name", "kind", "span_id", "parent_id", "start_s", "end_s")
_METRIC_REQUIRED = ("name", "type")
_METRIC_TYPES = ("counter", "gauge", "histogram")


class EventLog:
    """An in-memory JSONL trace: a list of record dicts plus the header."""

    def __init__(self, records: Optional[List[dict]] = None,
                 schema_version: int = SCHEMA_VERSION):
        self.schema_version = schema_version
        self.records: List[dict] = list(records or [])

    # -- building ----------------------------------------------------------------

    def append(self, record_type: str, **fields) -> dict:
        record = {"record": record_type, **fields}
        self.records.append(record)
        return record

    def add_span(self, span: Span) -> dict:
        return self.append("span", **span.to_dict())

    def add_metrics(self, registry: MetricsRegistry) -> None:
        for key, snapshot in registry.snapshot().items():
            self.append("metric", name=key, **snapshot)

    # -- reading -----------------------------------------------------------------

    def records_of(self, record_type: str) -> List[dict]:
        return [record for record in self.records if record["record"] == record_type]

    def spans(self) -> List[Span]:
        return [Span.from_dict(record) for record in self.records_of("span")]

    def query_ids(self) -> List:
        """Distinct query_id values present, sorted (v2 traces)."""
        seen = set()
        for record in self.records:
            query_id = record.get("query_id")
            if query_id is None and record.get("record") == "span":
                query_id = record.get("attributes", {}).get("query_id")
            if query_id is not None:
                seen.add(query_id)
        return sorted(seen, key=repr)

    def for_query(self, query_id) -> "EventLog":
        """A new log holding only records belonging to ``query_id``.

        A span belongs if it carries the id (record field or span
        attribute) or descends from a span that does — site/coordinator
        operator spans only carry it at the root of their subtree when
        the producer predates per-record stamping.
        """
        span_records = self.records_of("span")
        member_ids = set()
        for record in span_records:
            attr_id = record.get("attributes", {}).get("query_id")
            if record.get("query_id") == query_id or attr_id == query_id:
                member_ids.add(record["span_id"])
        grew = True
        while grew:
            grew = False
            for record in span_records:
                if record["span_id"] in member_ids:
                    continue
                if record.get("parent_id") in member_ids:
                    member_ids.add(record["span_id"])
                    grew = True
        kept = []
        for record in self.records:
            if record.get("record") == "span":
                if record["span_id"] in member_ids:
                    kept.append(record)
            elif record.get("query_id") == query_id:
                kept.append(record)
        return EventLog(kept, schema_version=self.schema_version)

    def header(self) -> dict:
        return {
            "record": "header",
            "schema_version": self.schema_version,
            "generator": GENERATOR,
        }

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check every record against the schema; raise TraceSchemaError."""
        if self.schema_version not in SUPPORTED_SCHEMA_VERSIONS:
            raise TraceSchemaError(
                f"unsupported trace schema version {self.schema_version!r} "
                f"(this reader understands {SUPPORTED_SCHEMA_VERSIONS})"
            )
        for line_number, record in enumerate(self.records, start=2):
            _validate_record(record, line_number, self.schema_version)

    # -- serialization -----------------------------------------------------------

    def dumps(self) -> str:
        """The JSONL text: header line plus one line per record."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in self.records)
        return "\n".join(lines) + "\n"

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "EventLog":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceSchemaError("empty trace: missing header line")
        records = []
        for line_number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"line {line_number}: not valid JSON ({error})"
                ) from None
            if not isinstance(record, dict) or "record" not in record:
                raise TraceSchemaError(
                    f"line {line_number}: every record needs a 'record' tag"
                )
            records.append(record)
        header = records[0]
        if header["record"] != "header":
            raise TraceSchemaError("line 1: first record must be the header")
        version = header.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise TraceSchemaError(
                f"unsupported trace schema version {version!r} "
                f"(this reader understands {SUPPORTED_SCHEMA_VERSIONS})"
            )
        for line_number, record in enumerate(records[1:], start=2):
            if record.get("record") != "header":
                continue
            other = record.get("schema_version")
            if other != version:
                raise TraceSchemaError(
                    f"line {line_number}: mixed trace schema versions — header "
                    f"declares {other!r} but the file opened as version "
                    f"{version!r}; concatenated traces cannot be loaded"
                )
            raise TraceSchemaError(
                f"line {line_number}: unexpected second header record; "
                f"one trace file holds exactly one header on line 1"
            )
        log = cls(records[1:], schema_version=version)
        log.validate()
        return log

    @classmethod
    def load(cls, path) -> "EventLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EventLog)
            and self.schema_version == other.schema_version
            and self.records == other.records
        )

    def __len__(self) -> int:
        return len(self.records)


def _validate_record(
    record: dict, line_number: int, schema_version: int = SCHEMA_VERSION
) -> None:
    record_type = record.get("record")
    if not isinstance(record_type, str):
        raise TraceSchemaError(f"line {line_number}: 'record' tag must be a string")
    if "query_id" in record:
        if schema_version < 2:
            raise TraceSchemaError(
                f"line {line_number}: 'query_id' requires schema version >= 2 "
                f"(file is version {schema_version})"
            )
        if not isinstance(record["query_id"], (int, str)):
            raise TraceSchemaError(
                f"line {line_number}: 'query_id' must be an integer or string"
            )
    for provenance_field in ("process", "site_id", "clock_offset_s"):
        if provenance_field in record and schema_version < 3:
            raise TraceSchemaError(
                f"line {line_number}: {provenance_field!r} requires schema "
                f"version >= 3 (file is version {schema_version})"
            )
    if "process" in record and record["process"] not in ("coordinator", "site"):
        raise TraceSchemaError(
            f"line {line_number}: 'process' must be 'coordinator' or 'site' "
            f"(got {record['process']!r})"
        )
    if record_type == "clock":
        if schema_version < 3:
            raise TraceSchemaError(
                f"line {line_number}: clock records require schema version >= 3"
            )
        if not isinstance(record.get("sites"), dict):
            raise TraceSchemaError(
                f"line {line_number}: clock record needs a 'sites' object"
            )
        return
    if record_type == "plan":
        if "describe" not in record:
            raise TraceSchemaError(
                f"line {line_number}: plan record missing 'describe'"
            )
        return
    if record_type == "span":
        for field_name in _SPAN_REQUIRED:
            if field_name not in record:
                raise TraceSchemaError(
                    f"line {line_number}: span record missing {field_name!r}"
                )
        if not isinstance(record.get("attributes", {}), dict):
            raise TraceSchemaError(
                f"line {line_number}: span attributes must be an object"
            )
    elif record_type == "metric":
        for field_name in _METRIC_REQUIRED:
            if field_name not in record:
                raise TraceSchemaError(
                    f"line {line_number}: metric record missing {field_name!r}"
                )
        if record["type"] not in _METRIC_TYPES:
            raise TraceSchemaError(
                f"line {line_number}: unknown metric type {record['type']!r}"
            )
        if record["type"] == "histogram":
            if "counts" not in record or "boundaries" not in record:
                raise TraceSchemaError(
                    f"line {line_number}: histogram record needs counts+boundaries"
                )
        elif "value" not in record:
            raise TraceSchemaError(
                f"line {line_number}: {record['type']} record missing 'value'"
            )
    elif record_type == "stats":
        if "rounds" not in record:
            raise TraceSchemaError(
                f"line {line_number}: stats record missing 'rounds'"
            )
    # Unknown record types are allowed within a schema version.


def build_trace(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    stats=None,
    model=None,
    plan=None,
    query_id=None,
    clock_map=None,
) -> EventLog:
    """Assemble one run's trace: spans, metrics snapshot, stats snapshot.

    ``stats`` is an :class:`~repro.distributed.stats.ExecutionStats` (kept
    untyped here so ``repro.obs`` stays import-free of the distributed
    layer); ``model`` optionally prices its communication breakdown.
    ``plan`` (any object with ``describe()`` and ``notes``) adds a v2
    "plan" record; ``query_id`` stamps every emitted record so several
    runs can share one file and be pulled apart with ``for_query``.
    ``clock_map`` (a :class:`~repro.obs.skew.ClockMap`) records the
    per-site offset/RTT estimates of a socket run as a v3 "clock"
    record. Span records without replay provenance are stamped
    ``process="coordinator"`` — every v3 span says where it ran.
    """
    log = EventLog()
    if tracer is not None and getattr(tracer, "enabled", False):
        for span in tracer.spans:
            record = log.add_span(span)
            record.setdefault("process", "coordinator")
    if metrics is not None:
        log.add_metrics(metrics)
    if stats is not None:
        log.append("stats", **stats.to_dict(model))
    if plan is not None:
        log.append("plan", describe=plan.describe(), notes=list(plan.notes))
    if clock_map is not None and len(clock_map):
        log.append("clock", sites=clock_map.to_dict())
    if query_id is not None:
        for record in log.records:
            record.setdefault("query_id", query_id)
    return log
