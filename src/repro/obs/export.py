"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

Three pieces, all stdlib-only:

- :func:`prometheus_text` renders a registry snapshot in text exposition
  format 0.0.4 — counters gain the ``_total`` suffix, histograms emit
  cumulative ``_bucket{le=...}`` series (Prometheus ``le`` semantics,
  including the ``+Inf`` bucket) plus ``_sum``/``_count``, and internal
  dotted names/labels (``net.bytes{direction=down,site=site0}``) are
  sanitized to the exposition charset;
- :class:`MetricsServer` serves ``GET /metrics`` (and ``/healthz``,
  which answers a JSON liveness document: status, server uptime, the
  trace schema version, and the registry's metric count) from an
  ``http.server.ThreadingHTTPServer`` on a daemon thread — this is
  what ``repro serve --metrics-port`` starts;
- :func:`parse_prometheus_text` / :func:`scrape` read an exposition back
  into ``{family: [(labels, value), ...]}`` — the consumer side used by
  ``repro top`` and the CI smoke job.

The registry is shared with live writers; ``snapshot()`` is taken under
each metric's lock, so a scrape observes a consistent value per metric
(not a consistent cut across metrics, which Prometheus does not require).
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Tuple

from repro.errors import ObservabilityError
from repro.obs.events import SCHEMA_VERSION
from repro.obs.metrics import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """Map an internal metric name to the exposition charset."""
    sanitized = _NAME_SANITIZE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`repro.obs.metrics._metric_key`: name + label dict."""
    if "{" not in key:
        return key, {}
    name, _, encoded = key.partition("{")
    labels = {}
    for pair in encoded.rstrip("}").split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(labels: Dict[str, str], extra: Dict[str, str] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    encoded = ",".join(
        f'{_LABEL_SANITIZE.sub("_", label)}="{_escape_label_value(value)}"'
        for label, value in sorted(merged.items())
    )
    return "{" + encoded + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4."""
    families: Dict[str, dict] = {}
    for key, snapshot in registry.snapshot().items():
        name, labels = split_key(key)
        family_name = sanitize_name(name)
        family = families.setdefault(
            family_name, {"type": snapshot["type"], "series": []}
        )
        if family["type"] != snapshot["type"]:
            raise ObservabilityError(
                f"metric family {family_name!r} mixes types "
                f"{family['type']!r} and {snapshot['type']!r}"
            )
        family["series"].append((labels, snapshot))

    lines: List[str] = []
    for family_name in sorted(families):
        family = families[family_name]
        kind = family["type"]
        sample_name = family_name + "_total" if kind == "counter" else family_name
        lines.append(f"# HELP {family_name} repro.obs metric {family_name}")
        lines.append(f"# TYPE {family_name} {kind}")
        for labels, snapshot in family["series"]:
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{sample_name}{_render_labels(labels)} "
                    f"{_format_value(snapshot['value'])}"
                )
                continue
            # Histogram: cumulative le-buckets + sum + count.
            running = 0
            for boundary, bucket_count in zip(
                snapshot["boundaries"], snapshot["counts"]
            ):
                running += bucket_count
                lines.append(
                    f"{family_name}_bucket"
                    f"{_render_labels(labels, {'le': _format_value(boundary)})} "
                    f"{running}"
                )
            lines.append(
                f"{family_name}_bucket{_render_labels(labels, {'le': '+Inf'})} "
                f"{snapshot['count']}"
            )
            lines.append(
                f"{family_name}_sum{_render_labels(labels)} "
                f"{_format_value(snapshot['sum'])}"
            )
            lines.append(
                f"{family_name}_count{_render_labels(labels)} {snapshot['count']}"
            )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, List[Tuple[dict, float]]]:
    """Parse an exposition into ``{sample_name: [(labels, value), ...]}``.

    Sample names are kept verbatim (``net_bytes_total``,
    ``service_latency_s_bucket``, ...); ``# HELP``/``# TYPE`` comments
    are skipped. Raises :class:`~repro.errors.ObservabilityError` on an
    unparseable sample line, which is what the CI smoke job asserts.
    """
    samples: Dict[str, List[Tuple[dict, float]]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ObservabilityError(
                f"exposition line {line_number} does not parse: {line!r}"
            )
        labels = {}
        encoded = match.group("labels")
        if encoded:
            for label, value in _LABEL_PAIR.findall(encoded):
                labels[label] = value.replace('\\"', '"').replace("\\\\", "\\")
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs/2"

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/metrics/"):
            body = prometheus_text(self.server.registry).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
        elif path == "/healthz":
            health = {
                "status": "ok",
                "uptime_s": time.monotonic() - self.server.started_monotonic,
                "trace_schema_version": SCHEMA_VERSION,
                "metric_count": len(self.server.registry),
            }
            status_code = 200
            probe = getattr(self.server, "health_probe", None)
            if probe is not None:
                # A cluster-liveness probe (e.g. ProcessCluster.dead_sites):
                # any unreachable site turns the endpoint degraded — a
                # non-200 so orchestrators and load balancers notice.
                try:
                    dead_sites = sorted(probe())
                except Exception as error:  # noqa: BLE001 - report, don't die
                    health["status"] = "degraded"
                    health["probe_error"] = f"{type(error).__name__}: {error}"
                    status_code = 503
                else:
                    health["dead_sites"] = dead_sites
                    if dead_sites:
                        health["status"] = "degraded"
                        status_code = 503
            body = (json.dumps(health, sort_keys=True) + "\n").encode("utf-8")
            self.send_response(status_code)
            self.send_header("Content-Type", "application/json; charset=utf-8")
        else:
            body = b"not found; try /metrics\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes every few seconds would spam stderr


class _ReusableHTTPServer(ThreadingHTTPServer):
    # Without SO_REUSEADDR a quick serve restart races the TIME_WAIT of
    # the previous listener and dies with EADDRINUSE on a fixed
    # --metrics-port. http.server sets allow_reuse_address on POSIX, but
    # make the requirement explicit rather than inherited.
    allow_reuse_address = True
    daemon_threads = True


class MetricsServer:
    """A ``/metrics`` endpoint on a daemon thread; stop() to stop.

    ``stop()`` is idempotent: it shuts the serve loop down, closes the
    listening socket (releasing the port for the next bind), and joins
    the serving thread, so callers can put it in a ``finally`` without
    guarding against double teardown. ``close()`` is an alias.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1", health_probe=None):
        self._http = _ReusableHTTPServer((host, port), _MetricsHandler)
        self._http.registry = registry
        self._http.started_monotonic = time.monotonic()
        #: Optional zero-arg callable returning the list of dead site
        #: ids; any non-empty result flips /healthz to 503 "degraded".
        self._http.health_probe = health_probe
        self.host = host
        self.port = self._http.server_address[1]
        self.url = f"http://{host}:{self.port}/metrics"
        self._stopped = False
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._http.shutdown()
        self._http.server_close()
        self._thread.join(timeout=5.0)

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_metrics_server(
    registry: MetricsRegistry,
    port: int = 0,
    host: str = "127.0.0.1",
    health_probe=None,
) -> MetricsServer:
    """Start serving ``registry`` at ``http://host:port/metrics``.

    ``port=0`` picks a free ephemeral port (see ``server.port``/``.url``).
    ``health_probe`` (optional zero-arg callable returning dead site
    ids) makes ``/healthz`` answer 503 with the dead-site list when the
    attached cluster has unreachable sites.
    """
    return MetricsServer(registry, port=port, host=host, health_probe=health_probe)


def scrape(url: str, timeout_s: float = 5.0) -> Dict[str, List[Tuple[dict, float]]]:
    """Fetch and parse one exposition from ``url``."""
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        body = response.read().decode("utf-8")
    return parse_prometheus_text(body)
