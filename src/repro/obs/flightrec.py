"""Crash flight recorder: a bounded ring of recent telemetry.

Every process in a socket deployment — the coordinator and each site
server — keeps a :class:`FlightRecorder`: a fixed-capacity ring buffer
of recent spans, events and faults. The ring is cheap enough to leave
always-on, and it is the only telemetry that survives a crash: piggy-
backed spans and TELEMETRY scrapes need a live peer, the flight
recorder needs only a file.

Persistence model: :meth:`FlightRecorder.dump` writes atomically
(temp file + ``os.replace``), so a dump is either the previous
complete snapshot or the new complete snapshot, never a torn write.
Site servers dump after every handled request — that is what makes a
``SIGKILL``-ed site debuggable, since no handler gets to run — and
again from a SIGTERM handler and on shutdown for the graceful paths.

File format (JSONL, one object per line):

- line 1: ``{"record": "flight", "flight_version": 1, "process": ...,
  "site_id": ..., "capacity": ..., "dropped": ..., "generator":
  "repro.obs"}``;
- following lines: ring records in arrival order, each tagged
  ``"record": "span" | "event" | "fault"`` plus a ``"t_s"`` stamp on
  the recording process's monotonic clock.

:class:`FlightRecord` loads a dump back; :meth:`FlightRecord.to_event_log`
converts one (or :func:`load_flight_dir` merges a directory of them)
into a schema-v3 :class:`~repro.obs.events.EventLog` so ``repro trace``
and :mod:`repro.obs.diff` can post-mortem a killed site with the same
tooling they use on live traces.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import deque
from typing import List, Optional

from repro.errors import ObservabilityError
from repro.obs.events import EventLog
from repro.obs.tracer import Span

__all__ = [
    "DEFAULT_CAPACITY",
    "FLIGHT_VERSION",
    "FlightRecord",
    "FlightRecorder",
    "flight_path",
    "load_flight_dir",
]

FLIGHT_VERSION = 1

#: Default ring capacity: deep enough for several queries' spans,
#: shallow enough that a per-request dump stays microseconds.
DEFAULT_CAPACITY = 512


def flight_path(directory, process: str, site_id: Optional[str] = None) -> str:
    """Canonical dump filename for one process's flight record."""
    name = f"flight-{process}.jsonl" if site_id is None else (
        f"flight-{process}-{site_id}.jsonl"
    )
    return os.path.join(str(directory), name)


class FlightRecorder:
    """Fixed-capacity ring of recent spans/events/faults; thread-safe."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        process: str = "coordinator",
        site_id: Optional[str] = None,
        clock=time.perf_counter,
    ):
        if capacity < 1:
            raise ObservabilityError(
                f"flight recorder capacity must be >= 1 (got {capacity})"
            )
        self.capacity = capacity
        self.process = process
        self.site_id = site_id
        self._clock = clock
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    # -- recording ---------------------------------------------------------------

    def record(self, record_type: str, **fields) -> dict:
        record = {"record": record_type, "t_s": self._clock(), **fields}
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
        return record

    def record_span(self, span: Span) -> dict:
        return self.record("span", **span.to_dict())

    def record_spans(self, spans) -> None:
        for span in spans:
            self.record_span(span)

    def record_event(self, name: str, **fields) -> dict:
        return self.record("event", name=name, **fields)

    def record_fault(self, **fields) -> dict:
        return self.record("fault", **fields)

    # -- snapshotting ------------------------------------------------------------

    def snapshot(self) -> List[dict]:
        with self._lock:
            return [dict(record) for record in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def header(self) -> dict:
        return {
            "record": "flight",
            "flight_version": FLIGHT_VERSION,
            "generator": "repro.obs",
            "process": self.process,
            "site_id": self.site_id,
            "capacity": self.capacity,
            "dropped": self.dropped,
        }

    def dumps(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(record, sort_keys=True) for record in self.snapshot()
        )
        return "\n".join(lines) + "\n"

    def dump(self, path) -> str:
        """Atomically write the ring to ``path``; returns the path.

        Temp-file-then-rename keeps the dump readable even if this
        process dies mid-write — the reader sees the previous complete
        snapshot instead of a torn file.
        """
        path = str(path)
        text = self.dumps()
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
        return path

    def install_signal_handler(self, path, signals=(signal.SIGTERM,)) -> None:
        """Dump the ring when one of ``signals`` arrives, then exit.

        Chains to any previously installed handler; falls back to a
        plain ``SystemExit`` so ``finally`` blocks still run. Only the
        main thread of a process can install signal handlers.
        """
        previous_handlers = {}

        def _dump_and_exit(signum, frame):
            try:
                self.record_event("signal", signum=int(signum))
                self.dump(path)
            finally:
                previous = previous_handlers.get(signum)
                if callable(previous):
                    previous(signum, frame)
                else:
                    raise SystemExit(128 + int(signum))

        for signum in signals:
            previous_handlers[signum] = signal.signal(signum, _dump_and_exit)


class FlightRecord:
    """A loaded flight-recorder dump (or a live snapshot shipped over
    the TELEMETRY frame)."""

    def __init__(
        self,
        records: List[dict],
        process: str = "coordinator",
        site_id: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
        dropped: int = 0,
    ):
        self.records = list(records)
        self.process = process
        self.site_id = site_id
        self.capacity = capacity
        self.dropped = dropped

    # -- loading -----------------------------------------------------------------

    @classmethod
    def loads(cls, text: str) -> "FlightRecord":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ObservabilityError("empty flight record: missing header line")
        records = []
        for line_number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"flight record line {line_number}: not valid JSON ({error})"
                ) from None
            if not isinstance(record, dict) or "record" not in record:
                raise ObservabilityError(
                    f"flight record line {line_number}: every record needs "
                    f"a 'record' tag"
                )
            records.append(record)
        header = records[0]
        if header.get("record") != "flight":
            raise ObservabilityError(
                "flight record line 1: first record must be the flight header"
            )
        version = header.get("flight_version")
        if version != FLIGHT_VERSION:
            raise ObservabilityError(
                f"unsupported flight record version {version!r} "
                f"(this reader understands {FLIGHT_VERSION})"
            )
        return cls(
            records[1:],
            process=header.get("process", "coordinator"),
            site_id=header.get("site_id"),
            capacity=header.get("capacity", DEFAULT_CAPACITY),
            dropped=header.get("dropped", 0),
        )

    @classmethod
    def load(cls, path) -> "FlightRecord":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())

    @classmethod
    def from_snapshot(cls, payload: dict) -> "FlightRecord":
        """Build from a TELEMETRY-frame flight section (already parsed)."""
        return cls(
            payload.get("records", []),
            process=payload.get("process", "site"),
            site_id=payload.get("site_id"),
            capacity=payload.get("capacity", DEFAULT_CAPACITY),
            dropped=payload.get("dropped", 0),
        )

    # -- writing -----------------------------------------------------------------

    def header(self) -> dict:
        return {
            "record": "flight",
            "flight_version": FLIGHT_VERSION,
            "generator": "repro.obs",
            "process": self.process,
            "site_id": self.site_id,
            "capacity": self.capacity,
            "dropped": self.dropped,
        }

    def dumps(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(record, sort_keys=True) for record in self.records
        )
        return "\n".join(lines) + "\n"

    def dump(self, path) -> str:
        path = str(path)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
        os.replace(tmp_path, path)
        return path

    # -- reading -----------------------------------------------------------------

    def records_of(self, record_type: str) -> List[dict]:
        return [
            record for record in self.records
            if record.get("record") == record_type
        ]

    def spans(self) -> List[Span]:
        spans = []
        for record in self.records_of("span"):
            payload = {
                key: value for key, value in record.items()
                if key not in ("record", "t_s")
            }
            spans.append(Span.from_dict(payload))
        return spans

    def to_event_log(self) -> EventLog:
        """A schema-v3 :class:`EventLog` view for trace tooling.

        Span records keep their fields (stamped with this record's
        process/site provenance when they lack their own); event and
        fault records pass through — unknown record types are legal
        within a schema version, so older readers skip them.
        """
        log = EventLog()
        for record in self.records:
            fields = {
                key: value for key, value in record.items() if key != "record"
            }
            emitted = log.append(record.get("record", "event"), **fields)
            if record.get("record") == "span":
                emitted.pop("t_s", None)
                emitted.setdefault(
                    "process", "site" if self.site_id is not None else self.process
                )
                if self.site_id is not None:
                    emitted.setdefault("site_id", self.site_id)
        return log


def load_flight_dir(directory) -> List[FlightRecord]:
    """Load every ``flight-*.jsonl`` dump in ``directory``, sorted by name."""
    directory = str(directory)
    try:
        entries = os.listdir(directory)
    except OSError as error:
        raise ObservabilityError(
            f"cannot read flight directory {directory}: {error}"
        ) from None
    names = sorted(
        name
        for name in entries
        if name.startswith("flight-") and name.endswith(".jsonl")
    )
    if not names:
        raise ObservabilityError(
            f"no flight records (flight-*.jsonl) in {directory}"
        )
    return [FlightRecord.load(os.path.join(directory, name)) for name in names]
