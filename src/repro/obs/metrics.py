"""Process-local metrics registry: counters, gauges, histograms.

The execution stack records its load-bearing quantities here — wire
bytes and message counts per direction and round
(:mod:`repro.net.channel`), tuples examined/emitted by the GMDJ scan
(:mod:`repro.gmdj.operator`) — so one registry snapshot answers "where
did the bytes and tuples go" for a whole run.

Metric identity is ``name`` plus an optional sorted label set, encoded
as ``name{k=v,...}``; registering the same identity with a different
metric type raises :class:`~repro.errors.ObservabilityError`. Everything
snapshots to plain dicts for the JSONL trace export
(:mod:`repro.obs.events`).

A module-level *active* registry serves instrumentation points that have
no natural parameter to thread a registry through (the GMDJ operator
functions). The default active registry is a real registry — recording
is cheap enough (an integer add per operator call) that there is no null
variant; :func:`activate` swaps it for a run-scoped registry.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Histogram boundaries for byte sizes (message/relation payloads).
BYTES_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
)

#: Histogram boundaries for durations in seconds.
SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Counter:
    """Monotonically increasing integer metric; increments are atomic.

    ``value += amount`` is not atomic in Python (read/add/write can
    interleave between threads), so increments take a per-metric lock —
    parallel site executors hit disjoint per-site counters almost
    always, making contention negligible.
    """

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": self.kind, "value": self.value}


class Gauge:
    """Last-written value metric (set/add); writes and reads are atomic.

    ``set``, ``add`` and ``snapshot`` all take the same per-metric lock:
    a ``set`` racing an ``add``'s read-modify-write would otherwise be
    silently lost (the ``add`` writes back a value computed from the
    pre-``set`` read), and a snapshot taken mid-update could observe the
    torn intermediate. This matters once many concurrent queries share
    one registry (the query service's queue-depth gauge).
    """

    kind = "gauge"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary histogram with *per-bucket* counts.

    ``boundaries`` are **inclusive** upper bounds of the non-overflow
    buckets (Prometheus ``le`` semantics: a value exactly equal to a
    boundary lands in that bucket); observations greater than the last
    boundary land in the implicit overflow bucket. ``counts`` has
    ``len(boundaries) + 1`` entries and each entry counts only its own
    bucket — use :meth:`cumulative_counts` for the cumulative
    (``le``-style) view that Prometheus exposition expects.
    """

    kind = "histogram"
    __slots__ = ("name", "boundaries", "counts", "count", "sum", "_lock")

    def __init__(self, name: str, boundaries: Sequence[float] = SECONDS_BUCKETS):
        boundaries = tuple(float(bound) for bound in boundaries)
        if not boundaries:
            raise ObservabilityError(f"histogram {name!r} needs at least one boundary")
        if list(boundaries) != sorted(boundaries):
            raise ObservabilityError(
                f"histogram {name!r} boundaries must be sorted, got {boundaries}"
            )
        self.name = name
        self.boundaries = boundaries
        self.counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for index, bound in enumerate(self.boundaries):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Counts of observations ``<=`` each boundary, plus the total.

        This is the cumulative view Prometheus ``_bucket{le=...}`` series
        carry; the last entry (the ``+Inf`` bucket) equals ``count``.
        """
        with self._lock:
            totals: List[int] = []
            running = 0
            for bucket_count in self.counts:
                running += bucket_count
                totals.append(running)
            return totals

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (linear within buckets)."""
        return histogram_quantile(self.boundaries, self.cumulative_counts(), q)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "type": self.kind,
                "boundaries": list(self.boundaries),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.sum,
            }


def histogram_quantile(
    boundaries: Sequence[float], cumulative: Sequence[int], q: float
) -> float:
    """Quantile estimate from cumulative bucket counts (Prometheus style).

    ``cumulative[i]`` is the number of observations ``<= boundaries[i]``;
    the trailing entry is the total including the overflow bucket. The
    estimate interpolates linearly inside the bucket the quantile falls
    in (lower edge 0.0 for the first bucket); a quantile landing in the
    overflow bucket clamps to the last finite boundary, mirroring
    ``histogram_quantile()`` in PromQL.
    """
    if not cumulative:
        return 0.0
    total = cumulative[-1]
    if total <= 0:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    rank = q * total
    previous_bound = 0.0
    previous_cum = 0
    for bound, cum in zip(boundaries, cumulative):
        if cum >= rank:
            in_bucket = cum - previous_cum
            if in_bucket <= 0:
                return bound
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cum
    return float(boundaries[-1])


def _metric_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    encoded = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{encoded}}}"


def _split_metric_key(key: str) -> Tuple[str, dict]:
    """Invert :func:`_metric_key`: ``name{k=v,...}`` -> name + labels."""
    if "{" not in key:
        return key, {}
    name, _, encoded = key.partition("{")
    labels = {}
    for pair in encoded.rstrip("}").split(","):
        if pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class MetricsRegistry:
    """Get-or-create home for the process's metrics (thread-safe)."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: dict, *args):
        key = _metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(key, *args)
                    self._metrics[key] = metric
                    return metric
        if not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, boundaries: Sequence[float] = SECONDS_BUCKETS, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, boundaries)

    # -- reads -------------------------------------------------------------------

    def get(self, name: str, **labels) -> Optional[object]:
        """The metric at this identity, or None if never registered."""
        return self._metrics.get(_metric_key(name, labels))

    def value_of(self, name: str, default: float = 0, **labels) -> float:
        metric = self.get(name, **labels)
        if metric is None:
            return default
        return metric.value  # counters and gauges; histograms have no .value

    def sum_matching(self, prefix: str) -> float:
        """Sum of counter/gauge values whose key starts with ``prefix``.

        ``prefix`` should include the ``{`` when summing one metric name
        across label sets (e.g. ``"net.bytes{"``), so that metric names
        sharing a prefix are not conflated.
        """
        total = 0
        for key, metric in self._metrics.items():
            if key.startswith(prefix) and isinstance(metric, (Counter, Gauge)):
                total += metric.value
        return total

    def merge_snapshot(self, snapshot: dict, **extra_labels) -> None:
        """Ingest another registry's :meth:`snapshot`, re-labeled.

        The scrape path: ``ProcessCluster.scrape()`` folds each site
        process's registry into the coordinator registry with a
        ``site=`` label. Counters adopt the source's absolute value via
        a delta increment (a source value *below* the stored one means
        the site process restarted, and passes through as a
        Prometheus-style counter reset); gauges are overwritten;
        histograms replace their bucket state wholesale.
        """
        for key, snap in snapshot.items():
            name, labels = _split_metric_key(key)
            labels.update(extra_labels)
            kind = snap.get("type")
            if kind == "counter":
                counter = self.counter(name, **labels)
                delta = snap.get("value", 0) - counter.value
                if delta < 0:
                    with counter._lock:
                        counter.value = snap.get("value", 0)
                elif delta:
                    counter.inc(delta)
            elif kind == "gauge":
                self.gauge(name, **labels).set(snap.get("value", 0.0))
            elif kind == "histogram":
                histogram = self.histogram(
                    name, snap.get("boundaries") or SECONDS_BUCKETS, **labels
                )
                with histogram._lock:
                    histogram.counts = list(snap.get("counts", ()))
                    histogram.count = snap.get("count", 0)
                    histogram.sum = snap.get("sum", 0.0)

    def snapshot(self) -> dict:
        """All metrics as plain dicts, keyed by encoded identity."""
        return {
            key: metric.snapshot() for key, metric in sorted(self._metrics.items())
        }

    def __len__(self) -> int:
        return len(self._metrics)


#: The process-local default registry (instrumentation with no threading path).
GLOBAL_REGISTRY = MetricsRegistry()

_active = GLOBAL_REGISTRY


def active_registry() -> MetricsRegistry:
    """The registry instrumentation points record into right now."""
    return _active


def set_active_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as active; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def activate(registry: MetricsRegistry):
    """Scope ``registry`` as the active registry for a ``with`` block."""
    previous = set_active_registry(registry)
    try:
        yield registry
    finally:
        set_active_registry(previous)
