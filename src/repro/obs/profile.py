"""EXPLAIN ANALYZE: per-query profiles built from a finished trace.

The paper's Section 4 argues about *where* rounds spend traffic and
time; this module makes one executed query answer that question. A
:class:`QueryProfile` is assembled from the three artifacts a traced run
already produces — the span tree (``query → round →
round.{encode,evaluate,decode,merge}``), the run's ``ExecutionStats``
snapshot, and the optimizer's plan/notes — and attributes:

- **time** per round (measured wall), per site (compute charge plus the
  site-kind operator spans), per operator (span name aggregates);
- **bytes and tuples** per round and per site, straight from the stats
  (the same numbers the channels count independently, so attribution is
  exact by construction);
- **optimization savings**: each optimization the planner applied,
  priced by ablation in :mod:`repro.distributed.costing`
  (:func:`~repro.distributed.costing.estimate_optimization_impacts`) and
  annotated with the run's measured traffic. The impact objects are
  duck-typed here so ``repro.obs`` stays import-free of the distributed
  layer.

Coverage properties make the profiler self-auditing: ``time_coverage``
is the fraction of the root query span's wall time attributed to rounds
(the acceptance bar is >= 0.95) and ``bytes_coverage`` compares
round-attributed bytes to the stats total (always 1.0 unless the trace
is inconsistent).

:func:`render_profile` prints the profile as an ASCII plan tree reusing
the :mod:`repro.obs.timeline` conventions (``<`` down transfer, ``=``
site compute, ``>`` up transfer, ``#`` coordinator merge; same second
and byte formatting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ObservabilityError
from repro.obs.timeline import _fmt_bytes, _fmt_seconds, _segment


@dataclass
class OperatorProfile:
    """One span name aggregated within a round (per site or coordinator)."""

    name: str
    kind: str
    seconds: float = 0.0
    calls: int = 0
    rows: int = 0
    bytes: int = 0

    def absorb(self, span) -> None:
        self.seconds += span.duration_s
        self.calls += 1
        self.rows += int(span.attributes.get("rows", 0) or 0)
        self.bytes += int(span.attributes.get("bytes", 0) or 0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "seconds": self.seconds,
            "calls": self.calls,
            "rows": self.rows,
            "bytes": self.bytes,
        }


@dataclass
class SiteProfile:
    """One site's share of one round."""

    site_id: str
    bytes_down: int = 0
    bytes_up: int = 0
    tuples_down: int = 0
    tuples_up: int = 0
    compute_s: float = 0.0
    retries: int = 0
    operators: List[OperatorProfile] = field(default_factory=list)

    @property
    def bytes_total(self) -> int:
        return self.bytes_down + self.bytes_up

    def to_dict(self) -> dict:
        return {
            "site_id": self.site_id,
            "bytes_down": self.bytes_down,
            "bytes_up": self.bytes_up,
            "tuples_down": self.tuples_down,
            "tuples_up": self.tuples_up,
            "compute_s": self.compute_s,
            "retries": self.retries,
            "operators": [operator.to_dict() for operator in self.operators],
        }


@dataclass
class RoundProfile:
    """One plan node: a base or MD/chain round."""

    index: int
    kind: str
    description: str = ""
    wall_s: float = 0.0
    coordinator_compute_s: float = 0.0
    excluded: List[str] = field(default_factory=list)
    sites: List[SiteProfile] = field(default_factory=list)
    coordinator_operators: List[OperatorProfile] = field(default_factory=list)
    #: Wire-codec accounting for this round (the stats round record's
    #: ``codec`` dict: measured bytes, row-codec-equivalent bytes, saving)
    #: — only present when a non-row codec was active.
    codec: Optional[dict] = None

    @property
    def bytes_down(self) -> int:
        return sum(site.bytes_down for site in self.sites)

    @property
    def bytes_up(self) -> int:
        return sum(site.bytes_up for site in self.sites)

    @property
    def bytes_total(self) -> int:
        return self.bytes_down + self.bytes_up

    @property
    def tuples_total(self) -> int:
        return sum(site.tuples_down + site.tuples_up for site in self.sites)

    def to_dict(self) -> dict:
        record = {
            "index": self.index,
            "kind": self.kind,
            "description": self.description,
            "wall_s": self.wall_s,
            "coordinator_compute_s": self.coordinator_compute_s,
            "excluded": list(self.excluded),
            "bytes_down": self.bytes_down,
            "bytes_up": self.bytes_up,
            "sites": [site.to_dict() for site in self.sites],
            "coordinator_operators": [
                operator.to_dict() for operator in self.coordinator_operators
            ],
        }
        if self.codec is not None:
            record["codec"] = dict(self.codec)
        return record


@dataclass
class QueryProfile:
    """The full EXPLAIN ANALYZE artifact for one executed query."""

    query_id: object = None
    executor: str = "serial"
    failure_mode: str = "fail_fast"
    #: Root ``query`` span duration (0.0 when the run was untraced).
    wall_s: float = 0.0
    rounds: List[RoundProfile] = field(default_factory=list)
    #: Duck-typed :class:`~repro.distributed.costing.OptimizationImpact`s.
    impacts: tuple = ()
    plan_description: str = ""
    notes: tuple = ()
    #: Ground-truth byte total from the stats snapshot.
    stats_bytes_total: int = 0
    #: Wire codec the run shipped relations with ("row" or "column").
    wire_codec: str = "row"
    #: Estimated fractional saving of the column codec for this query's
    #: shipped schema (:func:`repro.distributed.costing.estimate_column_codec_saving`);
    #: ``None`` when the caller did not price it.
    codec_estimated_saving: Optional[float] = None
    #: Merge topology the run executed with ("flat", "hierarchical:R",
    #: "chain:F") — from the stats snapshot.
    topology: str = "flat"
    #: Why the scheduler picked it (empty when the run bypassed the
    #: scheduler and the topology was fixed by the caller).
    topology_reason: str = ""
    #: Response-time saving vs the flat star predicted by the cost model,
    #: and the saving actually measured; ``None`` when unpriced.
    topology_estimated_saving_s: Optional[float] = None
    topology_measured_saving_s: Optional[float] = None
    #: Straggler speculation outcome (stats snapshot totals).
    speculative_legs: int = 0
    speculation_wins: int = 0

    # -- attribution & coverage -------------------------------------------------

    @property
    def attributed_wall_s(self) -> float:
        return sum(round_profile.wall_s for round_profile in self.rounds)

    @property
    def bytes_total(self) -> int:
        return sum(round_profile.bytes_total for round_profile in self.rounds)

    @property
    def tuples_total(self) -> int:
        return sum(round_profile.tuples_total for round_profile in self.rounds)

    @property
    def row_equiv_bytes_total(self) -> int:
        """What the row codec would have shipped, summed over rounds."""
        return sum(
            int(round_profile.codec.get("row_equiv_bytes", 0))
            for round_profile in self.rounds
            if round_profile.codec is not None
        )

    @property
    def codec_saved_bytes(self) -> int:
        return sum(
            int(round_profile.codec.get("saved_bytes", 0))
            for round_profile in self.rounds
            if round_profile.codec is not None
        )

    def codec_measured_saving(self) -> float:
        """Measured fractional saving vs the row codec (0.0 for row runs)."""
        row_equiv = self.row_equiv_bytes_total
        if row_equiv <= 0:
            return 0.0
        return self.codec_saved_bytes / row_equiv

    def time_coverage(self) -> float:
        """Fraction of traced query wall time attributed to plan nodes."""
        if self.wall_s <= 0:
            return 1.0
        return min(1.0, self.attributed_wall_s / self.wall_s)

    def bytes_coverage(self) -> float:
        """Fraction of the stats byte total attributed to plan nodes."""
        if self.stats_bytes_total <= 0:
            return 1.0
        return self.bytes_total / self.stats_bytes_total

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "executor": self.executor,
            "failure_mode": self.failure_mode,
            "wall_s": self.wall_s,
            "attributed_wall_s": self.attributed_wall_s,
            "time_coverage": self.time_coverage(),
            "bytes_total": self.bytes_total,
            "stats_bytes_total": self.stats_bytes_total,
            "bytes_coverage": self.bytes_coverage(),
            "tuples_total": self.tuples_total,
            "rounds": [round_profile.to_dict() for round_profile in self.rounds],
            "optimizations": [impact.to_dict() for impact in self.impacts],
            "plan_description": self.plan_description,
            "notes": list(self.notes),
            "wire_codec": self.wire_codec,
            "topology": self.topology,
            **(
                {
                    "topology_reason": self.topology_reason,
                    "topology_estimated_saving_s": self.topology_estimated_saving_s,
                    "topology_measured_saving_s": self.topology_measured_saving_s,
                }
                if self.topology_reason
                else {}
            ),
            **(
                {
                    "speculative_legs": self.speculative_legs,
                    "speculation_wins": self.speculation_wins,
                }
                if self.speculative_legs
                else {}
            ),
            **(
                {
                    "row_equiv_bytes_total": self.row_equiv_bytes_total,
                    "codec_saved_bytes": self.codec_saved_bytes,
                    "codec_measured_saving": self.codec_measured_saving(),
                    "codec_estimated_saving": self.codec_estimated_saving,
                }
                if self.wire_codec != "row"
                else {}
            ),
        }


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _operator_of(registry: dict, order: list, name: str, kind: str) -> OperatorProfile:
    operator = registry.get((name, kind))
    if operator is None:
        operator = OperatorProfile(name=name, kind=kind)
        registry[(name, kind)] = operator
        order.append(operator)
    return operator


def _query_span(spans, query_id):
    candidates = [span for span in spans if span.name == "query"]
    if query_id is not None:
        tagged = [
            span
            for span in candidates
            if span.attributes.get("query_id") == query_id
        ]
        if tagged:
            return tagged[0]
    return candidates[0] if candidates else None


def build_profile(
    spans,
    stats,
    impacts=(),
    plan_description: str = "",
    notes=(),
    query_id=None,
    codec_estimated_saving=None,
    topology_choice=None,
) -> QueryProfile:
    """Assemble a :class:`QueryProfile` from spans plus an execution-stats
    snapshot (an ``ExecutionStats`` or its ``to_dict()`` form).

    ``spans`` may be a live ``Tracer.spans`` list or
    ``EventLog.spans()``; span-derived operator times enrich the profile
    but the round/site byte, tuple and wall numbers come from the stats,
    so attribution stays exact even with a null tracer.

    ``topology_choice`` is a duck-typed
    :class:`~repro.distributed.scheduler.TopologyChoice` (or its
    ``to_dict()`` form): it supplies the scheduler's reason string and
    the estimated/measured response-time savings vs the flat star.
    """
    if hasattr(stats, "to_dict"):
        stats = stats.to_dict()
    if not isinstance(stats, dict) or "rounds" not in stats:
        raise ObservabilityError(
            "build_profile needs an ExecutionStats or its to_dict() snapshot"
        )
    if query_id is None:
        query_id = stats.get("query_id")

    spans = list(spans or ())
    root = _query_span(spans, query_id)
    children: dict = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    round_spans = {}
    candidates = children.get(root.span_id, spans) if root is not None else spans
    for span in candidates:
        if span.name == "round":
            round_spans[span.attributes.get("index")] = span

    profile = QueryProfile(
        query_id=query_id,
        executor=stats.get("executor", "serial"),
        failure_mode=stats.get("failure_mode", "fail_fast"),
        wall_s=root.duration_s if root is not None else 0.0,
        impacts=tuple(impacts),
        plan_description=plan_description,
        notes=tuple(notes),
        stats_bytes_total=int(stats.get("bytes_total", 0)),
        wire_codec=stats.get("wire_codec", "row"),
        codec_estimated_saving=codec_estimated_saving,
        topology=stats.get("topology", "flat"),
        speculative_legs=int(stats.get("speculative_legs", 0)),
        speculation_wins=int(stats.get("speculation_wins", 0)),
    )
    if topology_choice is not None:
        if hasattr(topology_choice, "to_dict"):
            topology_choice = topology_choice.to_dict()
        profile.topology = topology_choice.get("topology", profile.topology)
        profile.topology_reason = topology_choice.get("reason", "")
        profile.topology_estimated_saving_s = topology_choice.get(
            "estimated_saving_s"
        )
        profile.topology_measured_saving_s = topology_choice.get(
            "measured_saving_s"
        )

    for round_record in stats["rounds"]:
        round_profile = RoundProfile(
            index=round_record["index"],
            kind=round_record["kind"],
            description=round_record.get("description", ""),
            wall_s=round_record.get("wall_s", 0.0),
            coordinator_compute_s=round_record.get("coordinator_compute_s", 0.0),
            excluded=list(round_record.get("excluded", ())),
            codec=round_record.get("codec"),
        )
        site_profiles = {}
        for site_id, site_record in round_record.get("sites", {}).items():
            site_profile = SiteProfile(
                site_id=site_id,
                bytes_down=site_record.get("bytes_down", 0),
                bytes_up=site_record.get("bytes_up", 0),
                tuples_down=site_record.get("tuples_down", 0),
                tuples_up=site_record.get("tuples_up", 0),
                compute_s=site_record.get("compute_s", 0.0),
                retries=site_record.get("retries", 0),
            )
            site_profiles[site_id] = site_profile
            round_profile.sites.append(site_profile)

        round_span = round_spans.get(round_profile.index)
        if round_span is not None:
            if round_profile.wall_s <= 0:
                round_profile.wall_s = round_span.duration_s
            coordinator_registry: dict = {}
            site_registries = {site_id: {} for site_id in site_profiles}
            stack = list(children.get(round_span.span_id, ()))
            while stack:
                span = stack.pop()
                if span.attributes.get("speculative"):
                    # An abandoned speculative attempt: the backup leg
                    # re-recorded the same work, so absorbing this span
                    # (or its subtree) would double-count stage totals.
                    continue
                stack.extend(children.get(span.span_id, ()))
                site_id = span.attributes.get("site")
                if span.kind == "site" and site_id in site_profiles:
                    target = site_profiles[site_id]
                    operator = _operator_of(
                        site_registries[site_id],
                        target.operators,
                        span.name,
                        span.kind,
                    )
                else:
                    operator = _operator_of(
                        coordinator_registry,
                        round_profile.coordinator_operators,
                        span.name,
                        span.kind,
                    )
                operator.absorb(span)
            for operators in [round_profile.coordinator_operators] + [
                site.operators for site in round_profile.sites
            ]:
                operators.sort(key=lambda operator: -operator.seconds)
        profile.rounds.append(round_profile)

    if profile.wall_s <= 0:
        profile.wall_s = profile.attributed_wall_s
    return profile


def profile_from_trace(log, query_id=None) -> QueryProfile:
    """Rebuild a profile from a JSONL trace (:class:`~repro.obs.events.EventLog`).

    With ``query_id`` the log is first filtered to that query's records
    (schema v2); the log must hold a matching ``stats`` record.
    """
    if query_id is not None:
        log = log.for_query(query_id)
    stats_records = log.records_of("stats")
    if not stats_records:
        raise ObservabilityError(
            "trace has no stats record"
            + (f" for query_id {query_id!r}" if query_id is not None else "")
            + "; profiles need the run's ExecutionStats snapshot"
        )
    plan_description = ""
    notes: tuple = ()
    plan_records = log.records_of("plan")
    if plan_records:
        plan_description = plan_records[-1].get("describe", "")
        notes = tuple(plan_records[-1].get("notes", ()))
    return build_profile(
        log.spans(),
        stats_records[-1],
        plan_description=plan_description,
        notes=notes,
        query_id=query_id,
    )


# ---------------------------------------------------------------------------
# Aggregation over profile dicts (used by ``repro diff``)
# ---------------------------------------------------------------------------


def _profile_dict(profile) -> dict:
    """Accept a :class:`QueryProfile` or its ``to_dict()`` form."""
    if hasattr(profile, "to_dict"):
        profile = profile.to_dict()
    if not isinstance(profile, dict) or "rounds" not in profile:
        raise ObservabilityError(
            "expected a QueryProfile or its to_dict() snapshot"
        )
    return profile


def round_totals(profile) -> dict:
    """``{"round 0 [base]": {"wall_s", "bytes", "tuples"}, ...}``."""
    totals: dict = {}
    for round_record in _profile_dict(profile)["rounds"]:
        key = f"round {round_record['index']} [{round_record['kind']}]"
        sites = round_record.get("sites", ())
        totals[key] = {
            "wall_s": round_record.get("wall_s", 0.0),
            "bytes": round_record.get("bytes_down", 0)
            + round_record.get("bytes_up", 0),
            "tuples": sum(
                site.get("tuples_down", 0) + site.get("tuples_up", 0)
                for site in sites
            ),
        }
    return totals


def site_totals(profile) -> dict:
    """Per-site compute/bytes/tuples summed across all rounds."""
    totals: dict = {}
    for round_record in _profile_dict(profile)["rounds"]:
        for site in round_record.get("sites", ()):
            entry = totals.setdefault(
                site["site_id"],
                {"compute_s": 0.0, "bytes": 0, "tuples": 0, "retries": 0},
            )
            entry["compute_s"] += site.get("compute_s", 0.0)
            entry["bytes"] += site.get("bytes_down", 0) + site.get("bytes_up", 0)
            entry["tuples"] += site.get("tuples_down", 0) + site.get(
                "tuples_up", 0
            )
            entry["retries"] += site.get("retries", 0)
    return totals


def operator_totals(profile) -> dict:
    """Span-name aggregates across all rounds, keyed ``"name [kind]"``."""
    totals: dict = {}

    def _absorb(operator_record: dict) -> None:
        key = f"{operator_record['name']} [{operator_record['kind']}]"
        entry = totals.setdefault(
            key, {"seconds": 0.0, "calls": 0, "rows": 0, "bytes": 0}
        )
        entry["seconds"] += operator_record.get("seconds", 0.0)
        entry["calls"] += operator_record.get("calls", 0)
        entry["rows"] += operator_record.get("rows", 0)
        entry["bytes"] += operator_record.get("bytes", 0)

    for round_record in _profile_dict(profile)["rounds"]:
        for operator_record in round_record.get("coordinator_operators", ()):
            _absorb(operator_record)
        for site in round_record.get("sites", ()):
            for operator_record in site.get("operators", ()):
                _absorb(operator_record)
    return totals


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _format_operators(operators, limit: int = 4) -> str:
    parts = []
    for operator in operators[:limit]:
        part = f"{operator.name} {_fmt_seconds(operator.seconds)} x{operator.calls}"
        if operator.rows:
            part += f" rows={operator.rows}"
        parts.append(part)
    if len(operators) > limit:
        parts.append(f"+{len(operators) - limit} more")
    return "; ".join(parts)


def render_profile(profile: QueryProfile, width: int = 48) -> str:
    """The ASCII plan tree, timeline-style bars included.

    Bar legend matches :func:`~repro.obs.timeline.render_timeline`:
    ``<`` down transfer (here: measured site compute shares the round
    budget, so bars scale site ``compute_s`` against the slowest site),
    ``=`` site compute, ``#`` coordinator compute.
    """
    lines = [
        f"EXPLAIN ANALYZE — {len(profile.rounds)} round(s), "
        f"executor={profile.executor}, failure_mode={profile.failure_mode}"
        + (f", query_id={profile.query_id}" if profile.query_id is not None else "")
    ]
    lines.append(
        f"wall {_fmt_seconds(profile.wall_s)}; attributed to plan nodes "
        f"{_fmt_seconds(profile.attributed_wall_s)} "
        f"({profile.time_coverage() * 100:.1f}% of traced wall); "
        f"bytes {_fmt_bytes(profile.bytes_total)} of "
        f"{_fmt_bytes(profile.stats_bytes_total)} "
        f"({profile.bytes_coverage() * 100:.1f}%)"
    )
    if profile.wire_codec != "row":
        codec_line = (
            f"wire codec [{profile.wire_codec}]: measured saving "
            f"{_fmt_bytes(profile.codec_saved_bytes)} of "
            f"{_fmt_bytes(profile.row_equiv_bytes_total)} row-codec bytes "
            f"({profile.codec_measured_saving() * 100:.1f}%)"
        )
        if profile.codec_estimated_saving is not None:
            codec_line += (
                f"; estimated {profile.codec_estimated_saving * 100:.1f}%"
            )
        lines.append(codec_line)
    if profile.topology != "flat" or profile.topology_reason:
        topology_line = f"merge topology [{profile.topology}]"
        if (
            profile.topology != "flat"
            and profile.topology_estimated_saving_s is not None
        ):
            topology_line += (
                f": estimated saving vs flat "
                f"{_fmt_seconds(profile.topology_estimated_saving_s)}"
            )
            if profile.topology_measured_saving_s is not None:
                topology_line += (
                    f", measured {_fmt_seconds(profile.topology_measured_saving_s)}"
                )
        if profile.topology_reason:
            topology_line += f" — {profile.topology_reason}"
        lines.append(topology_line)
    if profile.speculative_legs:
        lines.append(
            f"speculation: {profile.speculative_legs} leg(s) re-executed, "
            f"{profile.speculation_wins} backup win(s)"
        )
    longest = max(
        [site.compute_s for round_profile in profile.rounds
         for site in round_profile.sites]
        + [round_profile.coordinator_compute_s for round_profile in profile.rounds]
        + [0.0]
    )
    scale = (width / longest) if longest > 0 else 0.0

    for round_profile in profile.rounds:
        header = (
            f"+- round {round_profile.index} [{round_profile.kind}] "
            f"{round_profile.description}".rstrip()
        )
        header += (
            f"  wall={_fmt_seconds(round_profile.wall_s)} "
            f"down={_fmt_bytes(round_profile.bytes_down)} "
            f"up={_fmt_bytes(round_profile.bytes_up)}"
        )
        if round_profile.codec is not None:
            header += (
                f" codec_saved={_fmt_bytes(int(round_profile.codec.get('saved_bytes', 0)))}"
            )
        if round_profile.excluded:
            header += f" EXCLUDED={','.join(round_profile.excluded)}"
        lines.append(header)
        label_width = max(
            [len("merge")] + [len(site.site_id) for site in round_profile.sites]
        )
        for site in round_profile.sites:
            bar = _segment("=", site.compute_s, scale)
            lines.append(
                f"|  +- {site.site_id.ljust(label_width)}  {bar.ljust(width)}  "
                f"compute={_fmt_seconds(site.compute_s)} "
                f"down={_fmt_bytes(site.bytes_down)} "
                f"up={_fmt_bytes(site.bytes_up)} "
                f"tuples={site.tuples_down + site.tuples_up}"
                + (f" retries={site.retries}" if site.retries else "")
            )
            if site.operators:
                lines.append(
                    f"|  |     {_format_operators(site.operators)}"
                )
        merge_bar = _segment("#", round_profile.coordinator_compute_s, scale)
        lines.append(
            f"|  +- {'merge'.ljust(label_width)}  {merge_bar.ljust(width)}  "
            f"coordinator={_fmt_seconds(round_profile.coordinator_compute_s)}"
        )
        if round_profile.coordinator_operators:
            lines.append(
                f"|        {_format_operators(round_profile.coordinator_operators)}"
            )

    if profile.impacts:
        lines.append("optimizations (measured vs unoptimized estimate):")
        for impact in profile.impacts:
            entry = (
                f"  - {impact.name}: {impact.description} — "
                f"estimated {impact.estimated_without_tuples:.0f} tuples without"
            )
            if impact.measured_tuples is not None:
                entry += f", measured {impact.measured_tuples:.0f} with"
            else:
                entry += f", estimated {impact.estimated_with_tuples:.0f} with"
            entry += f" (saved {impact.saving_fraction * 100:.1f}%)"
            lines.append(entry)
    if profile.notes:
        lines.append("optimizer notes:")
        for note in profile.notes:
            lines.append(f"  - {note}")
    if profile.plan_description:
        lines.append("plan:")
        for plan_line in profile.plan_description.splitlines():
            lines.append(f"  {plan_line}")
    return "\n".join(lines)
