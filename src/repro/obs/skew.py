"""Clock-skew estimation and cross-process span alignment.

Site-server processes timestamp their spans with their own
``time.perf_counter`` — a monotonic clock whose zero point is arbitrary
per process, so shipped site spans land in a different clock domain
than the coordinator's tracer. This module provides the two halves of
the fix:

- **Estimation**: an NTP-style four-timestamp exchange over the
  transport's PING frame (:func:`estimate_offset`), collected per site
  into a :class:`ClockMap` that keeps the minimum-RTT sample (the one
  with the least queueing noise, hence the tightest error bound of
  ``±rtt/2``).
- **Alignment**: :func:`align_span` shifts a site span's timestamps
  into the coordinator domain and clamps them into the enclosing
  coordinator span's bounds, so the merged timeline never shows a
  negative duration or a child starting before its parent — the
  residual skew after correction is bounded by the RTT, and clamping
  absorbs it rather than letting it invert the render.

Convention: ``offset_s`` is *site clock minus coordinator clock*; a
site timestamp ``t`` maps to coordinator time ``t - offset_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import ObservabilityError

__all__ = [
    "ClockMap",
    "ClockSample",
    "align_span",
    "estimate_offset",
]


@dataclass(frozen=True)
class ClockSample:
    """One NTP-style offset/RTT estimate for a remote clock.

    ``offset_s`` maps the remote clock into the local one
    (``local = remote - offset_s``); ``rtt_s`` bounds the estimation
    error at ``±rtt_s / 2``.
    """

    offset_s: float
    rtt_s: float

    def __post_init__(self):
        if self.rtt_s < 0:
            raise ObservabilityError(
                f"clock sample RTT cannot be negative (got {self.rtt_s})"
            )

    @property
    def error_bound_s(self) -> float:
        return self.rtt_s / 2.0

    def to_dict(self) -> dict:
        return {"offset_s": self.offset_s, "rtt_s": self.rtt_s}

    @classmethod
    def from_dict(cls, data: dict) -> "ClockSample":
        return cls(offset_s=float(data["offset_s"]), rtt_s=float(data["rtt_s"]))


def estimate_offset(t0: float, t1: float, t2: float, t3: float) -> ClockSample:
    """The classic NTP estimate from one request/response exchange.

    ``t0``/``t3`` are local send/receive times; ``t1``/``t2`` are the
    remote receive/send times (remote clock). Assuming symmetric path
    delay, ``offset = ((t1 - t0) + (t2 - t3)) / 2`` and
    ``rtt = (t3 - t0) - (t2 - t1)``.
    """
    if t3 < t0:
        raise ObservabilityError(
            f"local receive time {t3} precedes send time {t0}"
        )
    if t2 < t1:
        raise ObservabilityError(
            f"remote send time {t2} precedes receive time {t1}"
        )
    offset = ((t1 - t0) + (t2 - t3)) / 2.0
    rtt = (t3 - t0) - (t2 - t1)
    return ClockSample(offset_s=offset, rtt_s=max(rtt, 0.0))


@dataclass
class ClockMap:
    """Best-known clock sample per site, keyed by site id.

    :meth:`record` keeps whichever of the stored and offered samples
    has the lower RTT, so repeated syncs only ever tighten the map.
    """

    samples: Dict[str, ClockSample] = field(default_factory=dict)

    def record(self, site_id: str, sample: ClockSample) -> ClockSample:
        current = self.samples.get(site_id)
        if current is None or sample.rtt_s < current.rtt_s:
            self.samples[site_id] = sample
            return sample
        return current

    def offset_of(self, site_id: Optional[str]) -> float:
        """The correction for ``site_id``; 0 for unknown/unsynced sites."""
        if site_id is None:
            return 0.0
        sample = self.samples.get(site_id)
        return sample.offset_s if sample is not None else 0.0

    def sample_of(self, site_id: str) -> Optional[ClockSample]:
        return self.samples.get(site_id)

    def __len__(self) -> int:
        return len(self.samples)

    def __contains__(self, site_id: str) -> bool:
        return site_id in self.samples

    def sites(self) -> Iterable[str]:
        return sorted(self.samples)

    def to_dict(self) -> dict:
        return {
            site_id: sample.to_dict()
            for site_id, sample in sorted(self.samples.items())
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClockMap":
        return cls(
            samples={
                str(site_id): ClockSample.from_dict(sample)
                for site_id, sample in data.items()
            }
        )


def align_span(
    start_s: float,
    end_s: float,
    offset_s: float,
    parent_start_s: Optional[float] = None,
    parent_end_s: Optional[float] = None,
):
    """Shift a remote span into the local clock domain and clamp it.

    Returns ``(start_s, end_s)`` after subtracting ``offset_s`` and
    clamping into ``[parent_start_s, parent_end_s]`` where those bounds
    are given. Clamping preserves the span's duration when it fits
    inside the parent window and truncates it otherwise, so the two
    render invariants hold unconditionally: ``end >= start`` (no
    negative durations) and child-within-parent.
    """
    if end_s < start_s:
        raise ObservabilityError(
            f"span ends before it starts: start={start_s} end={end_s}"
        )
    start = start_s - offset_s
    end = end_s - offset_s
    duration = end - start
    if parent_start_s is not None and start < parent_start_s:
        start = parent_start_s
        end = start + duration
    if parent_end_s is not None and end > parent_end_s:
        end = parent_end_s
        if start > end:
            start = end
    return start, end
