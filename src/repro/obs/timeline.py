"""ASCII per-round timeline of one distributed evaluation.

Renders an :class:`~repro.distributed.stats.ExecutionStats` (duck-typed;
this module imports nothing from the distributed layer) as rows of
rounds: one bar per site scaled to ``down_xfer + compute + up_xfer``
(transfers priced by a :class:`~repro.net.costmodel.CostModel`), with
the coordinator merge appended as its own bar, plus a totals footer that
agrees with the stats object to the digit — the footer *is* printed from
the same fields the benchmarks report.

Bar legend: ``<`` down transfer, ``=`` site compute, ``>`` up transfer,
``#`` coordinator compute/merge.
"""

from __future__ import annotations

from repro.net.costmodel import CostModel, WAN


def _segment(chars: str, seconds: float, scale: float) -> str:
    if seconds <= 0:
        return ""
    return chars * max(1, round(seconds * scale))


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:.6f}s"


def _fmt_bytes(count: int) -> str:
    return f"{count}B"


def timeline_totals(stats, model: CostModel = WAN) -> dict:
    """The footer numbers, straight from ``ExecutionStats`` accessors."""
    breakdown = stats.breakdown(model)
    return {
        "rounds": stats.round_count,
        "bytes_total": stats.bytes_total,
        "bytes_down": stats.bytes_down,
        "bytes_up": stats.bytes_up,
        "tuples_total": stats.tuples_total,
        "site_compute_s": stats.site_compute_s(),
        "coordinator_compute_s": stats.coordinator_compute_s(),
        "communication_s": breakdown["communication_s"],
        "total_s": breakdown["total_s"],
    }


def render_timeline(stats, model: CostModel = WAN, width: int = 48) -> str:
    """The full timeline: one block per round, then the totals footer."""
    rows = []  # (round, [(site_id, down_s, compute_s, up_s)], merge_s)
    longest = 0.0
    for round_stats in stats.rounds:
        site_rows = []
        for site_id in sorted(round_stats.sites):
            site = round_stats.sites[site_id]
            down_s = model.transfer_time(site.bytes_down) if site.bytes_down else 0.0
            up_s = model.transfer_time(site.bytes_up) if site.bytes_up else 0.0
            site_rows.append((site_id, down_s, site.compute_s, up_s))
            longest = max(longest, down_s + site.compute_s + up_s)
        longest = max(longest, round_stats.coordinator_compute_s)
        rows.append((round_stats, site_rows))

    scale = (width / longest) if longest > 0 else 0.0
    label_width = max(
        [len("merge")]
        + [len(site_id) for round_stats, site_rows in rows for site_id, *_ in site_rows]
    )

    lines = [
        "per-round timeline "
        f"(model: latency={model.latency_s}s, "
        f"bandwidth={model.bandwidth_bytes_per_s:.0f}B/s; "
        "bar: <down =compute >up #merge)"
    ]
    for round_stats, site_rows in rows:
        lines.append(
            f"round {round_stats.index} [{round_stats.kind}] "
            f"{round_stats.description}".rstrip()
        )
        for site_id, down_s, compute_s, up_s in site_rows:
            bar = (
                _segment("<", down_s, scale)
                + _segment("=", compute_s, scale)
                + _segment(">", up_s, scale)
            )
            total_s = down_s + compute_s + up_s
            site = round_stats.sites[site_id]
            lines.append(
                f"  {site_id.ljust(label_width)}  {bar.ljust(width)}  "
                f"{_fmt_seconds(total_s)}  "
                f"down={_fmt_bytes(site.bytes_down)} "
                f"compute={_fmt_seconds(site.compute_s)} "
                f"up={_fmt_bytes(site.bytes_up)}"
            )
        merge_s = round_stats.coordinator_compute_s
        lines.append(
            f"  {'merge'.ljust(label_width)}  "
            f"{_segment('#', merge_s, scale).ljust(width)}  "
            f"{_fmt_seconds(merge_s)}"
        )

    totals = timeline_totals(stats, model)
    lines.append(
        f"totals: rounds={totals['rounds']} "
        f"bytes={totals['bytes_total']} "
        f"(down={totals['bytes_down']} up={totals['bytes_up']}) "
        f"tuples={totals['tuples_total']}"
    )
    lines.append(
        f"        site_compute={_fmt_seconds(totals['site_compute_s'])} "
        f"coordinator_compute={_fmt_seconds(totals['coordinator_compute_s'])} "
        f"modeled_communication={_fmt_seconds(totals['communication_s'])} "
        f"total={_fmt_seconds(totals['total_s'])}"
    )
    return "\n".join(lines)
