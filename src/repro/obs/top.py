"""`repro top`: a terminal dashboard over the /metrics endpoint.

Polls a Prometheus exposition produced by
:class:`~repro.obs.export.MetricsServer` (normally ``repro serve
--metrics-port``) and renders the query service's operational state:
in-flight and queued queries, cache hit ratio, admission
rejections/timeouts, per-site wire bytes, latency histogram quantiles
(p50/p90/p99 reconstructed from the cumulative ``le`` buckets), and a
query-lifecycle panel: per-stage (admission/lookup/plan/execute/merge)
quantiles from ``service.stage_s{stage=...}`` plus per-outcome
submission counts from ``service.latency_by_outcome_s{outcome=...}``.
Pure consumer: everything here works from the parsed samples alone, so
it can watch any process exposing the same metric names.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.obs.export import scrape
from repro.obs.metrics import histogram_quantile
from repro.obs.timeline import _fmt_bytes

#: Quantiles the dashboard (and the bench baseline) report.
QUANTILES: Tuple[Tuple[float, str], ...] = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))

Samples = Dict[str, List[Tuple[dict, float]]]


def _total(samples: Samples, name: str, **match) -> float:
    total = 0.0
    for labels, value in samples.get(name, ()):
        if all(labels.get(key) == str(wanted) for key, wanted in match.items()):
            total += value
    return total


def _histogram_series(samples: Samples, family: str, **match):
    """Rebuild (boundaries, cumulative, count, sum) from bucket samples.

    With ``match`` keywords only bucket/count/sum samples carrying those
    exact label values contribute — that is how one ``stage=`` series is
    pulled out of the multi-series ``service_stage_s`` family. Without
    ``match`` every series in the family is summed (label-blind), which
    is what the single-series ``service_latency_s`` panel relies on.
    """
    buckets: Dict[float, float] = {}
    for labels, value in samples.get(f"{family}_bucket", ()):
        le = labels.get("le")
        if le is None:
            continue
        if not all(labels.get(key) == str(want) for key, want in match.items()):
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        buckets[bound] = buckets.get(bound, 0.0) + value
    if not buckets:
        return None
    boundaries = sorted(bound for bound in buckets if bound != float("inf"))
    cumulative = [int(buckets[bound]) for bound in boundaries]
    count = int(_total(samples, f"{family}_count", **match))
    cumulative.append(count)
    return boundaries, cumulative, count, _total(samples, f"{family}_sum", **match)


def latency_quantiles_ms(
    samples: Samples, family: str = "service_latency_s", **match
) -> dict:
    """p50/p90/p99 (+mean, count) in milliseconds from the exposition."""
    series = _histogram_series(samples, family, **match)
    if series is None:
        return {}
    boundaries, cumulative, count, total_s = series
    quantiles = {
        label: histogram_quantile(boundaries, cumulative, q) * 1000.0
        for q, label in QUANTILES
    }
    quantiles["mean"] = (total_s / count) * 1000.0 if count else 0.0
    quantiles["count"] = count
    return quantiles


def _label_values(samples: Samples, name: str, label: str) -> List[str]:
    values = {
        labels[label]
        for labels, _value in samples.get(name, ())
        if label in labels
    }
    return sorted(values)


def stage_quantiles_ms(samples: Samples) -> dict:
    """Per-lifecycle-stage quantiles from ``service.stage_s{stage=...}``.

    Returns ``{stage: {p50, p90, p99, mean, count}}`` (milliseconds) for
    every stage label observed in the exposition, in the service's
    canonical admission→merge order with unknown stages appended.
    """
    observed = _label_values(samples, "service_stage_s_count", "stage")
    canonical = ("admission", "lookup", "plan", "execute", "merge")
    ordered = [stage for stage in canonical if stage in observed]
    ordered += [stage for stage in observed if stage not in canonical]
    per_stage = {}
    for stage in ordered:
        quantiles = latency_quantiles_ms(samples, "service_stage_s", stage=stage)
        if quantiles:
            per_stage[stage] = quantiles
    return per_stage


def outcome_counts(samples: Samples) -> dict:
    """``{outcome: submissions}`` from ``service.latency_by_outcome_s``."""
    per_outcome = {}
    for labels, value in samples.get("service_latency_by_outcome_s_count", ()):
        outcome = labels.get("outcome")
        if outcome is None:
            continue
        per_outcome[outcome] = per_outcome.get(outcome, 0) + int(value)
    return per_outcome


def site_bytes(samples: Samples) -> dict:
    """``{site: {"down": bytes, "up": bytes}}`` from net_bytes_total."""
    per_site: dict = {}
    for labels, value in samples.get("net_bytes_total", ()):
        site = labels.get("site")
        direction = labels.get("direction")
        if site is None or direction not in ("down", "up"):
            continue
        entry = per_site.setdefault(site, {"down": 0, "up": 0})
        entry[direction] += int(value)
    return per_site


def socket_stats(samples: Samples) -> dict:
    """Per-connection socket transport counters, when deployed over TCP.

    Reads the ``net.socket.*`` families the
    :class:`~repro.net.socket_channel.SocketChannel` maintains. Empty
    dict when the process runs the in-memory transport — the dashboard
    only shows the panel for socket deployments.
    """
    per_site: dict = {}

    def entry(site: str) -> dict:
        return per_site.setdefault(
            site,
            {"down": 0, "up": 0, "framing": 0, "frames": 0, "reconnects": 0},
        )

    for labels, value in samples.get("net_socket_bytes_total", ()):
        site, direction = labels.get("site"), labels.get("direction")
        if site is None or direction not in ("down", "up"):
            continue
        entry(site)[direction] += int(value)
    for labels, value in samples.get("net_socket_framing_bytes_total", ()):
        if labels.get("site") is not None:
            entry(labels["site"])["framing"] += int(value)
    for labels, value in samples.get("net_socket_frames_total", ()):
        if labels.get("site") is not None:
            entry(labels["site"])["frames"] += int(value)
    for labels, value in samples.get("net_socket_reconnects_total", ()):
        if labels.get("site") is not None:
            entry(labels["site"])["reconnects"] += int(value)
    return per_site


def cluster_sites(samples: Samples) -> dict:
    """Per-site telemetry from a cluster scrape (``site_*`` families).

    Reads the families :meth:`repro.distributed.deployment.ProcessCluster.scrape`
    aggregates out of each siteserver's own registry — liveness
    (``site_up``/``site_pid``), request/row/byte counters, queue depth,
    RSS — keyed by the ``site=`` label. Counters use ``max`` rather than
    ``+=`` so a family that appears twice in one exposition (merged
    counter plus reply-piggyback gauge share a sample name) is not
    double-counted. Empty dict when the exposition has no site families,
    which is how the dashboard decides whether to show the panel.
    """
    per_site: dict = {}

    def entry(site: str) -> dict:
        return per_site.setdefault(
            site,
            {
                "up": None,
                "pid": None,
                "requests": 0,
                "errors": 0,
                "rows": 0,
                "down": 0,
                "up_bytes": 0,
                "queue_depth": 0,
                "rss_bytes": 0,
                "request_ms": {},
            },
        )

    simple = (
        ("site_up", "up"),
        ("site_pid", "pid"),
        ("site_requests_total", "requests"),
        ("site_errors_total", "errors"),
        ("site_rows_total", "rows"),
        ("site_queue_depth", "queue_depth"),
        ("site_rss_bytes", "rss_bytes"),
    )
    for family, field in simple:
        for labels, value in samples.get(family, ()):
            site = labels.get("site")
            if site is None:
                continue
            current = entry(site)[field]
            entry(site)[field] = max(current or 0, int(value))
    for labels, value in samples.get("site_bytes_total", ()):
        site, direction = labels.get("site"), labels.get("direction")
        if site is None or direction not in ("down", "up"):
            continue
        field = "down" if direction == "down" else "up_bytes"
        entry(site)[field] = max(entry(site)[field], int(value))
    for site in per_site:
        per_site[site]["request_ms"] = latency_quantiles_ms(
            samples, "site_request_seconds", site=site
        )
        if per_site[site]["up"] is not None:
            per_site[site]["up"] = bool(per_site[site]["up"])
    return per_site


def summarize(samples: Samples) -> dict:
    """One dashboard frame's numbers, from one scrape."""
    hits = _total(samples, "service_cache_hit_total")
    misses = _total(samples, "service_cache_miss_total")
    lookups = hits + misses
    return {
        "in_flight": _total(samples, "service_in_flight"),
        "queue_depth": _total(samples, "service_queue_depth"),
        "queries": _total(samples, "service_queries_total"),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_refreshes": _total(samples, "service_cache_refresh_total"),
        "hit_ratio": (hits / lookups) if lookups else 0.0,
        "rejected": _total(samples, "service_admission_rejected_total"),
        "timeouts": _total(samples, "service_admission_timeout_total"),
        "appends": _total(samples, "service_appends_total"),
        "latency_ms": latency_quantiles_ms(samples),
        "stages_ms": stage_quantiles_ms(samples),
        "outcomes": outcome_counts(samples),
        "site_bytes": site_bytes(samples),
        "socket": socket_stats(samples),
        "cluster": cluster_sites(samples),
    }


def render_top(summary: dict, url: str = "", iteration: Optional[int] = None) -> str:
    """Render one frame of the dashboard as plain text."""
    title = "repro top"
    if url:
        title += f" — {url}"
    if iteration is not None:
        title += f" (frame {iteration})"
    lines = [title]
    lines.append(
        f"service: in_flight={summary['in_flight']:.0f} "
        f"queued={summary['queue_depth']:.0f} | "
        f"queries={summary['queries']:.0f} "
        f"cache_hit={summary['hit_ratio'] * 100:.1f}% "
        f"({summary['cache_hits']:.0f}/{summary['cache_hits'] + summary['cache_misses']:.0f}) "
        f"refreshes={summary['cache_refreshes']:.0f} | "
        f"rejected={summary['rejected']:.0f} "
        f"timeouts={summary['timeouts']:.0f} "
        f"appends={summary['appends']:.0f}"
    )
    latency = summary["latency_ms"]
    if latency:
        lines.append(
            f"latency: p50={latency['p50']:.1f}ms p90={latency['p90']:.1f}ms "
            f"p99={latency['p99']:.1f}ms mean={latency['mean']:.1f}ms "
            f"n={latency['count']}"
        )
    else:
        lines.append("latency: (no service.latency_s samples yet)")
    stages = summary.get("stages_ms", {})
    if stages:
        lines.append("stages:")
        label_width = max(len(stage) for stage in stages)
        for stage, quantiles in stages.items():
            lines.append(
                f"  {stage.ljust(label_width)}  "
                f"p50={quantiles['p50']:.1f}ms p90={quantiles['p90']:.1f}ms "
                f"p99={quantiles['p99']:.1f}ms n={quantiles['count']}"
            )
    else:
        lines.append("stages: (no service.stage_s samples yet)")
    outcomes = summary.get("outcomes", {})
    if outcomes:
        lines.append(
            "outcomes: "
            + " ".join(
                f"{outcome}={count}" for outcome, count in sorted(outcomes.items())
            )
        )
    per_site = summary["site_bytes"]
    if per_site:
        lines.append("site bytes:")
        label_width = max(len(site) for site in per_site)
        for site in sorted(per_site):
            entry = per_site[site]
            lines.append(
                f"  {site.ljust(label_width)}  "
                f"down={_fmt_bytes(entry['down'])} up={_fmt_bytes(entry['up'])} "
                f"total={_fmt_bytes(entry['down'] + entry['up'])}"
            )
    else:
        lines.append("site bytes: (no net.bytes samples yet)")
    per_socket = summary.get("socket") or {}
    if per_socket:
        lines.append("socket transport:")
        label_width = max(len(site) for site in per_socket)
        for site in sorted(per_socket):
            entry = per_socket[site]
            lines.append(
                f"  {site.ljust(label_width)}  "
                f"down={_fmt_bytes(entry['down'])} up={_fmt_bytes(entry['up'])} "
                f"framing=+{_fmt_bytes(entry['framing'])} "
                f"frames={entry['frames']} reconnects={entry['reconnects']}"
            )
    cluster = summary.get("cluster") or {}
    if cluster:
        lines.append("cluster sites:")
        label_width = max(len(site) for site in cluster)
        for site in sorted(cluster):
            entry = cluster[site]
            if entry["up"] is None:
                state = "?"
            else:
                state = "up" if entry["up"] else "DOWN"
            parts = [
                f"  {site.ljust(label_width)}  {state:<4}",
                f"pid={entry['pid'] or '-'}",
                f"req={entry['requests']}",
                f"err={entry['errors']}",
                f"rows={entry['rows']}",
                f"down={_fmt_bytes(entry['down'])}",
                f"up={_fmt_bytes(entry['up_bytes'])}",
                f"queue={entry['queue_depth']}",
                f"rss={_fmt_bytes(entry['rss_bytes'])}",
            ]
            request_ms = entry.get("request_ms") or {}
            if request_ms:
                parts.append(
                    f"p50={request_ms['p50']:.1f}ms p99={request_ms['p99']:.1f}ms"
                )
            lines.append(" ".join(parts))
    return "\n".join(lines)


def top_loop(
    url: str,
    interval_s: float = 2.0,
    iterations: int = 0,
    out=None,
    sleep=time.sleep,
) -> int:
    """Poll + render until ``iterations`` frames (0 = until interrupted).

    Returns 0 when at least one scrape succeeded, 1 when the endpoint
    never answered. An unreachable endpoint mid-run prints a notice and
    keeps polling (the service may still be starting).
    """
    import sys

    if out is None:
        out = sys.stdout
    frame = 0
    succeeded = False
    try:
        while True:
            frame += 1
            try:
                samples = scrape(url)
            except OSError as error:
                print(f"repro top — {url} unreachable: {error}", file=out)
            else:
                succeeded = True
                print(render_top(summarize(samples), url, frame), file=out)
            if iterations and frame >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0 if succeeded else 1


def cluster_top_loop(
    scrape_samples,
    label: str = "cluster",
    interval_s: float = 2.0,
    iterations: int = 0,
    out=None,
    sleep=time.sleep,
) -> int:
    """Like :func:`top_loop`, but over a cluster scrape callable.

    ``scrape_samples`` is a zero-arg callable returning parsed samples
    (``repro top --cluster`` wires it to ``ProcessCluster.scrape()``
    rendered through the exposition round trip, so the panel sees
    exactly what a Prometheus server would). A scrape that raises
    :class:`OSError`/:class:`~repro.errors.ReproError` prints a notice
    and keeps polling, matching :func:`top_loop` semantics.
    """
    import sys

    from repro.errors import ReproError

    if out is None:
        out = sys.stdout
    frame = 0
    succeeded = False
    try:
        while True:
            frame += 1
            try:
                samples = scrape_samples()
            except (OSError, ReproError) as error:
                print(f"repro top — {label} unreachable: {error}", file=out)
            else:
                succeeded = True
                print(render_top(summarize(samples), label, frame), file=out)
            if iterations and frame >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0 if succeeded else 1
