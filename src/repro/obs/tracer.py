"""Zero-dependency span tracer for Alg. GMDJDistribEval.

The evaluator, coordinator, cluster and channels are instrumented with
*spans*: named intervals on the process-local monotonic clock, nested by
a parent pointer, carrying free-form attributes (site id, round index,
byte counts...). The span taxonomy mirrors the algorithm::

    query
    └── round                 one per entry in ExecutionStats.rounds
        ├── round.encode      building wire messages (coordinator or site)
        ├── round.evaluate    a site's local GMDJ evaluation
        ├── round.decode      decoding an incoming relation payload
        └── round.merge       the coordinator's Theorem-1 merge

Tracing is opt-in. The default :data:`NULL_TRACER` satisfies the same
interface with a shared, stateless context manager, so the hot path pays
one attribute lookup and one no-op call when tracing is off — nothing is
allocated and no clock is read.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Span:
    """One named interval, nested via ``parent_id``.

    ``start_s``/``end_s`` are monotonic (``time.perf_counter``) seconds;
    they order and measure spans within one trace but carry no epoch.
    ``end_s`` is ``None`` while the span is open.
    """

    name: str
    kind: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: Optional[float] = None
    attributes: dict = field(default_factory=dict)
    #: Which process recorded this span: ``None`` means the local
    #: (coordinator) tracer; replayed site spans carry ``"site"``.
    process: Optional[str] = None
    #: Site id for spans replayed from a site process.
    site_id: Optional[str] = None
    #: Clock correction (site minus coordinator seconds, see
    #: ``repro.obs.skew``) already *applied* to this span's timestamps.
    clock_offset_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attributes) -> "Span":
        """Attach or overwrite attributes (chainable)."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "kind": self.kind,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": dict(self.attributes),
        }
        # Provenance fields are omitted when unset so pre-v3 span
        # payloads stay byte-identical.
        if self.process is not None:
            payload["process"] = self.process
        if self.site_id is not None:
            payload["site_id"] = self.site_id
        if self.clock_offset_s is not None:
            payload["clock_offset_s"] = self.clock_offset_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            start_s=payload["start_s"],
            end_s=payload["end_s"],
            attributes=dict(payload.get("attributes", {})),
            process=payload.get("process"),
            site_id=payload.get("site_id"),
            clock_offset_s=payload.get("clock_offset_s"),
        )


class _SpanHandle:
    """Context manager opening one span on enter, closing it on exit."""

    __slots__ = ("_tracer", "_name", "_kind", "_attributes", "span")

    def __init__(self, tracer: "Tracer", name: str, kind: str, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._kind = kind
        self._attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._kind, self._attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self.span, error=exc is not None)
        return False


class Tracer:
    """Records spans; safe under concurrent writers.

    Spans appear in :attr:`spans` in *opening* order (ties broken by
    which thread wins the id lock); nesting is encoded by ``parent_id``.
    Each thread keeps its own open-span stack, so spans opened by
    parallel site workers nest correctly without cross-thread
    interference. A worker thread starts with an empty stack and no
    parent — use :meth:`attach` to parent its spans under a span opened
    elsewhere (the evaluator attaches each site leg to its round span).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._next_id = 1
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: list = []

    def span(self, name: str, kind: str = "span", **attributes) -> _SpanHandle:
        """Open a span as a context manager: ``with tracer.span("round"):``."""
        return _SpanHandle(self, name, kind, attributes)

    @contextmanager
    def attach(self, span: Optional[Span]):
        """Parent this thread's top-level spans under ``span``.

        Used when fanning work out to a pool: the worker thread has no
        open spans of its own, so without attachment its spans would
        become parentless roots.
        """
        previous = getattr(self._local, "base_parent_id", None)
        previous_span = getattr(self._local, "base_parent_span", None)
        self._local.base_parent_id = None if span is None else span.span_id
        self._local.base_parent_span = span
        try:
            yield
        finally:
            self._local.base_parent_id = previous
            self._local.base_parent_span = previous_span

    def _thread_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, kind: str, attributes: dict) -> Span:
        stack = self._thread_stack()
        if stack:
            parent_id = stack[-1].span_id
        else:
            parent_id = getattr(self._local, "base_parent_id", None)
        start_s = self._clock()
        with self._lock:
            span = Span(
                name=name,
                kind=kind,
                span_id=self._next_id,
                parent_id=parent_id,
                start_s=start_s,
                attributes=dict(attributes),
            )
            self._next_id += 1
            self.spans.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span, error: bool = False) -> None:
        popped = self._thread_stack().pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span {span.name!r} closed out of order (open: {popped.name!r})"
            )
        if error:
            span.attributes.setdefault("error", True)
        span.end_s = self._clock()

    def replay(
        self,
        span_dicts,
        clock_offset_s: float = 0.0,
        site_id: Optional[str] = None,
        process: Optional[str] = None,
    ) -> None:
        """Re-record spans captured elsewhere (a site worker/process).

        Each replayed span gets a fresh id here; parent links *within*
        the batch are preserved, and batch roots are parented under this
        thread's attached span (see :meth:`attach`).

        Timestamps are shifted into this tracer's clock domain by
        ``clock_offset_s`` (remote minus local, the convention of
        :mod:`repro.obs.skew` — 0 keeps them verbatim, correct for
        forked workers that share the machine's monotonic clock) and
        clamped into the enclosing span's bounds, so the merged timeline
        keeps ``end >= start`` and child-within-parent even when the
        residual skew after estimation exceeds a real gap. ``site_id``
        and ``process`` stamp provenance onto the replayed spans for the
        v3 trace schema.
        """
        from repro.obs.skew import align_span

        stack = self._thread_stack()
        if stack:
            base_parent_id = stack[-1].span_id
            base_parent = stack[-1]
        else:
            base_parent_id = getattr(self._local, "base_parent_id", None)
            base_parent = getattr(self._local, "base_parent_span", None)
        now = self._clock()
        if base_parent is not None:
            base_bounds = (
                base_parent.start_s,
                base_parent.end_s if base_parent.end_s is not None else now,
            )
        else:
            base_bounds = (None, now)
        id_map: dict = {}
        bounds: dict = {}
        with self._lock:
            for payload in span_dicts:
                span = Span.from_dict(payload)
                remote_id = span.span_id
                # Clamp into the replayed parent's *corrected* bounds
                # when the parent is in this batch, else the local
                # enclosing span's bounds.
                parent_bounds = bounds.get(span.parent_id, base_bounds)
                id_map[remote_id] = self._next_id
                span.span_id = self._next_id
                span.parent_id = id_map.get(span.parent_id, base_parent_id)
                if span.end_s is not None:
                    span.start_s, span.end_s = align_span(
                        span.start_s,
                        span.end_s,
                        clock_offset_s,
                        parent_start_s=parent_bounds[0],
                        parent_end_s=parent_bounds[1],
                    )
                    bounds[remote_id] = (span.start_s, span.end_s)
                else:
                    span.start_s = span.start_s - clock_offset_s
                if process is not None and span.process is None:
                    span.process = process
                if site_id is not None and span.site_id is None:
                    span.site_id = site_id
                if process == "site" and span.clock_offset_s is None:
                    span.clock_offset_s = clock_offset_s
                self._next_id += 1
                self.spans.append(span)

    # -- queries -----------------------------------------------------------------

    def finished(self) -> list:
        """Spans whose interval is closed."""
        return [span for span in self.spans if span.end_s is not None]

    def spans_named(self, name: str) -> list:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list:
        return [child for child in self.spans if child.parent_id == span.span_id]

    def total_s(self, name: str) -> float:
        """Summed duration of all finished spans with ``name``."""
        return sum(span.duration_s for span in self.spans_named(name))


class _NullSpan:
    """Shared no-op span: enter/exit/set all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: records nothing, allocates nothing."""

    enabled = False
    spans: tuple = ()

    __slots__ = ()

    def span(self, name: str, kind: str = "span", **attributes) -> _NullSpan:
        return _NULL_SPAN

    def attach(self, span) -> _NullSpan:
        """No-op attachment (the null span is also a null context)."""
        return _NULL_SPAN

    def replay(self, span_dicts, **_kwargs) -> None:
        """Discard replayed spans (nothing is recorded)."""


#: Process-wide shared no-op tracer (safe: it holds no state).
NULL_TRACER = NullTracer()
