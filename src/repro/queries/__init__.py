"""``repro.queries`` — OLAP front-end compiling to GMDJ expressions.

Translations of the OLAP query classes the paper says GMDJs capture
uniformly (Section 2.2): SQL grouping/aggregation, correlated
aggregates, data cubes, unpivot marginals and multi-feature queries.
"""

from repro.queries.cube import (
    combine_lattice_results,
    cube_base_relation,
    cube_lattice_queries,
    cube_single_expression,
    dimension_subsets,
    execute_cube_distributed,
    grand_total_expression,
)
from repro.queries.multifeature import Feature, multifeature_query
from repro.queries.olap import (
    QueryBuilder,
    group_by_query,
    key_condition,
    windowed_comparison_query,
)
from repro.queries.sql import ParsedQuery, SqlError, parse_olap_query, parse_olap_statement
from repro.queries.unpivot import (
    combine_marginals,
    execute_marginals_distributed,
    marginal_queries,
)

__all__ = [
    "Feature",
    "QueryBuilder",
    "SqlError",
    "combine_lattice_results",
    "combine_marginals",
    "cube_base_relation",
    "cube_lattice_queries",
    "cube_single_expression",
    "dimension_subsets",
    "execute_cube_distributed",
    "execute_marginals_distributed",
    "grand_total_expression",
    "group_by_query",
    "key_condition",
    "marginal_queries",
    "multifeature_query",
    "ParsedQuery",
    "parse_olap_query",
    "parse_olap_statement",
    "windowed_comparison_query",
]
