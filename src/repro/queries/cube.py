"""Data cubes (Gray et al.) expressed with GMDJs.

The paper lists the data cube among the OLAP queries GMDJ expressions
capture (Section 1, Section 2.2). Two formulations are provided:

- :func:`cube_single_expression` — the textbook single-GMDJ encoding:
  the base-values relation is the cube lattice (one row per group-by
  tuple of every dimension subset, with ``None`` playing SQL's ALL), and
  the condition matches a detail row to every lattice row whose non-ALL
  dimensions agree: ``AND_d (b.d IS NULL | b.d == r.d)``. Elegant, but
  the disjunctions defeat hash evaluation, so it is O(|B|·|R|).
- :func:`cube_lattice_queries` — one group-by GMDJ per dimension subset
  (2^d cheap hash-evaluated queries) whose results
  :func:`combine_lattice_results` unions into the same cube relation.
  This is how a practical system (and the distributed benchmarks) run it.

Both return cubes whose rolled-up dimensions hold ``None``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

from repro.errors import PlanError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import GMDJExpression, LiteralBase, MDStep
from repro.queries.olap import group_by_query
from repro.relalg.aggregates import AggSpec
from repro.relalg.expressions import BASE_VAR, Const, DETAIL_VAR, Field, and_all
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema


def dimension_subsets(dims: Sequence[str]) -> list:
    """All subsets of the dimensions, largest (finest grouping) first."""
    subsets = []
    for size in range(len(dims), -1, -1):
        for subset in combinations(dims, size):
            subsets.append(subset)
    return subsets


def cube_base_relation(detail: Relation, dims: Sequence[str]) -> Relation:
    """The cube lattice: distinct dim tuples of every subset, ALL = None."""
    if not dims:
        raise PlanError("a cube needs at least one dimension")
    schema = detail.schema.project(dims)
    rows = []
    seen = set()
    for subset in dimension_subsets(dims):
        projected = detail.distinct_project(list(subset)) if subset else None
        if subset:
            for row in projected.rows:
                values = dict(zip(subset, row))
                lattice_row = tuple(values.get(dim) for dim in dims)
                if lattice_row not in seen:
                    seen.add(lattice_row)
                    rows.append(lattice_row)
        else:
            all_row = (None,) * len(dims)
            if all_row not in seen:
                seen.add(all_row)
                rows.append(all_row)
    return Relation(schema, rows)


def cube_single_expression(
    detail: Relation,
    table: str,
    dims: Sequence[str],
    aggs: Sequence[AggSpec],
) -> GMDJExpression:
    """The cube as ONE GMDJ over a literal lattice base.

    ``detail`` is needed up front to materialize the lattice (in a
    distributed setting, build it from the conceptual relation or a
    dimension table). Note the O(|B|·|R|) evaluation cost — prefer
    :func:`cube_lattice_queries` for anything large.
    """
    lattice = cube_base_relation(detail, dims)
    condition = and_all(
        Field(dim, BASE_VAR).is_null() | (Field(dim, BASE_VAR) == Field(dim, DETAIL_VAR))
        for dim in dims
    )
    step = MDStep(table, [MDBlock(list(aggs), condition)])
    return GMDJExpression(LiteralBase(lattice, tuple(dims)), [step])


def cube_lattice_queries(
    table: str, dims: Sequence[str], aggs: Sequence[AggSpec]
) -> list:
    """One hash-friendly group-by GMDJ per dimension subset.

    Returns ``[(subset, expression), ...]``; the empty subset (grand
    total) uses the finest subset's expression base trick — it is emitted
    as a single-group query over a constant key and must be handled by
    :func:`combine_lattice_results`.
    """
    queries = []
    for subset in dimension_subsets(dims):
        if subset:
            queries.append((subset, group_by_query(table, list(subset), aggs)))
    return queries


def grand_total_expression(table: str, aggs: Sequence[AggSpec]) -> GMDJExpression:
    """A distributed GMDJ computing the single grand-total row.

    The base-values relation is one literal row and the condition is the
    constant TRUE, so every detail tuple at every site feeds the (only)
    group — the ALL cell of the cube — still shipping only sub-aggregates.
    """
    from repro.relalg.schema import INT, Schema

    one_row = Relation(Schema.of(("__all__", INT)), [(1,)])
    step = MDStep(table, [MDBlock(list(aggs), Const(True))])
    return GMDJExpression(LiteralBase(one_row, ["__all__"]), [step])


def execute_cube_distributed(
    cluster,
    table: str,
    dims: Sequence[str],
    aggs: Sequence[AggSpec],
    options=None,
) -> Relation:
    """Evaluate a full data cube over a distributed warehouse.

    Runs one distributed group-by GMDJ per dimension subset plus one
    grand-total GMDJ — each through the full Skalla pipeline with the
    given optimizations — and combines everything into a single cube
    relation with ``None`` as ALL.
    """
    from repro.distributed.evaluator import execute_query

    results = {}
    for subset, expression in cube_lattice_queries(table, dims, aggs):
        results[subset] = execute_query(cluster, expression, options).relation
        cluster.reset_network()
    total = execute_query(
        cluster, grand_total_expression(table, aggs), options
    ).relation
    cluster.reset_network()
    grand_total = total.project([spec.output for spec in aggs])
    return combine_lattice_results(dims, aggs, results, grand_total)


def combine_lattice_results(
    dims: Sequence[str],
    aggs: Sequence[AggSpec],
    results: Mapping[tuple, Relation],
    grand_total: Relation = None,
) -> Relation:
    """Union per-subset group-by results into one cube relation.

    ``results`` maps each non-empty dimension subset to its group-by
    result; ``grand_total`` (optional) is a one-row relation with just
    the aggregate columns. Rolled-up dimensions become ``None``.
    """
    agg_names = [spec.output for spec in aggs]
    first = next(iter(results.values()))
    attributes = list(first.schema.project([]).attributes)  # empty, for symmetry
    dim_attributes = []
    for dim in dims:
        for subset, relation in results.items():
            if dim in subset:
                dim_attributes.append(relation.schema[dim])
                break
        else:
            raise PlanError(f"dimension {dim!r} missing from every subset result")
    agg_attributes = [spec.result_attribute() for spec in aggs]
    schema = Schema([*attributes, *dim_attributes, *agg_attributes])

    rows = []
    for subset, relation in results.items():
        dim_positions = {dim: relation.schema.position(dim) for dim in subset}
        agg_positions = [relation.schema.position(name) for name in agg_names]
        for row in relation.rows:
            dim_values = tuple(
                row[dim_positions[dim]] if dim in dim_positions else None
                for dim in dims
            )
            rows.append(dim_values + tuple(row[position] for position in agg_positions))
    if grand_total is not None:
        agg_positions = [grand_total.schema.position(name) for name in agg_names]
        for row in grand_total.rows:
            rows.append(
                (None,) * len(dims)
                + tuple(row[position] for position in agg_positions)
            )
    return Relation(schema, rows)
