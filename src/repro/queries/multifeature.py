"""Multi-feature queries (Ross, Srivastava & Chatziantoniou, EDBT 1998).

A multi-feature query computes, per group, a cascade of *features* where
each feature's qualifying tuples depend on previously computed features —
e.g. "for each (supplier, month): the minimum price, the count of sales
at that minimum price, and the average quantity of those sales". These
are exactly correlated-aggregate GMDJ chains; this module gives them a
declarative spelling.

A :class:`Feature` contributes one GMDJ step whose condition is the key
equality plus a predicate over the detail tuple and the previously
computed features (referenced with the ``base`` namespace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import PlanError
from repro.gmdj.expression import GMDJExpression
from repro.queries.olap import QueryBuilder
from repro.relalg.aggregates import AggSpec
from repro.relalg.expressions import Expr


@dataclass(frozen=True)
class Feature:
    """One feature stage: aggregates + an optional correlation predicate.

    ``when`` may reference detail attributes (``detail.X``) and the
    outputs of *earlier* features (``base.Y``).
    """

    aggs: tuple
    when: Optional[Expr] = None

    def __init__(self, aggs: Sequence[AggSpec], when: Optional[Expr] = None):
        aggs = tuple(aggs)
        if not aggs:
            raise PlanError("a Feature needs at least one aggregate")
        object.__setattr__(self, "aggs", aggs)
        object.__setattr__(self, "when", when)


def multifeature_query(
    table: str, keys: Sequence[str], features: Sequence[Feature]
) -> GMDJExpression:
    """Compile a feature cascade into a GMDJ chain.

    Earlier features' outputs are in scope for later features' ``when``
    predicates; the validation that references resolve happens at GMDJ
    evaluation/compile time (unknown attributes raise).
    """
    if not features:
        raise PlanError("a multi-feature query needs at least one feature")
    builder = QueryBuilder(table, keys)
    for feature in features:
        builder.stage(list(feature.aggs), extra=feature.when)
    return builder.build()
