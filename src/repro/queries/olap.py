"""High-level OLAP query builders that compile to GMDJ expressions.

Section 2.2 argues the GMDJ operator uniformly expresses the OLAP
queries of the literature; this module provides the translations for the
two workhorses:

- plain grouping/aggregation (:func:`group_by_query`);
- *correlated aggregate* queries (:class:`QueryBuilder`), where later
  aggregates are computed relative to earlier ones — the paper's
  Example 1 is ``QueryBuilder`` with two stages.

Each builder produces a :class:`~repro.gmdj.expression.GMDJExpression`
that can be evaluated centrally (``evaluate_centralized``) or shipped to
``repro.distributed.execute_query``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import PlanError
from repro.gmdj.expression import DistinctBase, GMDJExpression, LiteralBase, MDStep
from repro.gmdj.blocks import MDBlock
from repro.relalg.aggregates import AggSpec
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR, Expr, Field, and_all
from repro.relalg.predicates import key_equality_condition
from repro.relalg.relation import Relation


def key_condition(keys: Sequence[str]) -> Expr:
    """θ_K: ``b.k == r.k`` for every grouping key."""
    return key_equality_condition(keys, BASE_VAR, DETAIL_VAR)


def group_by_query(
    table: str,
    keys: Sequence[str],
    aggs: Sequence[AggSpec],
    where: Optional[Expr] = None,
) -> GMDJExpression:
    """``SELECT keys, aggs FROM table [WHERE ...] GROUP BY keys`` as a GMDJ.

    ``where`` is an optional detail-side filter folded into the condition
    (it restricts which detail tuples feed the aggregates; the group list
    still comes from the full table, matching the GMDJ formulation).
    """
    condition = key_condition(keys)
    if where is not None:
        condition = condition & where
    step = MDStep(table, [MDBlock(list(aggs), condition)])
    return GMDJExpression(DistinctBase(table, keys), [step])


class QueryBuilder:
    """Fluent builder for correlated-aggregate GMDJ chains.

    Example 1 of the paper::

        expr = (
            QueryBuilder("Flow", keys=["SourceAS", "DestAS"])
            .stage([count_star("cnt1"), AggSpec("sum", detail.NumBytes, "sum1")])
            .stage(
                [count_star("cnt2")],
                extra=detail.NumBytes >= base.sum1 / base.cnt1,
            )
            .build()
        )

    Every stage's condition is the key-equality θ_K conjoined with the
    optional ``extra`` condition (which may reference aggregates computed
    by earlier stages through the ``base`` namespace).
    """

    def __init__(
        self,
        table: str,
        keys: Sequence[str],
        base_relation: Optional[Relation] = None,
    ):
        self._table = table
        self._keys = tuple(keys)
        self._base_relation = base_relation
        self._steps: list = []

    def stage(
        self,
        aggs: Sequence[AggSpec],
        extra: Optional[Expr] = None,
        detail_table: Optional[str] = None,
        blocks: Optional[Sequence[MDBlock]] = None,
    ) -> "QueryBuilder":
        """Append one GMDJ step.

        Either give ``aggs`` (+ optional ``extra`` condition conjoined
        with θ_K), or pass fully custom ``blocks``.
        """
        table = detail_table or self._table
        if blocks is not None:
            self._steps.append(MDStep(table, list(blocks)))
            return self
        condition = key_condition(self._keys)
        if extra is not None:
            condition = condition & extra
        self._steps.append(MDStep(table, [MDBlock(list(aggs), condition)]))
        return self

    def build(self) -> GMDJExpression:
        if not self._steps:
            raise PlanError("QueryBuilder needs at least one stage")
        if self._base_relation is not None:
            source = LiteralBase(self._base_relation, self._keys)
        else:
            source = DistinctBase(self._table, self._keys)
        return GMDJExpression(source, self._steps)


def windowed_comparison_query(
    table: str,
    keys: Sequence[str],
    measure: Expr,
    fraction: float,
    output_prefix: str = "m",
) -> GMDJExpression:
    """"Within x% of the maximum" queries (the paper's second intro query).

    Stage 1 computes ``max(measure)`` per group; stage 2 counts and sums
    the tuples whose measure is within ``fraction`` of that maximum —
    e.g. "traffic from subnets whose hourly total is within 10% of the
    maximum" compiles to ``fraction = 0.10``.
    """
    if not 0 <= fraction <= 1:
        raise PlanError(f"fraction must be in [0, 1], got {fraction}")
    max_name = f"{output_prefix}_max"
    builder = QueryBuilder(table, keys)
    builder.stage([AggSpec("max", measure, max_name)])
    threshold = Field(max_name, BASE_VAR) * (1.0 - fraction)
    builder.stage(
        [
            AggSpec("count", measure, f"{output_prefix}_near_count"),
            AggSpec("sum", measure, f"{output_prefix}_near_sum"),
        ],
        extra=measure >= threshold,
    )
    return builder.build()


def and_conditions(conditions: Sequence[Expr]) -> Expr:
    """Public convenience: conjunction of several conditions."""
    return and_all(conditions)
