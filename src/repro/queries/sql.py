"""A small SQL dialect for OLAP queries, compiled to GMDJ expressions.

Figure 1 of the paper shows a *query generator* turning user OLAP
queries into GMDJ query plans. This module plays that role with a
compact SQL-like dialect covering the query classes of the evaluation —
grouping/aggregation and correlated aggregates — in a form analysts can
type::

    SELECT NationKey, COUNT(*) AS cnt, AVG(Price) AS avg_price
    FROM TPCR
    GROUP BY NationKey
    THEN SELECT COUNT(*) AS above WHERE Price >= avg_price

Semantics:

- the first stage is a GROUP BY query; an optional ``WHERE`` between
  ``FROM`` and ``GROUP BY`` filters detail tuples feeding the
  aggregates (groups still come from the whole table, per GMDJ
  semantics);
- each ``THEN SELECT ... [WHERE ...]`` adds one GMDJ stage whose
  condition is the key equality conjoined with the ``WHERE`` predicate;
- inside a ``WHERE``, an identifier naming an aggregate produced by an
  *earlier* stage refers to the base-values tuple (``base.X``); every
  other identifier refers to the detail tuple (``detail.X``). Grouping
  keys resolve to the detail side, which is equivalent under the
  implicit key equality.

Operators: ``+ - * / %``, comparisons, ``AND OR NOT``, ``IN (v, ...)``,
``BETWEEN a AND b``, ``IS [NOT] NULL``, parentheses. Literals: integers,
floats, single-quoted strings, TRUE/FALSE/NULL.

Errors raise :class:`SqlError` with the offending position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError
from repro.gmdj.expression import GMDJExpression
from repro.queries.olap import QueryBuilder
from repro.relalg import aggregates
from repro.relalg.aggregates import AggSpec
from repro.relalg.expressions import (
    BASE_VAR,
    Comparison,
    Const,
    DETAIL_VAR,
    Expr,
    Field,
    Not,
)


class SqlError(ReproError):
    """A parse or compile error in the OLAP SQL dialect."""

    def __init__(self, message: str, position: Optional[int] = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "by",
    "then",
    "as",
    "and",
    "or",
    "not",
    "in",
    "between",
    "is",
    "null",
    "true",
    "false",
    "having",
    "order",
    "asc",
    "desc",
    "limit",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|==|[=<>+\-*/%(),])
  | (?P<star>\*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "kw", "ident", "number", "string", "op", "eof"
    value: str
    position: int


def tokenize(text: str) -> list:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlError(f"unexpected character {text[position]!r}", position)
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "ident":
            lowered = value.lower()
            if lowered in _KEYWORDS:
                tokens.append(Token("kw", lowered, match.start()))
            else:
                tokens.append(Token("ident", value, match.start()))
        elif match.lastgroup == "number":
            tokens.append(Token("number", value, match.start()))
        elif match.lastgroup == "string":
            tokens.append(Token("string", value, match.start()))
        else:
            tokens.append(Token("op", value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed statement: the GMDJ expression plus client-side clauses.

    ``HAVING``, ``ORDER BY`` and ``LIMIT`` operate on the *final* query
    result at the client — they never affect distributed evaluation.
    ``apply_post`` performs them on the result relation.
    """

    expression: GMDJExpression
    having: Optional[Expr] = None
    order_by: tuple = ()  # (attribute, descending) pairs
    limit: Optional[int] = None

    def apply_post(self, relation):
        """Apply HAVING / ORDER BY / LIMIT to a result relation."""
        result = relation
        if self.having is not None:
            result = result.select(self.having)
        # Mixed ASC/DESC: successive stable sorts, least-significant first.
        for attribute, descending in reversed(self.order_by):
            result = result.sorted_by([attribute], descending=descending)
        if self.limit is not None:
            result = result.limit(self.limit)
        return result

    @property
    def has_post_clauses(self) -> bool:
        return (
            self.having is not None or bool(self.order_by) or self.limit is not None
        )


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        #: Aggregate outputs of earlier stages: names resolving to base.
        self.base_scope: set = set()
        #: When True, identifiers resolve unqualified (HAVING clauses).
        self.result_scope = False

    # -- token plumbing -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def at_kw(self, *words) -> bool:
        return self.current.kind == "kw" and self.current.value in words

    def at_op(self, *ops) -> bool:
        return self.current.kind == "op" and self.current.value in ops

    def expect_kw(self, word: str) -> Token:
        if not self.at_kw(word):
            raise SqlError(
                f"expected {word.upper()}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not self.at_op(op):
            raise SqlError(
                f"expected {op!r}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise SqlError(
                f"expected identifier, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    # -- grammar ------------------------------------------------------------------

    def parse_statement(self) -> ParsedQuery:
        expression = self.parse_query(allow_trailing=True)
        having = None
        order_by: list = []
        limit = None
        if self.at_kw("having"):
            self.advance()
            self.result_scope = True
            having = self.parse_condition()
            self.result_scope = False
        if self.at_kw("order"):
            self.advance()
            self.expect_kw("by")
            order_by.append(self.parse_order_item())
            while self.at_op(","):
                self.advance()
                order_by.append(self.parse_order_item())
        if self.at_kw("limit"):
            self.advance()
            token = self.advance()
            if token.kind != "number" or "." in token.value:
                raise SqlError(
                    f"LIMIT needs an integer, found {token.value!r}", token.position
                )
            limit = int(token.value)
        if self.current.kind != "eof":
            raise SqlError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return ParsedQuery(expression, having, tuple(order_by), limit)

    def parse_order_item(self) -> tuple:
        name = self.expect_ident().value
        descending = False
        if self.at_kw("asc", "desc"):
            descending = self.advance().value == "desc"
        return (name, descending)

    def parse_query(self, allow_trailing: bool = False) -> GMDJExpression:
        self.expect_kw("select")
        items = self.parse_select_list()
        self.expect_kw("from")
        table = self.expect_ident().value
        where = None
        if self.at_kw("where"):
            self.advance()
            where = self.parse_condition()
        self.expect_kw("group")
        self.expect_kw("by")
        keys = [self.expect_ident().value]
        while self.at_op(","):
            self.advance()
            keys.append(self.expect_ident().value)

        plain, aggs = [], []
        for item in items:
            if isinstance(item, AggSpec):
                aggs.append(item)
            else:
                plain.append(item)
        unknown = [name for name in plain if name not in keys]
        if unknown:
            raise SqlError(
                f"non-aggregate select item(s) {unknown} must appear in GROUP BY"
            )
        if not aggs:
            raise SqlError("the first stage needs at least one aggregate")

        builder = QueryBuilder(table, keys)
        builder.stage(aggs, extra=where)
        self.base_scope.update(spec.output for spec in aggs)

        while self.at_kw("then"):
            self.advance()
            self.expect_kw("select")
            stage_aggs = [self.parse_aggregate()]
            while self.at_op(","):
                self.advance()
                stage_aggs.append(self.parse_aggregate())
            stage_where = None
            if self.at_kw("where"):
                self.advance()
                stage_where = self.parse_condition()
            builder.stage(stage_aggs, extra=stage_where)
            self.base_scope.update(spec.output for spec in stage_aggs)

        if not allow_trailing and self.current.kind != "eof":
            raise SqlError(
                f"unexpected trailing input {self.current.value!r}; "
                "HAVING/ORDER BY/LIMIT need parse_olap_statement()",
                self.current.position,
            )
        return builder.build()

    def parse_select_list(self) -> list:
        items = [self.parse_select_item()]
        while self.at_op(","):
            self.advance()
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self):
        if self.current.kind == "ident" and self.current.value.lower() in aggregates.AGGREGATE_NAMES:
            following = self.tokens[self.index + 1]
            if following.kind == "op" and following.value == "(":
                return self.parse_aggregate()
        token = self.expect_ident()
        return token.value

    def parse_aggregate(self) -> AggSpec:
        name_token = self.expect_ident()
        func = name_token.value.lower()
        if func not in aggregates.AGGREGATE_NAMES:
            raise SqlError(
                f"unknown aggregate function {name_token.value!r}",
                name_token.position,
            )
        self.expect_op("(")
        if self.at_op("*"):
            self.advance()
            input_expr = None
            if func != "count":
                raise SqlError(
                    f"{func.upper()}(*) is not valid; only COUNT takes *",
                    name_token.position,
                )
        else:
            input_expr = self.parse_additive(detail_only=True)
        self.expect_op(")")
        self.expect_kw("as")
        output = self.expect_ident().value
        return AggSpec(func, input_expr, output)

    # -- conditions ------------------------------------------------------------------

    def parse_condition(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at_kw("or"):
            self.advance()
            left = left | self.parse_and()
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.at_kw("and"):
            self.advance()
            left = left & self.parse_not()
        return left

    def parse_not(self) -> Expr:
        if self.at_kw("not"):
            self.advance()
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        if self.at_kw("is"):
            self.advance()
            negated = False
            if self.at_kw("not"):
                self.advance()
                negated = True
            self.expect_kw("null")
            test = left.is_null()
            return Not(test) if negated else test
        if self.at_kw("in"):
            self.advance()
            return left.is_in(self.parse_literal_list())
        if self.at_kw("between"):
            self.advance()
            low = self.parse_additive()
            self.expect_kw("and")
            high = self.parse_additive()
            return left.between(low, high)
        if self.at_kw("not"):
            self.advance()
            if self.at_kw("in"):
                self.advance()
                return Not(left.is_in(self.parse_literal_list()))
            if self.at_kw("between"):
                self.advance()
                low = self.parse_additive()
                self.expect_kw("and")
                high = self.parse_additive()
                return Not(left.between(low, high))
            raise SqlError("expected IN or BETWEEN after NOT", self.current.position)
        if self.at_op("=", "==", "!=", "<>", "<", "<=", ">", ">="):
            op_token = self.advance()
            op = {"=": "==", "<>": "!="}.get(op_token.value, op_token.value)
            right = self.parse_additive()
            return Comparison(op, left, right)
        raise SqlError(
            f"expected a comparison, found {self.current.value!r}",
            self.current.position,
        )

    def parse_literal_list(self) -> list:
        self.expect_op("(")
        values = [self.parse_literal_value()]
        while self.at_op(","):
            self.advance()
            values.append(self.parse_literal_value())
        self.expect_op(")")
        return values

    def parse_literal_value(self):
        token = self.advance()
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            return token.value[1:-1].replace("''", "'")
        if token.kind == "op" and token.value == "-":
            value = self.parse_literal_value()
            return -value
        if token.kind == "kw" and token.value in ("true", "false"):
            return token.value == "true"
        raise SqlError(f"expected a literal, found {token.value!r}", token.position)

    # -- arithmetic --------------------------------------------------------------------

    def parse_additive(self, detail_only: bool = False) -> Expr:
        left = self.parse_multiplicative(detail_only)
        while self.at_op("+", "-"):
            op = self.advance().value
            right = self.parse_multiplicative(detail_only)
            left = left + right if op == "+" else left - right
        return left

    def parse_multiplicative(self, detail_only: bool) -> Expr:
        left = self.parse_unary(detail_only)
        while self.at_op("*", "/", "%"):
            op = self.advance().value
            right = self.parse_unary(detail_only)
            if op == "*":
                left = left * right
            elif op == "/":
                left = left / right
            else:
                left = left % right
        return left

    def parse_unary(self, detail_only: bool) -> Expr:
        if self.at_op("-"):
            self.advance()
            return -self.parse_unary(detail_only)
        if self.at_op("("):
            self.advance()
            inner = self.parse_additive(detail_only)
            self.expect_op(")")
            return inner
        token = self.advance()
        if token.kind == "number":
            if "." in token.value:
                return Const(float(token.value))
            return Const(int(token.value))
        if token.kind == "string":
            return Const(token.value[1:-1].replace("''", "'"))
        if token.kind == "kw" and token.value == "null":
            return Const(None)
        if token.kind == "kw" and token.value in ("true", "false"):
            return Const(token.value == "true")
        if token.kind == "ident":
            return self.resolve_identifier(token, detail_only)
        raise SqlError(
            f"expected an expression, found {token.value!r}", token.position
        )

    def resolve_identifier(self, token: Token, detail_only: bool) -> Field:
        if self.result_scope:
            return Field(token.value, None)
        if not detail_only and token.value in self.base_scope:
            return Field(token.value, BASE_VAR)
        return Field(token.value, DETAIL_VAR)


def parse_olap_query(sql: str) -> GMDJExpression:
    """Parse an OLAP SQL query into a GMDJ expression.

    Rejects statements with HAVING / ORDER BY / LIMIT — those clauses
    need the result relation, so use :func:`parse_olap_statement`.
    """
    return _Parser(sql).parse_query()


def parse_olap_statement(sql: str) -> ParsedQuery:
    """Parse a full statement, including HAVING / ORDER BY / LIMIT."""
    return _Parser(sql).parse_statement()
