"""Unpivot / marginal distributions (Graefe, Fayyad & Chaudhuri).

The paper's introduction cites "marginal distributions extracted by the
unpivot operator" among the analyses GMDJs express. A *marginal* of an
attribute is the distribution of its values — a group-by on that single
attribute; unpivoting several attributes stacks their marginals into one
relation of ``(attribute, value, agg...)`` rows.

:func:`marginal_queries` compiles one group-by GMDJ per attribute (each
hash-evaluated and independently distributable);
:func:`combine_marginals` stacks the results. Values are rendered as
strings in the combined relation so heterogeneously typed attributes can
share the ``value`` column (the standard unpivot behaviour).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import PlanError
from repro.queries.olap import group_by_query
from repro.relalg.aggregates import AggSpec
from repro.relalg.relation import Relation
from repro.relalg.schema import STR, Attribute, Schema


def marginal_queries(
    table: str, attributes: Sequence[str], aggs: Sequence[AggSpec]
) -> list:
    """One group-by GMDJ per unpivoted attribute.

    Returns ``[(attribute, expression), ...]``.
    """
    if not attributes:
        raise PlanError("unpivot needs at least one attribute")
    return [
        (attribute, group_by_query(table, [attribute], aggs))
        for attribute in attributes
    ]


def execute_marginals_distributed(
    cluster,
    table: str,
    attributes: Sequence[str],
    aggs: Sequence[AggSpec],
    options=None,
) -> Relation:
    """Evaluate all marginals over a distributed warehouse and stack them."""
    from repro.distributed.evaluator import execute_query

    results = {}
    for attribute, expression in marginal_queries(table, attributes, aggs):
        results[attribute] = execute_query(cluster, expression, options).relation
        cluster.reset_network()
    return combine_marginals(attributes, aggs, results)


def combine_marginals(
    attributes: Sequence[str],
    aggs: Sequence[AggSpec],
    results: Mapping[str, Relation],
) -> Relation:
    """Stack per-attribute marginals into ``(attribute, value, aggs...)``."""
    agg_names = [spec.output for spec in aggs]
    schema = Schema(
        [
            Attribute("attribute", STR),
            Attribute("value", STR),
            *(spec.result_attribute() for spec in aggs),
        ]
    )
    rows = []
    for attribute in attributes:
        try:
            relation = results[attribute]
        except KeyError:
            raise PlanError(f"missing marginal result for {attribute!r}") from None
        value_position = relation.schema.position(attribute)
        agg_positions = [relation.schema.position(name) for name in agg_names]
        for row in relation.rows:
            value = row[value_position]
            rows.append(
                (
                    attribute,
                    "NULL" if value is None else str(value),
                    *(row[position] for position in agg_positions),
                )
            )
    return Relation(schema, rows)
