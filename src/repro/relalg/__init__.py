"""``repro.relalg`` — the in-memory relational engine substrate.

Provides schemas, relations, a scalar expression language, SQL aggregate
functions with sub-/super-aggregate decomposition, relational operators
and hash indexes. Everything above this layer (GMDJ evaluation, the
distributed Skalla runtime) is built from these primitives.
"""

from repro.relalg.aggregates import AggSpec, count_star, register_aggregate
from repro.relalg.expressions import (
    BASE_VAR,
    DETAIL_VAR,
    Expr,
    Field,
    and_all,
    base,
    col,
    detail,
    expr_equals,
    or_all,
    wrap,
)
from repro.relalg.index import HashIndex
from repro.relalg.io import from_csv_text, read_csv, to_csv_text, write_csv
from repro.relalg.operators import (
    antijoin,
    cross,
    difference,
    equi_join,
    group_by,
    natural_join,
    semijoin,
    theta_join,
    union_all,
)
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Attribute, Schema

__all__ = [
    "AggSpec",
    "Attribute",
    "BASE_VAR",
    "BOOL",
    "DATE",
    "DETAIL_VAR",
    "Expr",
    "FLOAT",
    "Field",
    "HashIndex",
    "INT",
    "Relation",
    "STR",
    "Schema",
    "and_all",
    "antijoin",
    "base",
    "col",
    "count_star",
    "cross",
    "detail",
    "difference",
    "equi_join",
    "expr_equals",
    "from_csv_text",
    "group_by",
    "natural_join",
    "or_all",
    "read_csv",
    "register_aggregate",
    "semijoin",
    "theta_join",
    "to_csv_text",
    "union_all",
    "wrap",
    "write_csv",
]
