"""SQL aggregate functions with sub-/super-aggregate decomposition.

Following Gray et al. (the data-cube paper, cited as [12] in Akinde et
al.), aggregate functions are classified as:

- *distributive*: partial aggregates over a partition combine directly
  into the global aggregate (COUNT, SUM, MIN, MAX);
- *algebraic*: the global aggregate is a finite formula over a fixed-size
  tuple of distributive *components* (AVG = SUM/COUNT, VAR, STD);
- *holistic*: no constant-size partial state exists (MEDIAN,
  COUNT DISTINCT) — these cannot be used in distributed Skalla plans,
  which never ship detail data (raised as :class:`HolisticAggregateError`
  at plan time), but evaluate fine centrally.

The decomposition drives Theorem 1 of the paper: each site computes the
*sub-aggregates* (the distributive components) over its partition and
ships them as explicit columns; the coordinator combines component values
across sites and applies the *super-aggregate* (the finalize formula) to
produce the global answer.

An :class:`AggSpec` names a function, an optional input expression over
the detail relation, and an output attribute name, e.g.
``AggSpec("avg", detail.NumBytes, "avg_nb")``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import AggregateError, HolisticAggregateError
from repro.relalg.expressions import DETAIL_VAR, Expr, wrap
from repro.relalg.schema import FLOAT, INT, Attribute

DISTRIBUTIVE = "distributive"
ALGEBRAIC = "algebraic"
HOLISTIC = "holistic"


# ---------------------------------------------------------------------------
# Distributive components (building blocks of sub-aggregates)
# ---------------------------------------------------------------------------


class Component:
    """A distributive accumulator: initial value, update, combine."""

    kind = "abstract"
    type_name = FLOAT

    def initial(self):
        raise NotImplementedError

    def update(self, accumulator, value):
        raise NotImplementedError

    def combine(self, left, right):
        raise NotImplementedError


class CountStarComponent(Component):
    """COUNT(*): counts every row, input value ignored."""

    kind = "count_star"
    type_name = INT

    def initial(self):
        return 0

    def update(self, accumulator, value):
        return accumulator + 1

    def combine(self, left, right):
        return left + right


class CountComponent(Component):
    """COUNT(expr): counts non-NULL input values."""

    kind = "count"
    type_name = INT

    def initial(self):
        return 0

    def update(self, accumulator, value):
        return accumulator if value is None else accumulator + 1

    def combine(self, left, right):
        return left + right


class SumComponent(Component):
    """SUM(expr): NULL until the first non-NULL value (SQL semantics)."""

    kind = "sum"

    def initial(self):
        return None

    def update(self, accumulator, value):
        if value is None:
            return accumulator
        return value if accumulator is None else accumulator + value

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right


class SumSquaresComponent(Component):
    """Sum of squares of non-NULL values (for VAR/STD)."""

    kind = "sumsq"

    def initial(self):
        return None

    def update(self, accumulator, value):
        if value is None:
            return accumulator
        square = value * value
        return square if accumulator is None else accumulator + square

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right


class MinComponent(Component):
    kind = "min"

    def initial(self):
        return None

    def update(self, accumulator, value):
        if value is None:
            return accumulator
        return value if accumulator is None else min(accumulator, value)

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)


class MaxComponent(Component):
    kind = "max"

    def initial(self):
        return None

    def update(self, accumulator, value):
        if value is None:
            return accumulator
        return value if accumulator is None else max(accumulator, value)

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)


# ---------------------------------------------------------------------------
# Aggregate functions
# ---------------------------------------------------------------------------


class AggregateFunction:
    """An aggregate function: components + finalize formula."""

    name = "abstract"
    classification = DISTRIBUTIVE
    requires_input = True
    result_type = FLOAT

    def components(self) -> Sequence[tuple]:
        """Ordered ``(suffix, Component)`` pairs of sub-aggregates.

        A single component with suffix ``""`` means the sub-aggregate ships
        under the output name itself (e.g. plain SUM).
        """
        raise NotImplementedError

    def finalize(self, component_values: tuple):
        """Super-aggregate formula over combined component values."""
        raise NotImplementedError


class CountFunction(AggregateFunction):
    name = "count"
    requires_input = False
    result_type = INT

    def __init__(self, star: bool):
        self._component = CountStarComponent() if star else CountComponent()

    def components(self):
        return (("", self._component),)

    def finalize(self, component_values):
        return component_values[0]


class SumFunction(AggregateFunction):
    name = "sum"

    def components(self):
        return (("", SumComponent()),)

    def finalize(self, component_values):
        return component_values[0]


class MinFunction(AggregateFunction):
    name = "min"

    def components(self):
        return (("", MinComponent()),)

    def finalize(self, component_values):
        return component_values[0]


class MaxFunction(AggregateFunction):
    name = "max"

    def components(self):
        return (("", MaxComponent()),)

    def finalize(self, component_values):
        return component_values[0]


class AvgFunction(AggregateFunction):
    name = "avg"
    classification = ALGEBRAIC

    def components(self):
        return (("sum", SumComponent()), ("count", CountComponent()))

    def finalize(self, component_values):
        total, count = component_values
        if not count or total is None:
            return None
        return total / count


class VarFunction(AggregateFunction):
    """Population variance (algebraic: sum, sum of squares, count)."""

    name = "var"
    classification = ALGEBRAIC

    def components(self):
        return (
            ("sum", SumComponent()),
            ("sumsq", SumSquaresComponent()),
            ("count", CountComponent()),
        )

    def finalize(self, component_values):
        total, total_squares, count = component_values
        if not count or total is None or total_squares is None:
            return None
        mean = total / count
        # Clamp tiny negative values caused by floating-point cancellation.
        return max(0.0, total_squares / count - mean * mean)


class StdFunction(VarFunction):
    name = "std"

    def finalize(self, component_values):
        variance = super().finalize(component_values)
        return None if variance is None else math.sqrt(variance)


class _HolisticFunction(AggregateFunction):
    classification = HOLISTIC

    def components(self):
        raise HolisticAggregateError(
            f"{self.name.upper()} is holistic: it has no sub-/super-aggregate "
            "decomposition and cannot be used in a distributed plan"
        )

    def finalize(self, component_values):
        raise HolisticAggregateError(self.name)

    def holistic_result(self, values: list):
        """Compute the aggregate from the full multiset of input values."""
        raise NotImplementedError


class MedianFunction(_HolisticFunction):
    name = "median"

    def holistic_result(self, values):
        cleaned = sorted(value for value in values if value is not None)
        if not cleaned:
            return None
        middle = len(cleaned) // 2
        if len(cleaned) % 2:
            return cleaned[middle]
        return (cleaned[middle - 1] + cleaned[middle]) / 2


class CountDistinctFunction(_HolisticFunction):
    name = "count_distinct"
    result_type = INT

    def holistic_result(self, values):
        return len({value for value in values if value is not None})


class GeometricMeanFunction(AggregateFunction):
    """Geometric mean — algebraic over (sum of logs, count).

    Non-positive inputs have no logarithm; they are skipped like NULLs
    (the SQL convention for mixed-sign data is to raise, but skipping is
    the useful behaviour for rate/ratio analytics and is documented).
    """

    name = "geomean"
    classification = ALGEBRAIC

    class _LogSumComponent(Component):
        kind = "logsum"

        def initial(self):
            return None

        def update(self, accumulator, value):
            if value is None or value <= 0:
                return accumulator
            logged = math.log(value)
            return logged if accumulator is None else accumulator + logged

        def combine(self, left, right):
            if left is None:
                return right
            if right is None:
                return left
            return left + right

    class _PositiveCountComponent(Component):
        kind = "poscount"
        type_name = INT

        def initial(self):
            return 0

        def update(self, accumulator, value):
            if value is None or value <= 0:
                return accumulator
            return accumulator + 1

        def combine(self, left, right):
            return left + right

    def components(self):
        return (
            ("logsum", self._LogSumComponent()),
            ("count", self._PositiveCountComponent()),
        )

    def finalize(self, component_values):
        log_sum, count = component_values
        if not count or log_sum is None:
            return None
        return math.exp(log_sum / count)


_FUNCTIONS = {
    "count": lambda star: CountFunction(star),
    "sum": lambda star: SumFunction(),
    "min": lambda star: MinFunction(),
    "max": lambda star: MaxFunction(),
    "avg": lambda star: AvgFunction(),
    "var": lambda star: VarFunction(),
    "std": lambda star: StdFunction(),
    "geomean": lambda star: GeometricMeanFunction(),
    "median": lambda star: MedianFunction(),
    "count_distinct": lambda star: CountDistinctFunction(),
}


def register_aggregate(name: str, factory, replace: bool = False) -> None:
    """Register a custom aggregate function.

    ``factory`` is called as ``factory(star: bool)`` — ``star`` is True
    for a ``F(*)`` spec — and must return an :class:`AggregateFunction`.
    Distributive/algebraic functions built from :class:`Component`
    building blocks work everywhere, including distributed plans, the
    tree topologies and incremental refresh; holistic ones evaluate
    centrally only. The registered name becomes valid in
    :class:`AggSpec` and the SQL dialect immediately.
    """
    global AGGREGATE_NAMES
    lowered = name.lower()
    if not lowered.isidentifier():
        raise AggregateError(f"aggregate name {name!r} must be an identifier")
    if lowered in _FUNCTIONS and not replace:
        raise AggregateError(
            f"aggregate {lowered!r} already registered (pass replace=True)"
        )
    probe = factory(False)
    if not isinstance(probe, AggregateFunction):
        raise AggregateError(
            f"factory for {lowered!r} returned {probe!r}, not an AggregateFunction"
        )
    _FUNCTIONS[lowered] = factory
    AGGREGATE_NAMES = tuple(sorted(_FUNCTIONS))


AGGREGATE_NAMES = tuple(sorted(_FUNCTIONS))


# ---------------------------------------------------------------------------
# Aggregate specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggSpec:
    """One aggregate of a GMDJ block: function, input expression, output name.

    ``input_expr`` is an expression over the detail relation. Fields may be
    written with the ``detail`` namespace or unqualified; unqualified fields
    are interpreted as detail attributes. ``None`` input means ``COUNT(*)``.
    """

    func: str
    input_expr: Optional[Expr]
    output: str
    _function: AggregateFunction = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self):
        name = self.func.lower()
        if name not in _FUNCTIONS:
            raise AggregateError(
                f"unknown aggregate function {self.func!r}; known: {', '.join(AGGREGATE_NAMES)}"
            )
        if self.input_expr is None and name != "count":
            raise AggregateError(f"{name.upper()} requires an input expression")
        if self.input_expr is not None and not isinstance(self.input_expr, Expr):
            object.__setattr__(self, "input_expr", wrap(self.input_expr))
        if not self.output or not isinstance(self.output, str):
            raise AggregateError(f"output name must be a non-empty string, got {self.output!r}")
        object.__setattr__(self, "func", name)
        object.__setattr__(self, "_function", _FUNCTIONS[name](self.input_expr is None))

    # -- metadata ---------------------------------------------------------------

    @property
    def function(self) -> AggregateFunction:
        return self._function

    @property
    def classification(self) -> str:
        return self._function.classification

    @property
    def is_holistic(self) -> bool:
        return self._function.classification == HOLISTIC

    def result_attribute(self) -> Attribute:
        """Schema attribute of the finalized aggregate value."""
        return Attribute(self.output, self._function.result_type)

    def sub_attributes(self) -> tuple:
        """Schema attributes of the shipped sub-aggregate columns."""
        attributes = []
        for suffix, component in self._function.components():
            name = self.output if not suffix else f"{self.output}__{suffix}"
            type_name = INT if component.type_name == INT else FLOAT
            attributes.append(Attribute(name, type_name))
        return tuple(attributes)

    def sub_names(self) -> tuple:
        return tuple(attribute.name for attribute in self.sub_attributes())

    # -- runtime ------------------------------------------------------------------

    def accumulator(self) -> "Accumulator":
        if self.is_holistic:
            return HolisticAccumulator(self._function)
        return ComponentAccumulator(self._function)

    def compile_input(self, detail_schema):
        """Compile the input expression against the detail schema.

        Returns ``None`` for COUNT(*). Unqualified fields are treated as
        detail fields.
        """
        if self.input_expr is None:
            return None
        schemas = {DETAIL_VAR: detail_schema, None: detail_schema}
        return self.input_expr.compile(schemas)

    def __str__(self):
        inner = "*" if self.input_expr is None else repr(self.input_expr)
        return f"{self.func}({inner}) -> {self.output}"


def count_star(output: str) -> AggSpec:
    """Convenience constructor for ``COUNT(*) -> output``."""
    return AggSpec("count", None, output)


# ---------------------------------------------------------------------------
# Accumulators
# ---------------------------------------------------------------------------


class Accumulator:
    """Mutable per-group aggregate state."""

    def update(self, value) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        raise NotImplementedError

    def sub_values(self) -> tuple:
        """Component values to ship as sub-aggregate columns."""
        raise NotImplementedError

    def load_sub_values(self, values: tuple) -> None:
        """Absorb shipped sub-aggregate component values (super-aggregation)."""
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class ComponentAccumulator(Accumulator):
    """Accumulator for distributive/algebraic functions."""

    __slots__ = ("_components", "_values", "_function")

    def __init__(self, function: AggregateFunction):
        self._function = function
        self._components = tuple(component for _suffix, component in function.components())
        self._values = [component.initial() for component in self._components]

    @classmethod
    def from_values(cls, function: AggregateFunction, values) -> "ComponentAccumulator":
        """Wrap already-accumulated component values (columnar engine).

        The vectorized GMDJ scan accumulates into flat per-component lists
        and rehydrates :class:`ComponentAccumulator` objects only at the
        end, so downstream merge/finalize code is engine-agnostic.
        """
        accumulator = cls.__new__(cls)
        accumulator._function = function
        accumulator._components = tuple(
            component for _suffix, component in function.components()
        )
        accumulator._values = list(values)
        return accumulator

    def update(self, value):
        values = self._values
        for index, component in enumerate(self._components):
            values[index] = component.update(values[index], value)

    def merge(self, other):
        values = self._values
        for index, component in enumerate(self._components):
            values[index] = component.combine(values[index], other._values[index])

    def sub_values(self):
        return tuple(self._values)

    def load_sub_values(self, values):
        own = self._values
        for index, component in enumerate(self._components):
            own[index] = component.combine(own[index], values[index])

    def result(self):
        return self._function.finalize(tuple(self._values))


class HolisticAccumulator(Accumulator):
    """Accumulator for holistic functions: keeps the raw value multiset."""

    __slots__ = ("_function", "_values")

    def __init__(self, function: _HolisticFunction):
        self._function = function
        self._values = []

    def update(self, value):
        self._values.append(value)

    def merge(self, other):
        self._values.extend(other._values)

    def sub_values(self):
        raise HolisticAggregateError(
            f"{self._function.name.upper()} has no shippable sub-aggregates"
        )

    def load_sub_values(self, values):
        raise HolisticAggregateError(
            f"{self._function.name.upper()} has no shippable sub-aggregates"
        )

    def result(self):
        return self._function.holistic_result(self._values)
