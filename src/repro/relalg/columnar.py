"""Columnar storage for relations: per-column value vectors.

A :class:`ColumnarRelation` holds the same multiset of rows as a row-store
:class:`~repro.relalg.relation.Relation`, transposed into one
:class:`Column` per attribute.  Batch kernels emitted by
:mod:`repro.relalg.compiler` iterate these vectors with hoisted locals
instead of indexing row tuples, and the column-block wire codec
(:mod:`repro.net.serialize`) encodes them per column.

Columns keep their values as plain Python lists (the universal
representation the kernels consume — preserving ``None`` for NULLs), and
additionally expose two compact views:

* :meth:`Column.as_array` — for INT/FLOAT/DATE/BOOL columns, a typed
  ``array.array`` over the non-NULL values (``memoryview``-friendly; DATEs
  as ordinals, BOOLs as 0/1) plus the NULL presence bitmap.
* :meth:`Column.dictionary` — for STR columns, first-appearance-ordered
  dictionary codes (``uniques``, ``codes``; NULL encoded as code ``-1``).

This module deliberately does not import :mod:`repro.relalg.relation`
(which imports the compiler, which may consume columns) — conversion entry
points live on ``Relation`` itself.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Schema

#: array.array typecodes for the numeric path, per attribute type.
_ARRAY_TYPECODES = {INT: "q", FLOAT: "d", DATE: "q", BOOL: "b"}


class Column:
    """One attribute's values, in row order, with NULLs kept as ``None``."""

    __slots__ = ("name", "type", "values")

    def __init__(self, name: str, type_name: str, values: Sequence):
        self.name = name
        self.type = type_name
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name}:{self.type}, {len(self.values)} values)"

    def null_count(self) -> int:
        return sum(1 for value in self.values if value is None)

    def as_array(self) -> Tuple[array, List[bool]]:
        """Typed array over non-NULL values plus a presence list.

        Only valid for INT/FLOAT/DATE/BOOL columns.  DATE values are stored
        as proleptic-Gregorian ordinals and BOOLs as 0/1, matching the wire
        codec's integer path.  The returned array is ``memoryview``-able.
        """
        typecode = _ARRAY_TYPECODES.get(self.type)
        if typecode is None:
            raise SchemaError(f"column {self.name!r} of type {self.type!r} has no array view")
        present = [value is not None for value in self.values]
        if self.type == DATE:
            packed = array(typecode, (v.toordinal() for v in self.values if v is not None))
        elif self.type == BOOL:
            packed = array(typecode, (1 if v else 0 for v in self.values if v is not None))
        else:
            packed = array(typecode, (v for v in self.values if v is not None))
        return packed, present

    def dictionary(self) -> Tuple[List, array]:
        """First-appearance dictionary encoding: ``(uniques, codes)``.

        NULL values get code ``-1`` and never enter ``uniques``.  Works for
        any column type but is only a win for strings (and is what the
        column-block wire codec ships for STR columns).
        """
        uniques: List = []
        index: dict = {}
        codes = array("q")
        for value in self.values:
            if value is None:
                codes.append(-1)
                continue
            code = index.get(value)
            if code is None:
                code = len(uniques)
                index[value] = code
                uniques.append(value)
            codes.append(code)
        return uniques, codes


class ColumnarRelation:
    """A schema plus one :class:`Column` per attribute, all equal length."""

    __slots__ = ("schema", "columns", "_length")

    def __init__(
        self, schema: Schema, columns: Sequence[Column], length: Optional[int] = None
    ):
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} attributes but got {len(columns)} columns"
            )
        for column in columns:
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise SchemaError(
                    f"ragged columns: {column.name!r} has {len(column)} values, "
                    f"expected {length}"
                )
        self.schema = schema
        self.columns = tuple(columns)
        # ``length`` survives the zero-column case (pure row-count relations).
        self._length = length or 0

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[tuple]) -> "ColumnarRelation":
        """Transpose row tuples into columns (one pass via ``zip``)."""
        attributes = schema.attributes
        if rows:
            transposed = zip(*rows)
            columns = [
                Column(attribute.name, attribute.type, values)
                for attribute, values in zip(attributes, transposed)
            ]
        else:
            columns = [Column(attribute.name, attribute.type, ()) for attribute in attributes]
        return cls(schema, columns, length=len(rows) if not attributes else None)

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"ColumnarRelation({self.schema!r}, {self._length} rows)"

    def column(self, name: str) -> Column:
        return self.columns[self.schema.position(name)]

    def value_lists(self) -> Tuple[list, ...]:
        """The per-column value lists, in schema order (kernel input)."""
        return tuple(column.values for column in self.columns)

    def to_rows(self) -> List[tuple]:
        """Transpose back to row tuples, preserving row order."""
        if not self.columns:
            return [()] * self._length
        return list(zip(*(column.values for column in self.columns)))

    def gather(self, indices: Iterable[int]) -> "ColumnarRelation":
        """Rows at ``indices`` (ascending order preserves row order)."""
        index_list = list(indices)
        columns = [
            Column(column.name, column.type, [column.values[i] for i in index_list])
            for column in self.columns
        ]
        return ColumnarRelation(self.schema, columns)
