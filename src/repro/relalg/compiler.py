"""Codegen compiler: scalar AST -> Python kernels over row tuples.

:meth:`~repro.relalg.expressions.Expr.compile` builds a *closure tree* —
one Python frame per AST node per evaluated row. That is already much
faster than :meth:`Expr.eval`, but the GMDJ hot loops (hash build, probe,
residual checks, aggregate inputs) still pay a call per node per row.
This module lowers an expression once per block to a single generated
Python function whose body is straight-line statements over positional
row arguments, e.g. ``theta = (detail.A == base.A) & (detail.X >= 10)``
becomes roughly::

    def _kernel(_row_b, _row_r):
        _t1 = False if _row_r[0] is None or _row_b[0] is None else _row_r[0] == _row_b[0]
        if _t1:
            _t2 = False if _row_r[2] is None else _row_r[2] >= 10
            _t3 = bool(_t2)
        else:
            _t3 = False
        return _t3

Semantics are *identical* to the interpreter (the differential-testing
oracle, see ``tests/test_compiler.py``):

- arithmetic over ``None`` yields ``None``; ``/`` and ``%`` by zero yield
  ``None``;
- comparisons and ``BETWEEN`` with any ``None`` operand are ``False``;
- ``IN`` never admits ``None``;
- ``&`` / ``|`` short-circuit **lazily** — the right operand is not
  evaluated when the left decides, exactly like ``Expr.eval`` (so a
  type-incompatible comparison guarded by the left side never raises in
  either engine).

Kernels are cached process-wide by (mode, expression key, parameter
layout, schema signature); repeated rounds over the same block condition
compile exactly once.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Mapping, Optional, Sequence

from repro.errors import ExpressionError
from repro.relalg.expressions import (
    And,
    Arith,
    Between,
    Comparison,
    Const,
    Expr,
    Field,
    InSet,
    IsNull,
    Neg,
    Not,
    Or,
)

#: Constant types safe to inline as literals in generated source.
_INLINE_CONSTS = (bool, int, float, str)


class _Emitter:
    """Accumulates statements, temps, and environment bindings."""

    def __init__(self, schemas: Mapping, param_of: Mapping):
        self.schemas = schemas
        self.param_of = param_of
        self.lines: list = []
        self.env: dict = {}
        self._temps = 0
        self._consts = 0
        #: Atoms known to be literal constants (for static NULL analysis
        #: and to avoid ``<literal> is None`` syntax warnings).
        self.literal_atoms: set = set()

    # -- low-level helpers ---------------------------------------------------

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    def bind(self, value) -> str:
        self._consts += 1
        name = f"_c{self._consts}"
        self.env[name] = value
        return name

    def null_checks(self, atoms: Sequence[str]) -> list:
        """``X is None`` fragments for atoms that can be NULL at runtime.

        Literal atoms are resolved statically: a literal ``None`` check
        is the constant ``True``; any other literal is never NULL.
        """
        checks = []
        for atom in atoms:
            if atom in self.literal_atoms:
                if atom == "None":
                    checks.append("True")
            else:
                checks.append(f"{atom} is None")
        return checks

    # -- node emission -------------------------------------------------------

    def emit(self, node: Expr, indent: int) -> str:
        """Emit statements computing ``node``; return the result atom."""
        if isinstance(node, Const):
            value = node.value
            inline = value is None or type(value) in _INLINE_CONSTS
            if inline and isinstance(value, float) and not math.isfinite(value):
                inline = False  # repr(nan)/repr(inf) are not literals
            if inline:
                atom = repr(value)
                self.literal_atoms.add(atom)
                return atom
            return self.bind(value)

        if isinstance(node, Field):
            try:
                schema = self.schemas[node.relvar]
            except KeyError:
                raise ExpressionError(
                    f"no schema for relation variable {node.relvar!r} "
                    f"(have {sorted(map(repr, self.schemas))})"
                ) from None
            try:
                param = self.param_of[node.relvar]
            except KeyError:
                raise ExpressionError(
                    f"no kernel parameter bound for relation variable "
                    f"{node.relvar!r} (have {sorted(map(repr, self.param_of))})"
                ) from None
            return f"{param}[{schema.position(node.name)}]"

        if isinstance(node, Arith):
            left = self.emit(node.left, indent)
            right = self.emit(node.right, indent)
            checks = self.null_checks((left, right))
            if node.op in ("/", "%"):
                checks.append(f"{right} == 0")
            out = self.temp()
            expr = f"{left} {node.op} {right}"
            if checks:
                self.line(indent, f"{out} = None if {' or '.join(checks)} else {expr}")
            else:
                self.line(indent, f"{out} = {expr}")
            return out

        if isinstance(node, Neg):
            operand = self.emit(node.operand, indent)
            out = self.temp()
            checks = self.null_checks((operand,))
            if checks:
                self.line(indent, f"{out} = None if {checks[0]} else -{operand}")
            else:
                self.line(indent, f"{out} = -{operand}")
            return out

        if isinstance(node, Comparison):
            left = self.emit(node.left, indent)
            right = self.emit(node.right, indent)
            checks = self.null_checks((left, right))
            out = self.temp()
            expr = f"{left} {node.op} {right}"
            if checks:
                self.line(indent, f"{out} = False if {' or '.join(checks)} else {expr}")
            else:
                self.line(indent, f"{out} = {expr}")
            return out

        if isinstance(node, And):
            left = self.emit(node.left, indent)
            out = self.temp()
            # Lazy right operand: only evaluated when the left is truthy,
            # mirroring ``bool(left) and bool(right)`` in the interpreter.
            self.line(indent, f"if {left}:")
            right = self.emit(node.right, indent + 1)
            self.line(indent + 1, f"{out} = bool({right})")
            self.line(indent, "else:")
            self.line(indent + 1, f"{out} = False")
            return out

        if isinstance(node, Or):
            left = self.emit(node.left, indent)
            out = self.temp()
            self.line(indent, f"if {left}:")
            self.line(indent + 1, f"{out} = True")
            self.line(indent, "else:")
            right = self.emit(node.right, indent + 1)
            self.line(indent + 1, f"{out} = bool({right})")
            return out

        if isinstance(node, Not):
            operand = self.emit(node.operand, indent)
            out = self.temp()
            self.line(indent, f"{out} = not {operand}")
            return out

        if isinstance(node, InSet):
            operand = self.emit(node.operand, indent)
            values = self.bind(node.values)
            out = self.temp()
            if operand in self.literal_atoms:
                if operand == "None":
                    self.line(indent, f"{out} = False")
                else:
                    self.line(indent, f"{out} = {operand} in {values}")
            else:
                self.line(
                    indent, f"{out} = {operand} is not None and {operand} in {values}"
                )
            return out

        if isinstance(node, Between):
            operand = self.emit(node.operand, indent)
            low = self.emit(node.low, indent)
            high = self.emit(node.high, indent)
            checks = self.null_checks((operand, low, high))
            out = self.temp()
            expr = f"{low} <= {operand} <= {high}"
            if checks:
                self.line(indent, f"{out} = False if {' or '.join(checks)} else {expr}")
            else:
                self.line(indent, f"{out} = {expr}")
            return out

        if isinstance(node, IsNull):
            operand = self.emit(node.operand, indent)
            out = self.temp()
            if operand in self.literal_atoms:
                self.line(indent, f"{out} = {operand == 'None'}")
            else:
                self.line(indent, f"{out} = {operand} is None")
            return out

        raise ExpressionError(f"cannot compile expression node {node!r}")


# ---------------------------------------------------------------------------
# Kernel assembly + cache
# ---------------------------------------------------------------------------

_KERNEL_CACHE: dict = {}
_CACHE_LOCK = threading.Lock()


def clear_kernel_cache() -> None:
    """Drop all cached kernels (tests and memory-sensitive callers)."""
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()


def kernel_cache_size() -> int:
    return len(_KERNEL_CACHE)


def _param_map(params: Sequence, aliases: Optional[Mapping]) -> dict:
    """Map relvar -> generated parameter name.

    ``params`` fixes the positional signature; ``aliases`` lets extra
    relvars share a parameter (e.g. unqualified fields reading the
    detail row: ``aliases={None: DETAIL_VAR}``).
    """
    param_of = {}
    for index, relvar in enumerate(params):
        param_of[relvar] = f"_row{index}"
    if aliases:
        for alias, target in aliases.items():
            if target not in param_of:
                raise ExpressionError(
                    f"alias {alias!r} targets unknown parameter relvar {target!r}"
                )
            param_of[alias] = param_of[target]
    return param_of


def _schema_signature(schemas: Mapping) -> tuple:
    return tuple(
        sorted(
            (
                (repr(relvar), tuple((a.name, a.type) for a in schema))
                for relvar, schema in schemas.items()
            ),
        )
    )


def _cache_key(mode, expr_keys, schemas, params, aliases) -> tuple:
    alias_sig = tuple(sorted((repr(k), repr(v)) for k, v in (aliases or {}).items()))
    return (
        mode,
        expr_keys,
        tuple(repr(relvar) for relvar in params),
        alias_sig,
        _schema_signature(schemas),
    )


def _assemble(emitter: _Emitter, params: Sequence, body_tail: Sequence[str]) -> Callable:
    signature = ", ".join(f"_row{index}" for index in range(len(params)))
    body = emitter.lines + list(body_tail)
    source = f"def _kernel({signature}):\n" + "\n".join(
        "    " + line for line in body
    )
    env = emitter.env
    exec(compile(source, "<relalg-kernel>", "exec"), env)  # noqa: S102
    kernel = env["_kernel"]
    kernel.__kernel_source__ = source  # introspection for tests/debugging
    return kernel


def compile_scalar(
    expr: Expr,
    schemas: Mapping,
    params: Sequence,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile ``expr`` to ``fn(*rows) -> value``.

    ``params`` is the ordered tuple of relvars defining the positional
    row arguments; ``schemas`` maps every referenced relvar (including
    aliases) to its :class:`~repro.relalg.schema.Schema`.
    """
    key = _cache_key("scalar", expr.key(), schemas, params, aliases)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        emitter = _Emitter(schemas, _param_map(params, aliases))
        atom = emitter.emit(expr, 0)
        kernel = _assemble(emitter, params, (f"return {atom}",))
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel


def compile_predicate(
    conditions,
    schemas: Mapping,
    params: Sequence,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile a condition (or sequence of conjuncts) to ``fn(*rows) -> bool``.

    A sequence is treated as a conjunction with early exit after each
    conjunct — the same short-circuit order as testing the conjuncts one
    by one with the interpreter.
    """
    if isinstance(conditions, Expr):
        conditions = (conditions,)
    else:
        conditions = tuple(conditions)
    key = _cache_key(
        "predicate", tuple(c.key() for c in conditions), schemas, params, aliases
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        emitter = _Emitter(schemas, _param_map(params, aliases))
        for condition in conditions:
            atom = emitter.emit(condition, 0)
            emitter.line(0, f"if not {atom}:")
            emitter.line(1, "return False")
        kernel = _assemble(emitter, params, ("return True",))
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel


def compile_values(
    exprs: Sequence[Expr],
    schemas: Mapping,
    params: Sequence,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile several expressions to one ``fn(*rows) -> tuple`` kernel.

    Used for hash-join key extraction: one call builds the whole key
    tuple instead of one closure call per key component.
    """
    exprs = tuple(exprs)
    key = _cache_key(
        "values", tuple(e.key() for e in exprs), schemas, params, aliases
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        emitter = _Emitter(schemas, _param_map(params, aliases))
        atoms = [emitter.emit(expr, 0) for expr in exprs]
        tail = "(" + ", ".join(atoms) + ("," if len(atoms) == 1 else "") + ")"
        kernel = _assemble(emitter, params, (f"return {tail}",))
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel
