"""Codegen compiler: scalar AST -> Python kernels over row tuples.

:meth:`~repro.relalg.expressions.Expr.compile` builds a *closure tree* —
one Python frame per AST node per evaluated row. That is already much
faster than :meth:`Expr.eval`, but the GMDJ hot loops (hash build, probe,
residual checks, aggregate inputs) still pay a call per node per row.
This module lowers an expression once per block to a single generated
Python function whose body is straight-line statements over positional
row arguments, e.g. ``theta = (detail.A == base.A) & (detail.X >= 10)``
becomes roughly::

    def _kernel(_row_b, _row_r):
        _t1 = False if _row_r[0] is None or _row_b[0] is None else _row_r[0] == _row_b[0]
        if _t1:
            _t2 = False if _row_r[2] is None else _row_r[2] >= 10
            _t3 = bool(_t2)
        else:
            _t3 = False
        return _t3

Semantics are *identical* to the interpreter (the differential-testing
oracle, see ``tests/test_compiler.py``):

- arithmetic over ``None`` yields ``None``; ``/`` and ``%`` by zero yield
  ``None``;
- comparisons and ``BETWEEN`` with any ``None`` operand are ``False``;
- ``IN`` never admits ``None``;
- ``&`` / ``|`` short-circuit **lazily** — the right operand is not
  evaluated when the left decides, exactly like ``Expr.eval`` (so a
  type-incompatible comparison guarded by the left side never raises in
  either engine).

Kernels are cached process-wide by (mode, expression key, parameter
layout, schema signature); repeated rounds over the same block condition
compile exactly once.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Mapping, Optional, Sequence

from repro.errors import ExpressionError
from repro.relalg.expressions import (
    And,
    Arith,
    Between,
    Comparison,
    Const,
    Expr,
    Field,
    InSet,
    IsNull,
    Neg,
    Not,
    Or,
)

#: Constant types safe to inline as literals in generated source.
_INLINE_CONSTS = (bool, int, float, str)


class _Emitter:
    """Accumulates statements, temps, and environment bindings."""

    def __init__(self, schemas: Mapping, param_of: Mapping):
        self.schemas = schemas
        self.param_of = param_of
        self.lines: list = []
        self.env: dict = {}
        self._temps = 0
        self._consts = 0
        #: Atoms known to be literal constants (for static NULL analysis
        #: and to avoid ``<literal> is None`` syntax warnings).
        self.literal_atoms: set = set()

    # -- low-level helpers ---------------------------------------------------

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    def bind(self, value) -> str:
        self._consts += 1
        name = f"_c{self._consts}"
        self.env[name] = value
        return name

    def null_checks(self, atoms: Sequence[str]) -> list:
        """``X is None`` fragments for atoms that can be NULL at runtime.

        Literal atoms are resolved statically: a literal ``None`` check
        is the constant ``True``; any other literal is never NULL.
        """
        checks = []
        for atom in atoms:
            if atom in self.literal_atoms:
                if atom == "None":
                    checks.append("True")
            else:
                checks.append(f"{atom} is None")
        return checks

    # -- node emission -------------------------------------------------------

    def emit(self, node: Expr, indent: int) -> str:
        """Emit statements computing ``node``; return the result atom."""
        if isinstance(node, Const):
            value = node.value
            inline = value is None or type(value) in _INLINE_CONSTS
            if inline and isinstance(value, float) and not math.isfinite(value):
                inline = False  # repr(nan)/repr(inf) are not literals
            if inline:
                atom = repr(value)
                self.literal_atoms.add(atom)
                return atom
            return self.bind(value)

        if isinstance(node, Field):
            try:
                schema = self.schemas[node.relvar]
            except KeyError:
                raise ExpressionError(
                    f"no schema for relation variable {node.relvar!r} "
                    f"(have {sorted(map(repr, self.schemas))})"
                ) from None
            try:
                param = self.param_of[node.relvar]
            except KeyError:
                raise ExpressionError(
                    f"no kernel parameter bound for relation variable "
                    f"{node.relvar!r} (have {sorted(map(repr, self.param_of))})"
                ) from None
            return f"{param}[{schema.position(node.name)}]"

        if isinstance(node, Arith):
            left = self.emit(node.left, indent)
            right = self.emit(node.right, indent)
            checks = self.null_checks((left, right))
            if node.op in ("/", "%"):
                checks.append(f"{right} == 0")
            out = self.temp()
            expr = f"{left} {node.op} {right}"
            if checks:
                self.line(indent, f"{out} = None if {' or '.join(checks)} else {expr}")
            else:
                self.line(indent, f"{out} = {expr}")
            return out

        if isinstance(node, Neg):
            operand = self.emit(node.operand, indent)
            out = self.temp()
            checks = self.null_checks((operand,))
            if checks:
                self.line(indent, f"{out} = None if {checks[0]} else -{operand}")
            else:
                self.line(indent, f"{out} = -{operand}")
            return out

        if isinstance(node, Comparison):
            left = self.emit(node.left, indent)
            right = self.emit(node.right, indent)
            checks = self.null_checks((left, right))
            out = self.temp()
            expr = f"{left} {node.op} {right}"
            if checks:
                self.line(indent, f"{out} = False if {' or '.join(checks)} else {expr}")
            else:
                self.line(indent, f"{out} = {expr}")
            return out

        if isinstance(node, And):
            left = self.emit(node.left, indent)
            out = self.temp()
            # Lazy right operand: only evaluated when the left is truthy,
            # mirroring ``bool(left) and bool(right)`` in the interpreter.
            self.line(indent, f"if {left}:")
            right = self.emit(node.right, indent + 1)
            self.line(indent + 1, f"{out} = bool({right})")
            self.line(indent, "else:")
            self.line(indent + 1, f"{out} = False")
            return out

        if isinstance(node, Or):
            left = self.emit(node.left, indent)
            out = self.temp()
            self.line(indent, f"if {left}:")
            self.line(indent + 1, f"{out} = True")
            self.line(indent, "else:")
            right = self.emit(node.right, indent + 1)
            self.line(indent + 1, f"{out} = bool({right})")
            return out

        if isinstance(node, Not):
            operand = self.emit(node.operand, indent)
            out = self.temp()
            self.line(indent, f"{out} = not {operand}")
            return out

        if isinstance(node, InSet):
            operand = self.emit(node.operand, indent)
            values = self.bind(node.values)
            out = self.temp()
            if operand in self.literal_atoms:
                if operand == "None":
                    self.line(indent, f"{out} = False")
                else:
                    self.line(indent, f"{out} = {operand} in {values}")
            else:
                self.line(
                    indent, f"{out} = {operand} is not None and {operand} in {values}"
                )
            return out

        if isinstance(node, Between):
            operand = self.emit(node.operand, indent)
            low = self.emit(node.low, indent)
            high = self.emit(node.high, indent)
            checks = self.null_checks((operand, low, high))
            out = self.temp()
            expr = f"{low} <= {operand} <= {high}"
            if checks:
                self.line(indent, f"{out} = False if {' or '.join(checks)} else {expr}")
            else:
                self.line(indent, f"{out} = {expr}")
            return out

        if isinstance(node, IsNull):
            operand = self.emit(node.operand, indent)
            out = self.temp()
            if operand in self.literal_atoms:
                self.line(indent, f"{out} = {operand == 'None'}")
            else:
                self.line(indent, f"{out} = {operand} is None")
            return out

        raise ExpressionError(f"cannot compile expression node {node!r}")


# ---------------------------------------------------------------------------
# Kernel assembly + cache
# ---------------------------------------------------------------------------

_KERNEL_CACHE: dict = {}
_CACHE_LOCK = threading.Lock()


def clear_kernel_cache() -> None:
    """Drop all cached kernels (tests and memory-sensitive callers)."""
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()


def kernel_cache_size() -> int:
    return len(_KERNEL_CACHE)


def _param_map(params: Sequence, aliases: Optional[Mapping]) -> dict:
    """Map relvar -> generated parameter name.

    ``params`` fixes the positional signature; ``aliases`` lets extra
    relvars share a parameter (e.g. unqualified fields reading the
    detail row: ``aliases={None: DETAIL_VAR}``).
    """
    param_of = {}
    for index, relvar in enumerate(params):
        param_of[relvar] = f"_row{index}"
    if aliases:
        for alias, target in aliases.items():
            if target not in param_of:
                raise ExpressionError(
                    f"alias {alias!r} targets unknown parameter relvar {target!r}"
                )
            param_of[alias] = param_of[target]
    return param_of


def _schema_signature(schemas: Mapping) -> tuple:
    return tuple(
        sorted(
            (
                (repr(relvar), tuple((a.name, a.type) for a in schema))
                for relvar, schema in schemas.items()
            ),
        )
    )


def _cache_key(mode, expr_keys, schemas, params, aliases) -> tuple:
    alias_sig = tuple(sorted((repr(k), repr(v)) for k, v in (aliases or {}).items()))
    return (
        mode,
        expr_keys,
        tuple(repr(relvar) for relvar in params),
        alias_sig,
        _schema_signature(schemas),
    )


def _assemble(emitter: _Emitter, params: Sequence, body_tail: Sequence[str]) -> Callable:
    signature = ", ".join(f"_row{index}" for index in range(len(params)))
    body = emitter.lines + list(body_tail)
    source = f"def _kernel({signature}):\n" + "\n".join(
        "    " + line for line in body
    )
    env = emitter.env
    exec(compile(source, "<relalg-kernel>", "exec"), env)  # noqa: S102
    kernel = env["_kernel"]
    kernel.__kernel_source__ = source  # introspection for tests/debugging
    return kernel


def compile_scalar(
    expr: Expr,
    schemas: Mapping,
    params: Sequence,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile ``expr`` to ``fn(*rows) -> value``.

    ``params`` is the ordered tuple of relvars defining the positional
    row arguments; ``schemas`` maps every referenced relvar (including
    aliases) to its :class:`~repro.relalg.schema.Schema`.
    """
    key = _cache_key("scalar", expr.key(), schemas, params, aliases)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        emitter = _Emitter(schemas, _param_map(params, aliases))
        atom = emitter.emit(expr, 0)
        kernel = _assemble(emitter, params, (f"return {atom}",))
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel


def compile_predicate(
    conditions,
    schemas: Mapping,
    params: Sequence,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile a condition (or sequence of conjuncts) to ``fn(*rows) -> bool``.

    A sequence is treated as a conjunction with early exit after each
    conjunct — the same short-circuit order as testing the conjuncts one
    by one with the interpreter.
    """
    if isinstance(conditions, Expr):
        conditions = (conditions,)
    else:
        conditions = tuple(conditions)
    key = _cache_key(
        "predicate", tuple(c.key() for c in conditions), schemas, params, aliases
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        emitter = _Emitter(schemas, _param_map(params, aliases))
        for condition in conditions:
            atom = emitter.emit(condition, 0)
            emitter.line(0, f"if not {atom}:")
            emitter.line(1, "return False")
        kernel = _assemble(emitter, params, ("return True",))
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel


def compile_values(
    exprs: Sequence[Expr],
    schemas: Mapping,
    params: Sequence,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile several expressions to one ``fn(*rows) -> tuple`` kernel.

    Used for hash-join key extraction: one call builds the whole key
    tuple instead of one closure call per key component.
    """
    exprs = tuple(exprs)
    key = _cache_key(
        "values", tuple(e.key() for e in exprs), schemas, params, aliases
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        emitter = _Emitter(schemas, _param_map(params, aliases))
        atoms = [emitter.emit(expr, 0) for expr in exprs]
        tail = "(" + ", ".join(atoms) + ("," if len(atoms) == 1 else "") + ")"
        kernel = _assemble(emitter, params, (f"return {tail}",))
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel


# ---------------------------------------------------------------------------
# Batch (columnar) kernels
# ---------------------------------------------------------------------------
#
# The columnar engine amortizes the per-row call overhead away entirely:
# instead of ``fn(row) -> value`` closures invoked once per tuple, batch
# kernels contain the scan loop *inside* the generated function. Fields of
# the designated columnar relation variable read hoisted column locals
# (``_dc3[_i]``) rather than indexing a row tuple, so one generated frame
# processes the whole block. Semantics are identical to the row kernels
# above — the row engine stays the differential oracle
# (``tests/test_engine_equivalence.py``).


class _ColumnEmitter(_Emitter):
    """Emitter whose columnar relvars read ``_dc<pos>[_i]`` column locals."""

    def __init__(self, schemas: Mapping, param_of: Mapping, columnar_relvars):
        super().__init__(schemas, param_of)
        self.columnar_relvars = frozenset(columnar_relvars)
        self.used_columns: set = set()

    def emit(self, node: Expr, indent: int) -> str:
        if isinstance(node, Field) and node.relvar in self.columnar_relvars:
            try:
                schema = self.schemas[node.relvar]
            except KeyError:
                raise ExpressionError(
                    f"no schema for relation variable {node.relvar!r} "
                    f"(have {sorted(map(repr, self.schemas))})"
                ) from None
            position = schema.position(node.name)
            self.used_columns.add(position)
            return f"_dc{position}[_i]"
        return super().emit(node, indent)


def _columnar_relvars(columnar, aliases: Optional[Mapping]) -> frozenset:
    """The columnar relvar plus every alias that targets it."""
    relvars = {columnar}
    for alias, target in (aliases or {}).items():
        if target == columnar:
            relvars.add(alias)
    return frozenset(relvars)


def _batch_param_map(params: Sequence, columnar, aliases: Optional[Mapping]) -> tuple:
    """Row-parameter map for a batch kernel: ``(param_of, row_params)``.

    The columnar relvar is excluded — its fields read column locals.
    Non-columnar params keep positional ``_row{j}`` arguments after the
    leading ``(_n, _cols)`` pair of every batch kernel.
    """
    if columnar not in params:
        raise ExpressionError(
            f"columnar relvar {columnar!r} not among kernel params {params!r}"
        )
    row_params = tuple(relvar for relvar in params if relvar != columnar)
    param_of = {}
    for index, relvar in enumerate(row_params):
        param_of[relvar] = f"_row{index}"
    columnar_set = _columnar_relvars(columnar, aliases)
    if aliases:
        for alias, target in aliases.items():
            if alias in columnar_set:
                continue
            if target not in param_of:
                raise ExpressionError(
                    f"alias {alias!r} targets unknown parameter relvar {target!r}"
                )
            param_of[alias] = param_of[target]
    return param_of, row_params


def _assemble_batch(
    emitter: "_ColumnEmitter",
    row_params: Sequence,
    extra_args: Sequence[str],
    body: Sequence[str],
) -> Callable:
    """Assemble a batch kernel: hoisted column locals + provided body.

    Signature is ``(_n, _cols, *row_args, *extra_args)`` where ``_cols``
    is the tuple of per-column value lists of the columnar relation.
    """
    args = ["_n", "_cols"]
    args.extend(f"_row{index}" for index in range(len(row_params)))
    args.extend(extra_args)
    prologue = [
        f"_dc{position} = _cols[{position}]"
        for position in sorted(emitter.used_columns)
    ]
    source = f"def _kernel({', '.join(args)}):\n" + "\n".join(
        "    " + line for line in prologue + list(body)
    )
    env = emitter.env
    exec(compile(source, "<relalg-batch-kernel>", "exec"), env)  # noqa: S102
    kernel = env["_kernel"]
    kernel.__kernel_source__ = source
    return kernel


def compile_mask(
    conditions,
    schemas: Mapping,
    params: Sequence,
    columnar,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile a conjunction to ``fn(n, cols, *rows) -> [passing indices]``.

    The selection bitmap of the columnar engine: one generated loop over
    the column vectors returns the ascending indices of rows satisfying
    every conjunct (same short-circuit order as
    :func:`compile_predicate`, so both engines evaluate the same atoms).
    """
    if isinstance(conditions, Expr):
        conditions = (conditions,)
    else:
        conditions = tuple(conditions)
    key = _cache_key(
        ("mask", repr(columnar)),
        tuple(c.key() for c in conditions),
        schemas,
        params,
        aliases,
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        param_of, row_params = _batch_param_map(params, columnar, aliases)
        emitter = _ColumnEmitter(schemas, param_of, _columnar_relvars(columnar, aliases))
        emitter.line(0, "_out = []")
        emitter.line(0, "_append = _out.append")
        emitter.line(0, "for _i in range(_n):")
        for condition in conditions:
            atom = emitter.emit(condition, 1)
            emitter.line(1, f"if not {atom}:")
            emitter.line(2, "continue")
        emitter.line(1, "_append(_i)")
        kernel = _assemble_batch(emitter, row_params, (), emitter.lines + ["return _out"])
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel


def compile_batch_scalar(
    expr: Expr,
    schemas: Mapping,
    params: Sequence,
    columnar,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Compile ``expr`` to ``fn(n, cols, *rows) -> [value per row]``.

    The vectorized ``extend``: one generated loop computes the expression
    for every row of the columnar relation.
    """
    key = _cache_key(
        ("batch_scalar", repr(columnar)), expr.key(), schemas, params, aliases
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        param_of, row_params = _batch_param_map(params, columnar, aliases)
        emitter = _ColumnEmitter(schemas, param_of, _columnar_relvars(columnar, aliases))
        emitter.line(0, "_out = []")
        emitter.line(0, "_append = _out.append")
        emitter.line(0, "for _i in range(_n):")
        atom = emitter.emit(expr, 1)
        emitter.line(1, f"_append({atom})")
        kernel = _assemble_batch(emitter, row_params, (), emitter.lines + ["return _out"])
        with _CACHE_LOCK:
            _KERNEL_CACHE[key] = kernel
    return kernel


#: Component kinds the fused grouped-accumulate kernel knows how to inline.
#: Anything else (custom :func:`repro.relalg.aggregates.register_aggregate`
#: components, holistic accumulators) falls back to the row engine.
VECTORIZED_COMPONENT_KINDS = frozenset(
    ("count_star", "count", "sum", "sumsq", "min", "max", "logsum", "poscount")
)


def _emit_component_update(emitter, indent, kind, acc, value_atom):
    """Inline one Component.update against flat list ``acc`` at ``_b``.

    Each branch mirrors the corresponding ``Component.update`` in
    :mod:`repro.relalg.aggregates` statement-for-statement so results are
    bit-identical to the row engine (including float fold order).
    """
    slot = f"{acc}[_b]"
    if kind == "count_star":
        emitter.line(indent, f"{slot} += 1")
    elif kind == "count":
        emitter.line(indent, f"if {value_atom} is not None:")
        emitter.line(indent + 1, f"{slot} += 1")
    elif kind == "sum":
        emitter.line(indent, f"if {value_atom} is not None:")
        emitter.line(indent + 1, f"_x = {acc}[_b]")
        emitter.line(
            indent + 1, f"{slot} = {value_atom} if _x is None else _x + {value_atom}"
        )
    elif kind == "sumsq":
        emitter.line(indent, f"if {value_atom} is not None:")
        emitter.line(indent + 1, f"_sq = {value_atom} * {value_atom}")
        emitter.line(indent + 1, f"_x = {acc}[_b]")
        emitter.line(indent + 1, f"{slot} = _sq if _x is None else _x + _sq")
    elif kind == "min":
        emitter.line(indent, f"if {value_atom} is not None:")
        emitter.line(indent + 1, f"_x = {acc}[_b]")
        emitter.line(
            indent + 1,
            f"{slot} = {value_atom} if _x is None else min(_x, {value_atom})",
        )
    elif kind == "max":
        emitter.line(indent, f"if {value_atom} is not None:")
        emitter.line(indent + 1, f"_x = {acc}[_b]")
        emitter.line(
            indent + 1,
            f"{slot} = {value_atom} if _x is None else max(_x, {value_atom})",
        )
    elif kind == "logsum":
        emitter.line(indent, f"if {value_atom} is not None and {value_atom} > 0:")
        emitter.line(indent + 1, f"_lg = _log({value_atom})")
        emitter.env.setdefault("_log", math.log)
        emitter.line(indent + 1, f"_x = {acc}[_b]")
        emitter.line(indent + 1, f"{slot} = _lg if _x is None else _x + _lg")
    elif kind == "poscount":
        emitter.line(indent, f"if {value_atom} is not None and {value_atom} > 0:")
        emitter.line(indent + 1, f"{slot} += 1")
    else:  # pragma: no cover - guarded by VECTORIZED_COMPONENT_KINDS
        raise ExpressionError(f"cannot vectorize component kind {kind!r}")


def compile_grouped_accumulate(
    key_exprs,
    input_exprs: Sequence,
    component_kinds: Sequence[tuple],
    residual_conjuncts: Sequence,
    schemas: Mapping,
    columnar,
    base_param,
    track_touch: bool,
    aliases: Optional[Mapping] = None,
) -> Callable:
    """Fuse the GMDJ probe/update scan into one generated loop.

    The returned kernel has signature::

        kernel(indices, cols, base_rows, probe, accs, touched)

    - ``indices``: detail row indices to scan (post detail-only filter);
    - ``cols``: the detail relation's column value lists;
    - ``base_rows``: row tuples of the base relation (residual checks);
    - ``probe``: hash-path — ``table.get`` of the base hash table built
      over the equality-atom keys; nested-loop path (``key_exprs is
      None``) — the list of candidate base indices;
    - ``accs``: flat accumulator lists, one per (aggregate, component) in
      block order, each ``len(base_rows)`` long;
    - ``touched``: per-base-row flags (only written when ``track_touch``).

    Everything the row engine does per detail row — key-tuple closure
    call, NULL-key check, dict probe, aggregate-input closures, residual
    closure, ``Accumulator.update`` method dispatch per component — is
    inlined into straight-line statements, which is where the columnar
    engine's speedup comes from.
    """
    hashable = key_exprs is not None
    input_exprs = tuple(input_exprs)
    component_kinds = tuple(tuple(kinds) for kinds in component_kinds)
    residual_conjuncts = tuple(residual_conjuncts)
    key = _cache_key(
        (
            "grouped_accumulate",
            repr(columnar),
            repr(base_param),
            hashable,
            track_touch,
            component_kinds,
        ),
        (
            tuple(e.key() for e in key_exprs) if hashable else None,
            tuple(None if e is None else e.key() for e in input_exprs),
            tuple(c.key() for c in residual_conjuncts),
        ),
        schemas,
        (columnar,),
        aliases,
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is not None:
        return kernel

    param_of = {base_param: "_row_b"}
    if aliases:
        columnar_set = _columnar_relvars(columnar, aliases)
        for alias, target in aliases.items():
            if alias in columnar_set:
                continue
            if target == base_param:
                param_of[alias] = "_row_b"
    emitter = _ColumnEmitter(schemas, param_of, _columnar_relvars(columnar, aliases))

    acc_names = []
    flat_index = 0
    for kinds in component_kinds:
        for _kind in kinds:
            acc_names.append(f"_acc{flat_index}")
            flat_index += 1
    for index, name in enumerate(acc_names):
        emitter.line(0, f"{name} = _accs[{index}]")
    need_base_row = bool(residual_conjuncts)

    emitter.line(0, "for _i in _indices:")
    if hashable:
        key_atoms = [emitter.emit(expr, 1) for expr in key_exprs]
        checks = emitter.null_checks(key_atoms)
        if checks:
            emitter.line(1, f"if {' or '.join(checks)}:")
            emitter.line(2, "continue")
        key_tuple = "(" + ", ".join(key_atoms) + ("," if len(key_atoms) == 1 else "") + ")"
        emitter.line(1, f"_matches = _probe({key_tuple})")
        emitter.line(1, "if not _matches:")
        emitter.line(2, "continue")
    else:
        emitter.line(1, "_matches = _probe")

    value_atoms = []
    for agg_index, expr in enumerate(input_exprs):
        if expr is None:
            value_atoms.append(None)
        else:
            atom = emitter.emit(expr, 1)
            # Pin the value in a stable local: expression temps are reused
            # across iterations but must survive into the match loop.
            name = f"_v{agg_index}"
            emitter.line(1, f"{name} = {atom}")
            value_atoms.append(name)

    emitter.line(1, "for _b in _matches:")
    if need_base_row:
        emitter.line(2, "_row_b = _base_rows[_b]")
        for conjunct in residual_conjuncts:
            atom = emitter.emit(conjunct, 2)
            emitter.line(2, f"if not {atom}:")
            emitter.line(3, "continue")
    if track_touch:
        emitter.line(2, "_touched[_b] = True")
    flat_index = 0
    for agg_index, kinds in enumerate(component_kinds):
        for kind in kinds:
            _emit_component_update(
                emitter, 2, kind, acc_names[flat_index], value_atoms[agg_index]
            )
            flat_index += 1

    source = (
        "def _kernel(_indices, _cols, _base_rows, _probe, _accs, _touched):\n"
        + "\n".join(
            "    " + line
            for line in [
                f"_dc{position} = _cols[{position}]"
                for position in sorted(emitter.used_columns)
            ]
            + emitter.lines
        )
    )
    env = emitter.env
    exec(compile(source, "<relalg-accumulate-kernel>", "exec"), env)  # noqa: S102
    kernel = env["_kernel"]
    kernel.__kernel_source__ = source
    with _CACHE_LOCK:
        _KERNEL_CACHE[key] = kernel
    return kernel
