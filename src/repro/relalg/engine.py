"""Execution-engine knob: row-at-a-time oracle vs. columnar batch kernels.

The row engine is the differential oracle — it is never removed, and every
columnar code path must produce bit-identical results against it.  The active
engine is tracked per-context (thread/task safe) with a lazy fallback to the
``REPRO_ENGINE`` environment variable so forked workers and test monkeypatches
both observe the expected default.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from ..errors import PlanError

ENGINES = ("row", "columnar")

_ACTIVE_ENGINE: ContextVar[Optional[str]] = ContextVar("repro_engine", default=None)


def validate_engine(name: str) -> str:
    if name not in ENGINES:
        raise PlanError(f"unknown engine {name!r}; expected one of {ENGINES}")
    return name


def active_engine() -> str:
    """The engine for the current context (env fallback, default ``row``)."""

    current = _ACTIVE_ENGINE.get()
    if current is not None:
        return current
    return validate_engine(os.environ.get("REPRO_ENGINE", "row"))


@contextmanager
def use_engine(name: str) -> Iterator[str]:
    """Scope the active engine; restores the previous engine on exit."""

    token = _ACTIVE_ENGINE.set(validate_engine(name))
    try:
        yield name
    finally:
        _ACTIVE_ENGINE.reset(token)
