"""Scalar expression AST used for predicates, conditions and computed columns.

Expressions reference attributes through :class:`Field` nodes. A field can
be *qualified* by a relation variable — in GMDJ conditions the base-values
relation is bound to ``"b"`` and the detail relation to ``"r"`` — or
unqualified (single-relation contexts such as ``select``).

Ergonomic builders let callers write conditions in plain Python::

    from repro.relalg.expressions import base, detail

    theta = (detail.SourceAS == base.SourceAS) & (detail.NumBytes >= 1024)

Because ``__eq__`` is overloaded to build comparison expressions,
*structural* equality between expressions uses :func:`expr_equals` /
``Expr.key()`` instead of ``==``.

Null semantics follow SQL's three-valued logic collapsed to two values:
arithmetic over ``None`` yields ``None``; comparisons involving ``None``
are ``False``; ``&``/``|`` treat their operands as plain booleans.

For tight loops (GMDJ evaluation scans), :meth:`Expr.compile` produces a
closure evaluating the expression against row tuples directly, avoiding
per-row dictionary construction.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Optional

from repro.errors import ExpressionError, UnknownAttributeError

#: Relation-variable names conventionally used in GMDJ conditions.
BASE_VAR = "b"
DETAIL_VAR = "r"


class Expr:
    """Base class for all scalar expression nodes."""

    __slots__ = ()

    # -- construction sugar -------------------------------------------------

    def __add__(self, other):
        return Arith("+", self, wrap(other))

    def __radd__(self, other):
        return Arith("+", wrap(other), self)

    def __sub__(self, other):
        return Arith("-", self, wrap(other))

    def __rsub__(self, other):
        return Arith("-", wrap(other), self)

    def __mul__(self, other):
        return Arith("*", self, wrap(other))

    def __rmul__(self, other):
        return Arith("*", wrap(other), self)

    def __truediv__(self, other):
        return Arith("/", self, wrap(other))

    def __rtruediv__(self, other):
        return Arith("/", wrap(other), self)

    def __mod__(self, other):
        return Arith("%", self, wrap(other))

    def __neg__(self):
        return Neg(self)

    def __eq__(self, other):  # noqa: D105 - builds a Comparison, see module doc
        return Comparison("==", self, wrap(other))

    def __ne__(self, other):
        return Comparison("!=", self, wrap(other))

    def __lt__(self, other):
        return Comparison("<", self, wrap(other))

    def __le__(self, other):
        return Comparison("<=", self, wrap(other))

    def __gt__(self, other):
        return Comparison(">", self, wrap(other))

    def __ge__(self, other):
        return Comparison(">=", self, wrap(other))

    def __and__(self, other):
        return And(self, wrap(other))

    def __rand__(self, other):
        return And(wrap(other), self)

    def __or__(self, other):
        return Or(self, wrap(other))

    def __ror__(self, other):
        return Or(wrap(other), self)

    def __invert__(self):
        return Not(self)

    def is_in(self, values: Iterable) -> "InSet":
        """Membership test: ``expr.is_in([1, 2, 3])``."""
        return InSet(self, values)

    def between(self, low, high) -> "Between":
        """Closed-interval test: ``low <= expr <= high``."""
        return Between(self, wrap(low), wrap(high))

    def is_null(self) -> "IsNull":
        return IsNull(self)

    # -- structural protocol -------------------------------------------------

    def key(self):
        """Canonical hashable identity tuple (structural equality)."""
        raise NotImplementedError

    def children(self) -> tuple:
        """Direct sub-expressions."""
        raise NotImplementedError

    def rebuild(self, children: tuple) -> "Expr":
        """Construct the same node kind over new children."""
        raise NotImplementedError

    def fields(self) -> tuple:
        """Unique :class:`Field` nodes appearing in the expression.

        Collected via their structural keys: ``Field`` inherits the
        comparison-building ``__eq__``, so fields must never be put in a
        plain set (membership tests would build expressions instead of
        comparing them).
        """
        collected = {}
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Field):
                collected.setdefault(node.key(), node)
            stack.extend(node.children())
        return tuple(collected.values())

    def relvars(self) -> frozenset:
        """The set of relation variables referenced (``None`` = unqualified)."""
        return frozenset(field.relvar for field in self.fields())

    def attrs(self, relvar: Optional[str] = "*") -> frozenset:
        """Attribute names referenced; restrict to one relvar unless ``"*"``."""
        if relvar == "*":
            return frozenset(field.name for field in self.fields())
        return frozenset(field.name for field in self.fields() if field.relvar == relvar)

    # -- evaluation -----------------------------------------------------------

    def eval(self, bindings: dict):
        """Evaluate against ``bindings``: relvar -> mapping of attr -> value.

        Unqualified fields are looked up under the ``None`` key.
        """
        raise NotImplementedError

    def compile(self, schemas: dict) -> Callable:
        """Compile to ``fn(rows)`` where ``rows`` maps relvar -> row tuple.

        ``schemas`` maps each referenced relvar to its :class:`Schema`.
        """
        raise NotImplementedError

    # -- misc ------------------------------------------------------------------

    def __hash__(self):
        return hash(self.key())

    def __bool__(self):
        raise ExpressionError(
            "expression has no truth value; use & | ~ to combine conditions "
            "and expr_equals() for structural comparison"
        )


def wrap(value) -> Expr:
    """Lift a Python value to an expression (idempotent on Expr)."""
    if isinstance(value, Expr):
        return value
    return Const(value)


def expr_equals(left: Expr, right: Expr) -> bool:
    """Structural equality between two expressions."""
    return left.key() == right.key()


class Const(Expr):
    """A literal value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def key(self):
        return ("const", self.value)

    def children(self):
        return ()

    def rebuild(self, children):
        return self

    def eval(self, bindings):
        return self.value

    def compile(self, schemas):
        value = self.value
        return lambda rows: value

    def __repr__(self):
        return repr(self.value)


class Field(Expr):
    """An attribute reference, optionally qualified by a relation variable."""

    __slots__ = ("relvar", "name")

    def __init__(self, name: str, relvar: Optional[str] = None):
        if not isinstance(name, str) or not name:
            raise ExpressionError(f"field name must be a non-empty string, got {name!r}")
        self.relvar = relvar
        self.name = name

    def key(self):
        return ("field", self.relvar, self.name)

    def children(self):
        return ()

    def rebuild(self, children):
        return self

    def eval(self, bindings):
        try:
            row = bindings[self.relvar]
        except KeyError:
            raise ExpressionError(f"no binding for relation variable {self.relvar!r}") from None
        try:
            return row[self.name]
        except KeyError:
            raise UnknownAttributeError(self.name, row.keys()) from None

    def compile(self, schemas):
        try:
            schema = schemas[self.relvar]
        except KeyError:
            raise ExpressionError(
                f"no schema for relation variable {self.relvar!r} "
                f"(have {sorted(map(repr, schemas))})"
            ) from None
        position = schema.position(self.name)
        relvar = self.relvar
        return lambda rows: rows[relvar][position]

    def with_relvar(self, relvar: Optional[str]) -> "Field":
        return Field(self.name, relvar)

    def __repr__(self):
        if self.relvar is None:
            return self.name
        return f"{self.relvar}.{self.name}"


_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


class Arith(Expr):
    """Binary arithmetic; ``None`` operands propagate to ``None``.

    Division and modulo by zero also yield ``None`` (NULL) rather than
    raising: OLAP conditions routinely divide by computed aggregates
    (e.g. ``sum1 / cnt1``), and a zero denominator must disqualify the
    comparison — which NULL does, since comparisons against NULL are
    false — not abort the whole distributed query.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def key(self):
        return ("arith", self.op, self.left.key(), self.right.key())

    def children(self):
        return (self.left, self.right)

    def rebuild(self, children):
        return Arith(self.op, *children)

    def eval(self, bindings):
        left = self.left.eval(bindings)
        right = self.right.eval(bindings)
        if left is None or right is None:
            return None
        if right == 0 and self.op in ("/", "%"):
            return None
        return _ARITH_OPS[self.op](left, right)

    def compile(self, schemas):
        func = _ARITH_OPS[self.op]
        left = self.left.compile(schemas)
        right = self.right.compile(schemas)
        guard_zero = self.op in ("/", "%")

        def run(rows):
            lhs = left(rows)
            rhs = right(rows)
            if lhs is None or rhs is None:
                return None
            if guard_zero and rhs == 0:
                return None
            return func(lhs, rhs)

        return run

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Neg(Expr):
    """Unary negation; ``None`` propagates."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def key(self):
        return ("neg", self.operand.key())

    def children(self):
        return (self.operand,)

    def rebuild(self, children):
        return Neg(children[0])

    def eval(self, bindings):
        value = self.operand.eval(bindings)
        return None if value is None else -value

    def compile(self, schemas):
        operand = self.operand.compile(schemas)

        def run(rows):
            value = operand(rows)
            return None if value is None else -value

        return run

    def __repr__(self):
        return f"(-{self.operand!r})"


_CMP_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Mapping of each comparison operator to its logical negation.
NEGATED_CMP = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: Mapping of each comparison operator to its mirror (operands swapped).
MIRRORED_CMP = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Comparison(Expr):
    """Binary comparison; any ``None`` operand makes the result ``False``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def key(self):
        return ("cmp", self.op, self.left.key(), self.right.key())

    def children(self):
        return (self.left, self.right)

    def rebuild(self, children):
        return Comparison(self.op, *children)

    def mirrored(self) -> "Comparison":
        """The same predicate with operands swapped (``a < b`` -> ``b > a``)."""
        return Comparison(MIRRORED_CMP[self.op], self.right, self.left)

    def negated(self) -> "Comparison":
        return Comparison(NEGATED_CMP[self.op], self.left, self.right)

    def eval(self, bindings):
        left = self.left.eval(bindings)
        right = self.right.eval(bindings)
        if left is None or right is None:
            return False
        return _CMP_OPS[self.op](left, right)

    def compile(self, schemas):
        func = _CMP_OPS[self.op]
        left = self.left.compile(schemas)
        right = self.right.compile(schemas)

        def run(rows):
            lhs = left(rows)
            rhs = right(rows)
            if lhs is None or rhs is None:
                return False
            return func(lhs, rhs)

        return run

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """Logical conjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def key(self):
        return ("and", self.left.key(), self.right.key())

    def children(self):
        return (self.left, self.right)

    def rebuild(self, children):
        return And(*children)

    def eval(self, bindings):
        return bool(self.left.eval(bindings)) and bool(self.right.eval(bindings))

    def compile(self, schemas):
        left = self.left.compile(schemas)
        right = self.right.compile(schemas)
        return lambda rows: bool(left(rows)) and bool(right(rows))

    def __repr__(self):
        return f"({self.left!r} & {self.right!r})"


class Or(Expr):
    """Logical disjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def key(self):
        return ("or", self.left.key(), self.right.key())

    def children(self):
        return (self.left, self.right)

    def rebuild(self, children):
        return Or(*children)

    def eval(self, bindings):
        return bool(self.left.eval(bindings)) or bool(self.right.eval(bindings))

    def compile(self, schemas):
        left = self.left.compile(schemas)
        right = self.right.compile(schemas)
        return lambda rows: bool(left(rows)) or bool(right(rows))

    def __repr__(self):
        return f"({self.left!r} | {self.right!r})"


class Not(Expr):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def key(self):
        return ("not", self.operand.key())

    def children(self):
        return (self.operand,)

    def rebuild(self, children):
        return Not(children[0])

    def eval(self, bindings):
        return not self.operand.eval(bindings)

    def compile(self, schemas):
        operand = self.operand.compile(schemas)
        return lambda rows: not operand(rows)

    def __repr__(self):
        return f"(~{self.operand!r})"


class InSet(Expr):
    """Membership in a literal set of values; ``None`` is never a member."""

    __slots__ = ("operand", "values")

    def __init__(self, operand: Expr, values: Iterable):
        self.operand = operand
        self.values = frozenset(values)

    def key(self):
        return ("in", self.operand.key(), tuple(sorted(map(repr, self.values))))

    def children(self):
        return (self.operand,)

    def rebuild(self, children):
        return InSet(children[0], self.values)

    def eval(self, bindings):
        value = self.operand.eval(bindings)
        return value is not None and value in self.values

    def compile(self, schemas):
        operand = self.operand.compile(schemas)
        values = self.values

        def run(rows):
            value = operand(rows)
            return value is not None and value in values

        return run

    def __repr__(self):
        return f"({self.operand!r} IN {sorted(map(repr, self.values))})"


class Between(Expr):
    """Closed-interval membership; ``None`` anywhere makes it ``False``."""

    __slots__ = ("operand", "low", "high")

    def __init__(self, operand: Expr, low: Expr, high: Expr):
        self.operand = operand
        self.low = low
        self.high = high

    def key(self):
        return ("between", self.operand.key(), self.low.key(), self.high.key())

    def children(self):
        return (self.operand, self.low, self.high)

    def rebuild(self, children):
        return Between(*children)

    def eval(self, bindings):
        value = self.operand.eval(bindings)
        low = self.low.eval(bindings)
        high = self.high.eval(bindings)
        if value is None or low is None or high is None:
            return False
        return low <= value <= high

    def compile(self, schemas):
        operand = self.operand.compile(schemas)
        low = self.low.compile(schemas)
        high = self.high.compile(schemas)

        def run(rows):
            value = operand(rows)
            lo = low(rows)
            hi = high(rows)
            if value is None or lo is None or hi is None:
                return False
            return lo <= value <= hi

        return run

    def __repr__(self):
        return f"({self.operand!r} BETWEEN {self.low!r} AND {self.high!r})"


class IsNull(Expr):
    """SQL ``IS NULL`` test."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def key(self):
        return ("isnull", self.operand.key())

    def children(self):
        return (self.operand,)

    def rebuild(self, children):
        return IsNull(children[0])

    def eval(self, bindings):
        return self.operand.eval(bindings) is None

    def compile(self, schemas):
        operand = self.operand.compile(schemas)
        return lambda rows: operand(rows) is None

    def __repr__(self):
        return f"({self.operand!r} IS NULL)"


TRUE = Const(True)
FALSE = Const(False)


def rebind(expr: Expr, mapping: dict) -> Expr:
    """Return ``expr`` with field relvars replaced per ``mapping``.

    ``mapping`` maps old relvar (possibly ``None``) to new relvar. Fields
    whose relvar is not in the mapping are left untouched.
    """
    if isinstance(expr, Field):
        if expr.relvar in mapping:
            return expr.with_relvar(mapping[expr.relvar])
        return expr
    children = expr.children()
    if not children:
        return expr
    return expr.rebuild(tuple(rebind(child, mapping) for child in children))


def rename_fields(expr: Expr, relvar, mapping: dict) -> Expr:
    """Return ``expr`` with attribute names of fields on ``relvar`` renamed."""
    if isinstance(expr, Field):
        if expr.relvar == relvar and expr.name in mapping:
            return Field(mapping[expr.name], relvar)
        return expr
    children = expr.children()
    if not children:
        return expr
    return expr.rebuild(tuple(rename_fields(child, relvar, mapping) for child in children))


class _Namespace:
    """Attribute-access factory for qualified fields: ``base.SourceAS``."""

    __slots__ = ("_relvar",)

    def __init__(self, relvar: Optional[str]):
        object.__setattr__(self, "_relvar", relvar)

    def __getattr__(self, name: str) -> Field:
        if name.startswith("_"):
            raise AttributeError(name)
        return Field(name, object.__getattribute__(self, "_relvar"))

    def __getitem__(self, name: str) -> Field:
        return Field(name, object.__getattribute__(self, "_relvar"))


#: Field factory for the base-values relation in GMDJ conditions.
base = _Namespace(BASE_VAR)
#: Field factory for the detail relation in GMDJ conditions.
detail = _Namespace(DETAIL_VAR)
#: Field factory for unqualified (single-relation) expressions.
col = _Namespace(None)


def and_all(conditions) -> Expr:
    """Conjunction of a sequence of conditions (``TRUE`` if empty)."""
    result = None
    for condition in conditions:
        result = condition if result is None else And(result, condition)
    return TRUE if result is None else result


def or_all(conditions) -> Expr:
    """Disjunction of a sequence of conditions (``FALSE`` if empty)."""
    result = None
    for condition in conditions:
        result = condition if result is None else Or(result, condition)
    return FALSE if result is None else result
